"""Byte-size units and memory-transaction arithmetic helpers.

The paper reports memory traffic in bytes measured by the nest MBA
counters, which count 64-byte memory transactions ("the capability to
fetch only 64 bytes of data (half cache lines)" — POWER9 User's Manual).
These helpers centralise the rounding rules so that expectations and
simulated counters agree bit-for-bit.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one double-precision floating point element in bytes.
DOUBLE = 8
#: Size of one double-complex element in bytes.
DOUBLE_COMPLEX = 16

#: POWER9 L3 cache line size in bytes.
POWER9_LINE = 128
#: POWER9 memory transaction granule (half cache line) in bytes.
POWER9_GRANULE = 64


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def round_up(nbytes: int, granule: int = POWER9_GRANULE) -> int:
    """Round ``nbytes`` up to a whole number of memory granules."""
    return ceil_div(nbytes, granule) * granule


def transactions(nbytes: int, granule: int = POWER9_GRANULE) -> int:
    """Number of ``granule``-byte memory transactions covering ``nbytes``."""
    return ceil_div(nbytes, granule)


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count (e.g. ``'5.00 MiB'``) for reports."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def parse_size(text: str) -> int:
    """Parse ``'5MiB'``/``'64'``/``'2 KiB'`` style sizes into bytes."""
    s = text.strip().replace(" ", "")
    multipliers = {
        "B": 1,
        "KIB": KIB,
        "KB": 1000,
        "MIB": MIB,
        "MB": 1000 * 1000,
        "GIB": GIB,
        "GB": 1000 ** 3,
    }
    upper = s.upper()
    for suffix, mult in sorted(multipliers.items(), key=lambda kv: -len(kv[0])):
        if upper.endswith(suffix):
            number = upper[: -len(suffix)]
            return int(float(number) * mult)
    return int(float(upper))
