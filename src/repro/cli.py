"""Command-line entry point: regenerate any table/figure.

Examples::

    repro-experiments --list
    repro-experiments fig3
    repro-experiments fig11 --seed 42
    python -m repro.cli fig5
    python -m repro.cli bench --compare benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .experiments import all_experiments, run_experiment


def _result_to_json(result) -> str:
    """Machine-readable rendering (rows only; extras hold live objects)."""
    return json.dumps({
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(map(_plain, row)) for row in result.rows],
        "notes": result.notes,
    }, indent=2)


def _plain(cell):
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Regenerate the tables and figures of 'Memory "
                     "Traffic and Complete Application Profiling with "
                     "PAPI Multi-Component Measurements' on the "
                     "simulated POWER9 substrate."),
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment id (e.g. table1, fig2 ... fig12), "
                             "'pcp-stress' for the concurrent daemon "
                             "stress run, or 'bench' for the parallel "
                             "benchmark suite (see 'bench --help')")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--seed", type=int, default=None,
                        help="simulation seed (default: package default)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in order")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII log-log plots of the "
                             "figure's sweeps (where available)")
    parser.add_argument("--clients", type=int, default=8,
                        help="pcp-stress: number of concurrent TCP clients")
    parser.add_argument("--fetches", type=int, default=32,
                        help="pcp-stress: fetches per client")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="pcp-stress: disable fetch coalescing "
                             "(naive per-request PMDA reads)")
    return parser


def _run_pcp_stress(args) -> int:
    from .pcp.stress import run_stress

    report = run_stress(
        n_clients=args.clients, n_fetches=args.fetches,
        seed=args.seed if args.seed is not None else 1,
        coalesce=not args.no_coalesce,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        width = max(len(k) for k in report)
        for key, value in report.items():
            print(f"{key:{width}s}  {value}")
    healthy = (not report["errors"] and report["cross_wired"] == 0
               and report["non_monotone_timestamps"] == 0
               and report["unrecovered_faults"] == 0)
    return 0 if healthy else 1


def build_pcp_load_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments pcp-load",
        description="Drive the asyncio PMCD fabric at service scale: "
                    "hundreds of concurrent async contexts pipelining "
                    "fetch PDUs for a wall-clock window, with optional "
                    "fault injection (shard kills, slow PMDA reads, "
                    "dropped connections, archive corruption). Exits "
                    "nonzero when a service invariant was violated or "
                    "a --min-rate/--max-p99-usec gate fails.",
    )
    parser.add_argument("--contexts", type=int, default=256,
                        help="concurrent async client sessions "
                             "(default: 256)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="wall-clock seconds of sustained load "
                             "(default: 5)")
    parser.add_argument("--pipeline-depth", type=int, default=8,
                        help="fetch PDUs in flight per context "
                             "(default: 8)")
    parser.add_argument("--pmids-per-fetch", type=int, default=4,
                        help="metrics per fetch PDU (default: 4)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable per-shard request coalescing")
    parser.add_argument("--kill-shards", type=int, default=0,
                        help="times to kill the perfevent shard worker "
                             "mid-run (supervisor must recover)")
    parser.add_argument("--slow-pmda", type=int, default=0,
                        help="PMDA reads to stall via fault injection")
    parser.add_argument("--slow-pmda-seconds", type=float, default=0.02,
                        help="stall length per slow PMDA read "
                             "(default: 0.02)")
    parser.add_argument("--drop-connections", type=int, default=0,
                        help="served responses to replace with a "
                             "connection drop (clients must reconnect)")
    parser.add_argument("--corrupt-archive", action="store_true",
                        help="seed an archive, bit-flip a sealed volume "
                             "mid-run, and require replay to fail "
                             "cleanly")
    parser.add_argument("--archive-dir", default=None,
                        help="directory for the --corrupt-archive "
                             "scratch archive (default: a temp dir)")
    parser.add_argument("--machine", default="summit",
                        help="machine config to simulate (default: "
                             "summit)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default: 1)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    parser.add_argument("--hist-out", metavar="PATH", default=None,
                        help="write the latency histogram + percentiles "
                             "as a JSON artifact to PATH")
    parser.add_argument("--min-rate", type=float, default=None,
                        help="exit nonzero when fetches/s falls below "
                             "this floor")
    parser.add_argument("--max-p99-usec", type=float, default=None,
                        help="exit nonzero when client-observed p99 "
                             "latency exceeds this bound")
    return parser


def _run_pcp_load(argv: List[str]) -> int:
    import tempfile

    from .pcp.load import healthy, run_load

    args = build_pcp_load_parser().parse_args(argv)
    archive_dir = args.archive_dir
    if args.corrupt_archive and archive_dir is None:
        archive_dir = tempfile.mkdtemp(prefix="pcp-load-")
    report = run_load(
        n_contexts=args.contexts, duration_seconds=args.duration,
        machine=args.machine, seed=args.seed,
        pipeline_depth=args.pipeline_depth,
        pmids_per_fetch=args.pmids_per_fetch,
        coalesce=not args.no_coalesce, shard_kills=args.kill_shards,
        slow_pmda=args.slow_pmda,
        slow_pmda_seconds=args.slow_pmda_seconds,
        drop_connections=args.drop_connections,
        corrupt_archive=args.corrupt_archive, archive_dir=archive_dir)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        width = max(len(k) for k in report)
        for key, value in report.items():
            print(f"{key:{width}s}  {value}")
    if args.hist_out:
        artifact = {
            "fetches_per_second": report["fetches_per_second"],
            "total_fetches": report["total_fetches"],
            "contexts": report["contexts"],
            "latency_p50_usec": report["latency_p50_usec"],
            "latency_p90_usec": report["latency_p90_usec"],
            "latency_p99_usec": report["latency_p99_usec"],
            "latency_max_usec": report["latency_max_usec"],
            "latency_histogram": report["latency_histogram"],
        }
        with open(args.hist_out, "w") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"latency histogram written to {args.hist_out}",
              file=sys.stderr)
    exit_code = 0 if healthy(report) else 1
    if args.min_rate is not None \
            and report["fetches_per_second"] < args.min_rate:
        print(f"fetch rate {report['fetches_per_second']}/s below "
              f"--min-rate {args.min_rate}", file=sys.stderr)
        exit_code = 1
    if args.max_p99_usec is not None \
            and report["latency_p99_usec"] > args.max_p99_usec:
        print(f"p99 latency {report['latency_p99_usec']}us exceeds "
              f"--max-p99-usec {args.max_p99_usec}", file=sys.stderr)
        exit_code = 1
    return exit_code


def build_bench_parser() -> argparse.ArgumentParser:
    from .bench.registry import DEFAULT_SEED

    parser = argparse.ArgumentParser(
        prog="repro-experiments bench",
        description="Run the registered benchmarks in parallel worker "
                    "processes, write a BENCH_<git-sha>.json report, "
                    "and optionally gate it against a frozen baseline.",
    )
    parser.add_argument("--bench-dir", default=None,
                        help="directory holding bench_*.py scripts "
                             "(default: ./benchmarks, falling back to "
                             "the repository checkout)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="parallel worker processes "
                             "(default: min(8, cpu count))")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-benchmark deadline in seconds "
                             "(default: 120)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="simulation seed benchmarks measure under")
    parser.add_argument("--filter", dest="name_filter", default=None,
                        help="only run benchmarks whose name contains "
                             "this substring")
    parser.add_argument("--tag", default=None,
                        help="only run benchmarks carrying this tag")
    parser.add_argument("--output-dir", default=".",
                        help="where to write BENCH_<sha>.json "
                             "(default: current directory)")
    parser.add_argument("--no-report", action="store_true",
                        help="skip writing the BENCH_<sha>.json file")
    parser.add_argument("--profile", action="store_true",
                        help="run each benchmark under cProfile and "
                             "write <name>.prof into the output "
                             "directory, next to BENCH_<sha>.json")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON instead of "
                             "the summary table")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="compare against a frozen baseline report "
                             "(e.g. benchmarks/baseline.json)")
    parser.add_argument("--fail-on-regression",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="exit nonzero when --compare finds a "
                             "regression (default: on)")
    parser.add_argument("--freeze", metavar="PATH", default=None,
                        help="also freeze this run as a baseline file "
                             "(report + thresholds) at PATH")
    parser.add_argument("--wall-threshold", type=float, default=None,
                        help="relative wall-time growth allowed vs the "
                             "baseline (overrides the baseline's own "
                             "thresholds; e.g. 0.25)")
    parser.add_argument("--metric-rel", type=float, default=None,
                        help="relative tolerance for metric drift")
    parser.add_argument("--metric-abs", type=float, default=None,
                        help="absolute tolerance for metric drift")
    parser.add_argument("--rss-threshold", type=float, default=None,
                        help="relative peak-RSS growth allowed (off by "
                             "default)")
    return parser


def build_trace_store_parser() -> argparse.ArgumentParser:
    from .engine.tracestore import TRACE_DIR_ENV

    parser = argparse.ArgumentParser(
        prog="repro-experiments trace-store",
        description="Inspect and maintain the on-disk columnar trace "
                    "store (persistent BatchTrace entries the exact "
                    "engines stream from).",
    )
    parser.add_argument("--dir", default=None,
                        help=f"store root (default: ${TRACE_DIR_ENV} "
                             "or the per-user temp store)")
    sub = parser.add_subparsers(dest="action")
    sub.add_parser("ls", help="list entries (key, kernel, rows, bytes, "
                              "last use)")
    gc = sub.add_parser("gc", help="evict least-recently-used entries "
                                   "down to a byte budget")
    gc.add_argument("--max-bytes", type=int, required=True,
                    help="byte budget the store must fit in after gc")
    verify = sub.add_parser("verify",
                            help="full-checksum entries; nonzero exit "
                                 "on any corruption")
    verify.add_argument("key", nargs="?", default=None,
                        help="verify only this entry key")
    rm = sub.add_parser("rm", help="delete one entry")
    rm.add_argument("key", help="entry key (as printed by ls)")
    return parser


def _run_trace_store(argv: List[str]) -> int:
    import time as _time

    from .engine.tracestore import TraceCorruptionError, TraceStore
    from .measure.report import format_table

    parser = build_trace_store_parser()
    args = parser.parse_args(argv)
    if not args.action:
        parser.print_help()
        return 2
    store = TraceStore(args.dir) if args.dir else TraceStore()
    if args.action == "ls":
        rows = []
        for e in store.entries():
            age = max(0.0, _time.time() - e.last_used)
            rows.append([
                e.key,
                f"{e.kernel.get('module', '?')}."
                f"{e.kernel.get('qualname', '?')}",
                f"{e.rows:,}",
                f"{e.nbytes / 1e6:.1f}",
                f"{age / 60:.0f}m ago",
            ])
        print(format_table(
            ["key", "kernel", "rows", "MB", "last use"], rows,
            title=f"[trace-store] {store.root} — "
                  f"{store.total_bytes() / 1e6:.1f} MB total"))
        return 0
    if args.action == "gc":
        evicted = store.gc(args.max_bytes)
        for key in evicted:
            print(f"evicted {key}")
        print(f"{len(evicted)} entries evicted; "
              f"{store.total_bytes() / 1e6:.1f} MB retained")
        return 0
    if args.action == "verify":
        if args.key:
            try:
                store.open_key(args.key, verify="full")
                report = {args.key: None}
            except TraceCorruptionError as exc:
                report = {args.key: str(exc)}
        else:
            report = store.verify_all()
        bad = 0
        for key, error in sorted(report.items()):
            status = "ok" if error is None else f"CORRUPT: {error}"
            print(f"{key}  {status}")
            bad += error is not None
        print(f"{len(report) - bad}/{len(report)} entries ok")
        return 1 if bad else 0
    if args.action == "rm":
        if store.remove(args.key):
            print(f"removed {args.key}")
            return 0
        print(f"no such entry: {args.key}", file=sys.stderr)
        return 1
    return 2


def build_pipeline_parser() -> argparse.ArgumentParser:
    from .engine.envconfig import (
        AUTOTUNE_ENV,
        N_SHARDS_ENV,
        RING_DEPTH_ENV,
        SEGMENT_ROWS_ENV,
        TARGET_OCCUPANCY_ENV,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments pipeline",
        description="Run a kernel through the segment-pipelined exact "
                    "engine: trace generation overlaps sharded cache "
                    "simulation in a persistent worker pool.",
    )
    parser.add_argument("--kernel", default="gemm",
                        choices=["gemm", "dot", "spmv", "stream-copy",
                                 "stream-scale", "stream-add",
                                 "stream-triad"],
                        help="kernel family to run (default: gemm)")
    parser.add_argument("--size", type=int, default=256,
                        help="problem size: matrix order for gemm/spmv, "
                             "vector length for dot/stream-* "
                             "(default: 256)")
    parser.add_argument("--cache-mib", type=float, default=4.0,
                        help="simulated cache capacity in MiB "
                             "(default: 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation worker processes; 0 = inline "
                             f"(default: cpu count - 1, or "
                             f"${N_SHARDS_ENV})")
    parser.add_argument("--segment-rows", type=int, default=None,
                        help="rows per streamed trace segment "
                             f"(default: ${SEGMENT_ROWS_ENV} or 2^20)")
    parser.add_argument("--ring-depth", type=int, default=None,
                        help="segment slots in the shared ring "
                             f"(default: ${RING_DEPTH_ENV} or 4)")
    parser.add_argument("--autotune", action="store_true",
                        help="enable the self-tuning execution layer: "
                             "AIMD segment sizing steered by ring "
                             "occupancy, worker CPU affinity, and "
                             f"sorted shard spans (default: "
                             f"${AUTOTUNE_ENV} or off)")
    parser.add_argument("--target-occupancy", type=float, default=None,
                        help="ring-occupancy setpoint in (0, 1] for "
                             "the segment-size controller (default: "
                             f"${TARGET_OCCUPANCY_ENV} or 0.75)")
    parser.add_argument("--tuning-trace-out", default=None,
                        help="write the controller's (seq, rows, "
                             "occupancy) tuning trace to this JSON "
                             "file (CI artifact)")
    parser.add_argument("--compare-sequential", action="store_true",
                        help="also run the sequential generate-then-"
                             "simulate path (ShardedExactEngine) and "
                             "report the speedup and traffic match")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count for --compare-sequential's "
                             "ShardedExactEngine (default: engine "
                             "default)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    return parser


def build_sample_parser() -> argparse.ArgumentParser:
    from .bench.registry import DEFAULT_SEED
    from .engine.envconfig import (
        SAMPLE_JITTER_ENV,
        SAMPLE_PERIOD_ENV,
        SAMPLE_SKID_ENV,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments sample",
        description="Profile a kernel with the SPE/PEBS-style "
                    "statistical sampling observer: per-sample records "
                    "plus period-scaled traffic estimators, compared "
                    "against the exact replay.",
    )
    parser.add_argument("--kernel", default="gemm",
                        choices=["gemm", "dot", "spmv", "stream-copy",
                                 "stream-scale", "stream-add",
                                 "stream-triad"],
                        help="kernel family to profile (default: gemm)")
    parser.add_argument("--size", type=int, default=128,
                        help="problem size: matrix order for gemm/spmv, "
                             "vector length for dot/stream-* "
                             "(default: 128)")
    parser.add_argument("--cache-kib", type=float, default=128.0,
                        help="simulated cache capacity in KiB (default: "
                             "128 — small enough that miss events stay "
                             "dense and the estimators converge fast)")
    parser.add_argument("--period", type=int, default=None,
                        help="mean accesses per sample (default: "
                             f"${SAMPLE_PERIOD_ENV} or 64)")
    parser.add_argument("--period-jitter", type=int, default=None,
                        help="half-width of the uniform gap "
                             "randomization (default: period/4, floor "
                             "1; 0 risks aliasing)")
    parser.add_argument("--store-period", type=int, default=None,
                        help="mean stores per store-channel sample "
                             "(default: period/16, min 1)")
    parser.add_argument("--skid", type=int, default=None,
                        help="fixed record skid in accesses (default: "
                             f"${SAMPLE_SKID_ENV} or 0)")
    parser.add_argument("--skid-jitter", type=int, default=None,
                        help="random extra skid bound (default: "
                             f"${SAMPLE_JITTER_ENV} or 0)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="sampling RNG seed")
    parser.add_argument("--top", type=int, default=5,
                        help="hot cache lines to report (default: 5)")
    parser.add_argument("--scalar-replay", action="store_true",
                        help="use the scalar slice-per-sample replay "
                             "instead of the vectorized segment replay "
                             "(bit-identical results; the differential "
                             "oracle)")
    parser.add_argument("--max-error", type=float, default=None,
                        help="exit nonzero when the total-traffic "
                             "relative error exceeds this bound "
                             "(CI smoke gate)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    return parser


def _run_sample_cmd(argv: List[str]) -> int:
    import time as _time

    from .machine.config import CacheConfig
    from .papi.sampling import (
        LEVEL_NAMES,
        SamplingConfig,
        SamplingObserver,
    )
    from .units import KIB

    args = build_sample_parser().parse_args(argv)
    kernel = _pipeline_kernel(args.kernel, args.size)
    cache = CacheConfig(capacity_bytes=int(args.cache_kib * KIB))
    config = SamplingConfig(
        period=args.period, period_jitter=args.period_jitter,
        store_period=args.store_period, skid=args.skid,
        skid_jitter=args.skid_jitter, seed=args.seed)
    observer = SamplingObserver(cache, kernel.streams(), config,
                                vectorized=not args.scalar_replay)
    t0 = _time.perf_counter()
    observer.observe_kernel(kernel)
    wall = _time.perf_counter() - t0

    exact = observer.exact_traffic()
    est = observer.estimated_traffic()
    errors = observer.relative_errors()
    levels = observer.records()["level"]
    level_counts = {name: int((levels == level).sum())
                    for level, name in sorted(LEVEL_NAMES.items())}
    report = {
        "kernel": kernel.name,
        "cache_kib": args.cache_kib,
        "period": config.period,
        "period_jitter": config.period_jitter,
        "store_period": config.store_period,
        "store_jitter": config.store_jitter,
        "skid": config.skid,
        "skid_jitter": config.skid_jitter,
        "seed": args.seed,
        "exact": {"read_bytes": exact.read_bytes,
                  "write_bytes": exact.write_bytes},
        "estimated": {"read_bytes": round(est.read_bytes, 1),
                      "write_bytes": round(est.write_bytes, 1)},
        "relative_error": {k: round(v, 6) for k, v in errors.items()},
        "levels": level_counts,
        "replay": "scalar" if args.scalar_replay else "vectorized",
        "overhead": observer.overhead(),
        "hot_lines": observer.hot_lines(args.top),
        "wall_s": round(wall, 3),
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        ov = report["overhead"]
        print(f"[sample] {kernel.name}: {observer.accesses_observed:,} "
              f"accesses, {ov['samples']:,} samples "
              f"(period {config.period}±{config.period_jitter}, "
              f"store period {config.store_period}"
              f"±{config.store_jitter}, skid {config.skid}"
              f"+U[0,{config.skid_jitter}], {report['replay']} replay) "
              f"in {wall:.3f}s")
        print(f"  exact     read {exact.read_bytes:,} B, "
              f"write {exact.write_bytes:,} B")
        print(f"  estimated read {est.read_bytes:,.0f} B, "
              f"write {est.write_bytes:,.0f} B "
              f"(rel err read {errors['read']:.3%}, "
              f"write {errors['write']:.3%}, "
              f"total {errors['total']:.3%})")
        print(f"  levels {level_counts}, records {ov['records_kept']:,} "
              f"kept / {ov['records_dropped']:,} dropped, "
              f"{ov['replay_slices']:,} replay slices")
        for line in report["hot_lines"]:
            print(f"  hot line 0x{line['line_addr']:x} "
                  f"[{line['stream']}] ~{line['est_read_bytes']:,.0f} B "
                  f"read ({line['samples']} sampled fetches)")
    if args.max_error is not None and errors["total"] > args.max_error:
        print(f"total relative error {errors['total']:.4f} exceeds "
              f"--max-error {args.max_error}", file=sys.stderr)
        return 1
    return 0


def _pipeline_kernel(name: str, size: int):
    from .kernels import Dot, Gemm, SpmvKernel, StreamKernel, random_csr

    if name == "gemm":
        return Gemm(size)
    if name == "dot":
        return Dot(size)
    if name == "spmv":
        return SpmvKernel(random_csr(size, 8, seed=1))
    return StreamKernel(name[len("stream-"):], size)


def _run_pipeline_cmd(argv: List[str]) -> int:
    import time as _time

    from .engine.autotune import AutotuneConfig
    from .engine.envconfig import env_n_shards
    from .engine.exact import ShardedExactEngine
    from .engine.pipeline import PipelinedExactEngine
    from .machine.config import CacheConfig
    from .units import MIB

    args = build_pipeline_parser().parse_args(argv)
    kernel = _pipeline_kernel(args.kernel, args.size)
    cache = CacheConfig(capacity_bytes=int(args.cache_mib * MIB))
    workers = args.workers
    if workers is None:
        workers = env_n_shards()
    # --autotune forces the controller on; without it the REPRO_AUTOTUNE
    # env default still applies (None).
    autotune = True if args.autotune else None
    tune_config = (AutotuneConfig(target_occupancy=args.target_occupancy)
                   if args.target_occupancy is not None else None)

    t0 = _time.perf_counter()
    with PipelinedExactEngine(cache, n_workers=workers,
                              segment_rows=args.segment_rows,
                              ring_depth=args.ring_depth,
                              autotune=autotune,
                              autotune_config=tune_config) as engine:
        traffic = engine.run_kernel(kernel)
    wall = _time.perf_counter() - t0
    stats = dict(engine.last_pipeline_stats)

    report = {
        "kernel": kernel.name,
        "read_bytes": traffic.read_bytes,
        "write_bytes": traffic.write_bytes,
        "hits": engine.last_stats["hits"],
        "misses": engine.last_stats["misses"],
        "wall_s": round(wall, 3),
        "pipeline": stats,
    }
    if args.compare_sequential:
        t0 = _time.perf_counter()
        trace = kernel.exact_trace()
        t_gen = _time.perf_counter() - t0
        seq = ShardedExactEngine(cache, n_shards=args.shards)
        t0 = _time.perf_counter()
        seq_traffic = seq.run_nest(kernel.streams(), trace)
        t_sim = _time.perf_counter() - t0
        report["sequential"] = {
            "n_shards": seq.n_shards,
            "generate_s": round(t_gen, 3),
            "simulate_s": round(t_sim, 3),
            "wall_s": round(t_gen + t_sim, 3),
            "read_bytes": seq_traffic.read_bytes,
            "write_bytes": seq_traffic.write_bytes,
        }
        report["speedup"] = round((t_gen + t_sim) / wall, 2) if wall else 0.0
        report["traffic_match"] = (
            traffic.read_bytes == seq_traffic.read_bytes
            and traffic.write_bytes == seq_traffic.write_bytes)
    if args.tuning_trace_out:
        with open(args.tuning_trace_out, "w", encoding="utf-8") as fh:
            json.dump({
                "kernel": kernel.name,
                "autotune": stats.get("autotune", False),
                "target_occupancy": stats.get("target_occupancy"),
                "final_segment_rows": stats.get("final_segment_rows"),
                "mean_ring_occupancy": stats.get("mean_ring_occupancy"),
                "worker_cpus": stats.get("worker_cpus"),
                "trace": stats.get("tuning_trace", []),
            }, fh, indent=2)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"[pipeline] {kernel.name}: "
              f"read {traffic.read_bytes:,} B, "
              f"write {traffic.write_bytes:,} B, "
              f"{report['hits']:,} hits / {report['misses']:,} misses "
              f"in {wall:.3f}s")
        print(f"  mode={stats['mode']} workers={stats['n_workers']} "
              f"segment_rows={stats['segment_rows']} "
              f"ring_depth={stats['ring_depth']}")
        print(f"  {stats['segments']} segments, {stats['rows']:,} rows "
              f"({stats['expanded_rows']:,} expanded), "
              f"utilization {stats['utilization']:.2f}, "
              f"queue depth mean {stats['mean_queue_depth']:.2f} "
              f"max {stats['max_queue_depth']}")
        if stats.get("autotune"):
            cpus = stats.get("worker_cpus")
            cpu_map = ("none (pinning unavailable)" if not cpus else
                       " ".join(f"w{w}->" + ",".join(map(str, c))
                                for w, c in enumerate(cpus)))
            print(f"  autotune: final segment_rows="
                  f"{stats.get('final_segment_rows', stats['segment_rows'])}"
                  f" ring occupancy "
                  f"{stats.get('mean_ring_occupancy', 0.0):.2f}"
                  f" (target {stats.get('target_occupancy', 0.0):.2f}),"
                  f" {len(stats.get('tuning_trace', []))} decisions,"
                  f" workers {cpu_map}")
        if args.compare_sequential:
            seq_info = report["sequential"]
            match = "exact" if report["traffic_match"] else "MISMATCH"
            print(f"  sequential (gen {seq_info['generate_s']}s + "
                  f"{seq_info['n_shards']}-shard sim "
                  f"{seq_info['simulate_s']}s) = "
                  f"{seq_info['wall_s']}s -> "
                  f"speedup {report['speedup']}x, traffic {match}")
    if args.compare_sequential and not report["traffic_match"]:
        return 1
    return 0


def _default_bench_dir():
    from pathlib import Path

    cwd_dir = Path.cwd() / "benchmarks"
    if cwd_dir.is_dir():
        return cwd_dir
    checkout = Path(__file__).resolve().parents[2] / "benchmarks"
    if checkout.is_dir():
        return checkout
    return cwd_dir  # let discovery raise with a clear path


def _run_bench(argv: List[str]) -> int:
    from pathlib import Path

    from .bench import (
        RunnerConfig,
        Thresholds,
        build_report,
        compare_reports,
        discover,
        format_comparison,
        load_report,
        run_benchmarks,
        write_report,
    )
    from .bench.compare import resolve_thresholds

    args = build_bench_parser().parse_args(argv)
    bench_dir = Path(args.bench_dir) if args.bench_dir \
        else _default_bench_dir()
    specs = discover(bench_dir)
    if args.name_filter:
        specs = [s for s in specs if args.name_filter in s.name]
    if args.tag:
        specs = [s for s in specs if args.tag in s.tags]
    if not specs:
        print(f"no benchmarks matched under {bench_dir}", file=sys.stderr)
        return 2
    config = RunnerConfig(max_workers=args.jobs,
                          timeout_s=args.timeout, seed=args.seed,
                          profile_dir=args.output_dir
                          if args.profile else None)

    def progress(record):
        wall = record["wall_s"]
        shown = f"{wall:8.2f}s" if wall is not None else " " * 9
        line = f"  {record['name']:<28s} {record['status']:>8s} {shown}"
        print(line, file=sys.stderr, flush=True)

    n = len(specs)
    workers = config.resolved_workers(n)
    print(f"running {n} benchmarks on {workers} workers "
          f"(timeout {config.timeout_s:.0f}s each)", file=sys.stderr)
    records = run_benchmarks(specs, config, progress=progress)
    report = build_report(
        records,
        config={"seed": config.seed, "timeout_s": config.timeout_s,
                "max_workers": workers},
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        _print_bench_summary(report)
    if not args.no_report:
        path = write_report(report, args.output_dir)
        print(f"report written to {path}", file=sys.stderr)
    exit_code = 0
    failed = report["summary"]["total"] - report["summary"]["ok"]
    if failed:
        print(f"{failed} benchmark(s) did not finish ok",
              file=sys.stderr)
        exit_code = 1
    overrides = {"wall_rel": args.wall_threshold,
                 "metric_rel": args.metric_rel,
                 "metric_abs": args.metric_abs,
                 "rss_rel": args.rss_threshold}
    if args.compare:
        baseline = load_report(args.compare)
        thresholds = resolve_thresholds(baseline, overrides)
        comparison = compare_reports(report, baseline, thresholds)
        print(format_comparison(comparison))
        if not comparison.ok and args.fail_on_regression:
            exit_code = exit_code or 1
    if args.freeze:
        frozen = dict(report)
        frozen["thresholds"] = Thresholds.from_dict(
            {k: v for k, v in overrides.items() if v is not None}
        ).to_dict()
        freeze_path = Path(args.freeze)
        freeze_path.parent.mkdir(parents=True, exist_ok=True)
        freeze_path.write_text(json.dumps(frozen, indent=2) + "\n")
        print(f"baseline frozen to {freeze_path}", file=sys.stderr)
    return exit_code


def _print_bench_summary(report) -> None:
    from .measure.report import format_table

    rows = []
    for record in report["benchmarks"]:
        wall = record["wall_s"]
        rss = record["peak_rss_kb"]
        rows.append([
            record["name"],
            record["status"],
            f"{wall:.2f}" if wall is not None else "-",
            str(rss) if rss is not None else "-",
            len(record["metrics"]),
        ])
    summary = report["summary"]
    print(format_table(
        ["benchmark", "status", "wall s", "peak RSS kB", "metrics"],
        rows,
        title=f"[bench] {summary['ok']}/{summary['total']} ok, "
              f"{summary['wall_s']}s benchmark time, "
              f"sha {report['git_sha'][:12]}"))


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if "bench" in argv:
        # Dispatch to the bench sub-parser wherever the subcommand
        # sits, so leading global flags (`--seed 42 bench`) work; the
        # experiment parser has no string-valued options, so a bare
        # `bench` token can only be the subcommand.
        split = argv.index("bench")
        return _run_bench(argv[:split] + argv[split + 1:])
    if "trace-store" in argv:
        split = argv.index("trace-store")
        return _run_trace_store(argv[:split] + argv[split + 1:])
    if "pipeline" in argv:
        split = argv.index("pipeline")
        return _run_pipeline_cmd(argv[:split] + argv[split + 1:])
    if "sample" in argv:
        split = argv.index("sample")
        return _run_sample_cmd(argv[:split] + argv[split + 1:])
    if "pcp-load" in argv:
        split = argv.index("pcp-load")
        return _run_pcp_load(argv[:split] + argv[split + 1:])
    args = build_parser().parse_args(argv)
    if args.list:
        for exp in all_experiments():
            ref = f" ({exp.paper_ref})" if exp.paper_ref else ""
            print(f"{exp.experiment_id:8s} {exp.title}{ref}")
        print("pcp-stress  Concurrent multi-client PMCD stress run "
              "(--clients/--fetches)")
        print("pcp-load    Asyncio fabric load harness with fault "
              "injection (pcp-load --help)")
        print("bench       Parallel benchmark suite with regression "
              "baselines (bench --help)")
        print("trace-store On-disk columnar trace store maintenance "
              "(trace-store --help)")
        print("pipeline    Segment-pipelined exact engine runner "
              "(pipeline --help)")
        print("sample      SPE/PEBS-style sampling profiler with "
              "accuracy report (sample --help)")
        return 0
    if args.experiment == "pcp-stress":
        return _run_pcp_stress(args)
    render = _result_to_json if args.json else (lambda r: r.render())
    if args.all:
        for exp in all_experiments():
            result = run_experiment(exp.experiment_id, seed=args.seed)
            print(render(result))
            print()
        return 0
    if not args.experiment:
        build_parser().print_help()
        return 2
    result = run_experiment(args.experiment, seed=args.seed)
    print(render(result))
    if args.plot:
        _render_plots(result)
    return 0


def _render_plots(result) -> None:
    from .measure.figures import plot_ratio_sweep

    spec = result.extras.get("plot")
    if not spec:
        print("\n(no plottable sweep in this experiment)")
        return
    for panel, rows in spec["panels"].items():
        print()
        print(plot_ratio_sweep(rows, n_col=spec["n_col"],
                               ratio_cols=spec["ratio_cols"],
                               title=f"{result.experiment_id} {panel}",
                               width=64, height=16))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
