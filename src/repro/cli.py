"""Command-line entry point: regenerate any table/figure.

Examples::

    repro-experiments --list
    repro-experiments fig3
    repro-experiments fig11 --seed 42
    python -m repro.cli fig5
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .experiments import all_experiments, run_experiment


def _result_to_json(result) -> str:
    """Machine-readable rendering (rows only; extras hold live objects)."""
    return json.dumps({
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(map(_plain, row)) for row in result.rows],
        "notes": result.notes,
    }, indent=2)


def _plain(cell):
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Regenerate the tables and figures of 'Memory "
                     "Traffic and Complete Application Profiling with "
                     "PAPI Multi-Component Measurements' on the "
                     "simulated POWER9 substrate."),
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment id (e.g. table1, fig2 ... fig12), "
                             "or 'pcp-stress' for the concurrent daemon "
                             "stress run")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--seed", type=int, default=None,
                        help="simulation seed (default: package default)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in order")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII log-log plots of the "
                             "figure's sweeps (where available)")
    parser.add_argument("--clients", type=int, default=8,
                        help="pcp-stress: number of concurrent TCP clients")
    parser.add_argument("--fetches", type=int, default=32,
                        help="pcp-stress: fetches per client")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="pcp-stress: disable fetch coalescing "
                             "(naive per-request PMDA reads)")
    return parser


def _run_pcp_stress(args) -> int:
    from .pcp.stress import run_stress

    report = run_stress(
        n_clients=args.clients, n_fetches=args.fetches,
        seed=args.seed if args.seed is not None else 1,
        coalesce=not args.no_coalesce,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        width = max(len(k) for k in report)
        for key, value in report.items():
            print(f"{key:{width}s}  {value}")
    healthy = (not report["errors"] and report["cross_wired"] == 0
               and report["non_monotone_timestamps"] == 0)
    return 0 if healthy else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp in all_experiments():
            ref = f" ({exp.paper_ref})" if exp.paper_ref else ""
            print(f"{exp.experiment_id:8s} {exp.title}{ref}")
        print("pcp-stress  Concurrent multi-client PMCD stress run "
              "(--clients/--fetches)")
        return 0
    if args.experiment == "pcp-stress":
        return _run_pcp_stress(args)
    render = _result_to_json if args.json else (lambda r: r.render())
    if args.all:
        for exp in all_experiments():
            result = run_experiment(exp.experiment_id, seed=args.seed)
            print(render(result))
            print()
        return 0
    if not args.experiment:
        build_parser().print_help()
        return 2
    result = run_experiment(args.experiment, seed=args.seed)
    print(render(result))
    if args.plot:
        _render_plots(result)
    return 0


def _render_plots(result) -> None:
    from .measure.figures import plot_ratio_sweep

    spec = result.extras.get("plot")
    if not spec:
        print("\n(no plottable sweep in this experiment)")
        return
    for panel, rows in spec["panels"].items():
        print()
        print(plot_ratio_sweep(rows, n_col=spec["n_col"],
                               ratio_cols=spec["ratio_cols"],
                               title=f"{result.experiment_id} {panel}",
                               width=64, height=16))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
