"""Deterministic fault injection for the PCP service layer.

Degraded-mode behaviour — dropped connections, slow responses,
truncated PDUs, daemon restarts — is a first-class, testable code path
rather than something that only happens in production. Tests (and
chaos experiments via the CLI) *arm* faults explicitly; the server
consults :meth:`FaultInjector.next_action` once per response and
applies whatever was scheduled. There is no randomness: repeatability
is a project invariant, so fault schedules are explicit FIFO plans.

Daemon restart is not scheduled here — it is a direct operation
(:meth:`~repro.pcp.server.PMCDServer.restart`) because it acts on the
whole daemon, not on one response.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import threading
from typing import Optional


class FaultKind(enum.Enum):
    #: Close the connection instead of responding (client sees EOF).
    DROP_CONNECTION = "drop_connection"
    #: Delay the response by ``seconds`` (client may time out).
    SLOW_RESPONSE = "slow_response"
    #: Send only a prefix of the encoded PDU, then close (client sees
    #: a malformed line).
    TRUNCATE_PDU = "truncate_pdu"
    #: Stall one PMDA shard read by ``seconds`` (the async fabric's
    #: slow-agent scenario: one shard backs up, the rest keep serving).
    SLOW_PMDA = "slow_pmda"


@dataclasses.dataclass(frozen=True)
class FaultAction:
    kind: FaultKind
    seconds: float = 0.0


class FaultInjector:
    """A FIFO schedule of faults, applied one per served response."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plan: "collections.deque[FaultAction]" = collections.deque()
        # SLOW_PMDA lives on its own queue: it is consumed at the
        # PMDA-read site, not per served response, so arming it never
        # perturbs the response-site plan ordering.
        self._pmda_plan: "collections.deque[FaultAction]" = \
            collections.deque()
        #: Total faults actually applied by the server.
        self.injected = 0

    # ------------------------------------------------------------------
    def inject(self, kind: FaultKind, count: int = 1,
               seconds: float = 0.0) -> None:
        if count < 1:
            return
        plan = (self._pmda_plan if kind is FaultKind.SLOW_PMDA
                else self._plan)
        with self._lock:
            plan.extend(FaultAction(kind, seconds) for _ in range(count))

    def drop_connections(self, count: int = 1) -> None:
        self.inject(FaultKind.DROP_CONNECTION, count)

    def slow_responses(self, count: int = 1, seconds: float = 0.05) -> None:
        self.inject(FaultKind.SLOW_RESPONSE, count, seconds=seconds)

    def truncate_pdus(self, count: int = 1) -> None:
        self.inject(FaultKind.TRUNCATE_PDU, count)

    def slow_pmda(self, count: int = 1, seconds: float = 0.05) -> None:
        self.inject(FaultKind.SLOW_PMDA, count, seconds=seconds)

    # ------------------------------------------------------------------
    def next_action(self) -> Optional[FaultAction]:
        """Pop the next scheduled fault (None when the plan is empty)."""
        with self._lock:
            if not self._plan:
                return None
            self.injected += 1
            return self._plan.popleft()

    def next_pmda_action(self) -> Optional[FaultAction]:
        """Pop the next scheduled PMDA-site fault (None when empty)."""
        with self._lock:
            if not self._pmda_plan:
                return None
            self.injected += 1
            return self._pmda_plan.popleft()

    def pending(self) -> int:
        with self._lock:
            return len(self._plan) + len(self._pmda_plan)

    def clear(self) -> None:
        with self._lock:
            self._plan.clear()
            self._pmda_plan.clear()
