"""On-disk PCP metric archives (the pmlogger archive subsystem).

Real PCP deployments keep ``pmlogger`` archives next to PMCD: append-only
volume files plus an index, which replay tools (``pmdumplog``, ``pmval -a``)
read long after the samples were taken. :class:`MetricArchive` is that
subsystem for the simulated stack: a directory of append-only JSONL
*volumes* with a per-record CRC32 prefix, an atomically-replaced
``index.json`` naming the sealed volumes (with record counts, time range
and a whole-file checksum), and a replay surface (:meth:`records`,
:meth:`series`, :meth:`rates`) whose semantics match the in-memory
``PmLogger`` exactly — so replaying an archive is byte-identical to
having watched the live fetches.

Durability follows the trace store's discipline:

* every record line is ``"%08x %s\n" % (crc32(body), body)`` — a
  truncated or bit-flipped tail is *detected*, and recovery on
  :meth:`open` truncates the tail volume back to its last good record
  (a crash mid-append loses at most the record being written);
* ``index.json`` is written to a temp file, fsynced, then ``os.replace``d
  — readers never observe a half-written index;
* sealed volumes are immutable and carry a whole-file CRC32 in the
  index; a mismatch on read raises
  :class:`~repro.errors.ArchiveCorruptionError` (or quarantines the
  volume in non-strict mode) — corrupted records are never returned as
  data.

Retention (:meth:`retain`) drops whole sealed volumes oldest-first;
compaction (:meth:`compact`) merges sealed volumes into one. Both are
record-preserving within the retained window, so ``rates()`` over a
compacted archive equals ``rates()`` over the original.

A :class:`MetricArchive` has one writer (the daemon's logger task) and
any number of readers; cross-process write locking is out of scope.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ArchiveCorruptionError, ArchiveError, PCPError

ARCHIVE_MAGIC = "repro-pcp-archive"
ARCHIVE_FORMAT = 1
LABEL_NAME = "label.json"
INDEX_NAME = "index.json"
#: Records per volume before ``append`` auto-rotates.
DEFAULT_VOLUME_RECORDS = 4096


@dataclasses.dataclass(frozen=True)
class ArchiveRecord:
    """One timestamped sample of every logged metric instance."""

    timestamp: float
    values: Dict[Tuple[str, str], int]  # (metric, instance) -> value
    #: True when the daemon restarted since the previous sample; the
    #: interval ending at this record is unusable for rates.
    gap: bool = False


@dataclasses.dataclass(frozen=True)
class VolumeInfo:
    """Index entry for one sealed (immutable) volume file."""

    name: str
    records: int
    t0: float
    t1: float
    crc32: int


# ----------------------------------------------------------------------
# Record line codec.

def _encode_record(record: ArchiveRecord) -> str:
    values = {}
    for (metric, instance), value in sorted(record.values.items()):
        if "|" in metric or "|" in instance:
            raise ArchiveError(
                f"metric/instance names may not contain '|': "
                f"{metric!r}[{instance!r}]")
        values[f"{metric}|{instance}"] = int(value)
    body = json.dumps(
        {"t": record.timestamp, "gap": bool(record.gap), "v": values},
        sort_keys=True, separators=(",", ":"))
    return "%08x %s\n" % (zlib.crc32(body.encode("utf-8")), body)


def _decode_record(line: str, where: str) -> ArchiveRecord:
    if len(line) < 10 or line[8] != " ":
        raise ArchiveCorruptionError(f"{where}: malformed record line")
    crc_hex, body = line[:8], line[9:].rstrip("\n")
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        raise ArchiveCorruptionError(
            f"{where}: bad record checksum field {crc_hex!r}") from None
    if zlib.crc32(body.encode("utf-8")) != expected:
        raise ArchiveCorruptionError(f"{where}: record checksum mismatch")
    try:
        data = json.loads(body)
        values = {}
        for key, value in data["v"].items():
            metric, _, instance = key.rpartition("|")
            values[(metric, instance)] = int(value)
        return ArchiveRecord(timestamp=float(data["t"]),
                             values=values, gap=bool(data["gap"]))
    except (ValueError, KeyError, TypeError, AttributeError):
        raise ArchiveCorruptionError(
            f"{where}: record body failed to parse") from None


def _file_crc32(path: str) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(1 << 20)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=1)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class MetricArchive:
    """An append-only on-disk archive of :class:`ArchiveRecord` samples."""

    def __init__(self, path: str, *, hostname: str = "",
                 volume_records: int = DEFAULT_VOLUME_RECORDS,
                 _create: bool = False):
        if volume_records < 1:
            raise ArchiveError("volume_records must be >= 1")
        self.path = os.path.abspath(path)
        self.volume_records = int(volume_records)
        self.hostname = hostname
        self.volumes: List[VolumeInfo] = []
        #: Volume names skipped by non-strict reads (checksum mismatch).
        self.quarantined: List[str] = []
        self._next_seq = 0
        self._tail_name: Optional[str] = None
        self._tail_records = 0
        self._tail_t0 = 0.0
        self._tail_t1 = 0.0
        self._tail_fh = None
        self._closed = False
        if _create:
            self._create_on_disk()
        else:
            self._recover_from_disk()

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, path: str, *, hostname: str = "",
               volume_records: int = DEFAULT_VOLUME_RECORDS
               ) -> "MetricArchive":
        """Create a new empty archive directory (must not exist yet)."""
        return cls(path, hostname=hostname,
                   volume_records=volume_records, _create=True)

    @classmethod
    def open(cls, path: str, *,
             volume_records: int = DEFAULT_VOLUME_RECORDS
             ) -> "MetricArchive":
        """Open an existing archive, recovering from a crashed writer.

        A partial (or checksum-failing) tail record left by a crash
        mid-append is truncated away; everything before it is kept.
        """
        return cls(path, volume_records=volume_records, _create=False)

    def _create_on_disk(self) -> None:
        os.makedirs(self.path, exist_ok=False)
        _atomic_write_json(os.path.join(self.path, LABEL_NAME), {
            "magic": ARCHIVE_MAGIC,
            "format": ARCHIVE_FORMAT,
            "hostname": self.hostname,
        })
        self._write_index()

    def _recover_from_disk(self) -> None:
        label_path = os.path.join(self.path, LABEL_NAME)
        try:
            with open(label_path, "r", encoding="utf-8") as fh:
                label = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ArchiveError(
                f"not a metric archive: {self.path} ({exc})") from None
        if label.get("magic") != ARCHIVE_MAGIC:
            raise ArchiveError(f"not a metric archive: {self.path}")
        if label.get("format") != ARCHIVE_FORMAT:
            raise ArchiveError(
                f"unsupported archive format {label.get('format')!r}")
        self.hostname = str(label.get("hostname", ""))

        index_path = os.path.join(self.path, INDEX_NAME)
        try:
            with open(index_path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ArchiveCorruptionError(
                f"archive index unreadable: {index_path} ({exc})") from None
        self.volumes = [VolumeInfo(**entry) for entry in index["volumes"]]
        self._next_seq = int(index["next_seq"])
        tail = index.get("tail")
        if tail is not None:
            self._recover_tail(str(tail))

    def _recover_tail(self, name: str) -> None:
        """Scan the tail volume, truncating after the last good record."""
        tail_path = os.path.join(self.path, name)
        records = 0
        t0 = t1 = 0.0
        good_bytes = 0
        try:
            with open(tail_path, "r", encoding="utf-8",
                      errors="surrogateescape") as fh:
                for line in fh:
                    if not line.endswith("\n"):
                        break  # partial final line: crashed mid-append
                    try:
                        record = _decode_record(line, name)
                    except ArchiveCorruptionError:
                        break  # torn write: keep everything before it
                    records += 1
                    if records == 1:
                        t0 = record.timestamp
                    t1 = record.timestamp
                    good_bytes += len(line.encode("utf-8",
                                                  "surrogateescape"))
        except OSError:
            # Tail file vanished (crash between volume create and first
            # append): restart it empty.
            good_bytes = -1
        if good_bytes >= 0:
            if os.path.getsize(tail_path) != good_bytes:
                with open(tail_path, "r+b") as fh:
                    fh.truncate(good_bytes)
            self._tail_name = name
            self._tail_records = records
            self._tail_t0, self._tail_t1 = t0, t1

    # -- writing --------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ArchiveError("archive is closed")

    def _open_tail(self) -> None:
        if self._tail_name is None:
            self._tail_name = f"volume.{self._next_seq:05d}.jsonl"
            self._next_seq += 1
            self._tail_records = 0
            self._write_index()
        if self._tail_fh is None:
            self._tail_fh = open(
                os.path.join(self.path, self._tail_name), "ab")

    def append(self, record: ArchiveRecord) -> None:
        """Append one record, auto-rotating at ``volume_records``."""
        self._require_open()
        if self._tail_records >= self.volume_records:
            self.rotate()
        self._open_tail()
        self._tail_fh.write(_encode_record(record).encode("utf-8"))
        self._tail_fh.flush()
        if self._tail_records == 0:
            self._tail_t0 = record.timestamp
        self._tail_records += 1
        self._tail_t1 = record.timestamp

    def extend(self, records: Iterable[ArchiveRecord]) -> None:
        for record in records:
            self.append(record)

    def _seal_tail(self) -> None:
        if self._tail_name is None:
            return
        if self._tail_fh is not None:
            self._tail_fh.flush()
            os.fsync(self._tail_fh.fileno())
            self._tail_fh.close()
            self._tail_fh = None
        if self._tail_records == 0:
            # Never seal an empty volume; just drop the file.
            try:
                os.unlink(os.path.join(self.path, self._tail_name))
            except OSError:
                pass
        else:
            self.volumes.append(VolumeInfo(
                name=self._tail_name, records=self._tail_records,
                t0=self._tail_t0, t1=self._tail_t1,
                crc32=_file_crc32(os.path.join(self.path, self._tail_name)),
            ))
        self._tail_name = None
        self._tail_records = 0

    def rotate(self) -> None:
        """Seal the tail volume (making it immutable) and start a new one
        on the next append."""
        self._require_open()
        self._seal_tail()
        self._write_index()

    def close(self) -> None:
        """Seal the tail and write the final index. Idempotent."""
        if self._closed:
            return
        self._seal_tail()
        self._write_index()
        self._closed = True

    def __enter__(self) -> "MetricArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _write_index(self) -> None:
        _atomic_write_json(os.path.join(self.path, INDEX_NAME), {
            "format": ARCHIVE_FORMAT,
            "volumes": [dataclasses.asdict(v) for v in self.volumes],
            "tail": self._tail_name,
            "next_seq": self._next_seq,
        })

    # -- reading --------------------------------------------------------
    def _read_volume(self, info: VolumeInfo, strict: bool
                     ) -> List[ArchiveRecord]:
        path = os.path.join(self.path, info.name)
        try:
            if _file_crc32(path) != info.crc32:
                raise ArchiveCorruptionError(
                    f"{info.name}: volume checksum mismatch")
            with open(path, "r", encoding="utf-8") as fh:
                records = [_decode_record(line, info.name) for line in fh]
            if len(records) != info.records:
                raise ArchiveCorruptionError(
                    f"{info.name}: expected {info.records} records, "
                    f"found {len(records)}")
            return records
        except OSError as exc:
            raise ArchiveCorruptionError(
                f"{info.name}: unreadable ({exc})") from None
        except ArchiveCorruptionError:
            if strict:
                raise
            if info.name not in self.quarantined:
                self.quarantined.append(info.name)
            return []

    def _read_tail(self) -> List[ArchiveRecord]:
        if self._tail_name is None:
            return []
        if self._tail_fh is not None:
            self._tail_fh.flush()
        path = os.path.join(self.path, self._tail_name)
        records = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if not line.endswith("\n"):
                        break
                    records.append(_decode_record(line, self._tail_name))
        except OSError:
            return []
        return records

    def records(self, t0: float = 0.0, t1: float = -1.0,
                metrics: Optional[Sequence[str]] = None,
                strict: bool = True) -> List[ArchiveRecord]:
        """Replay archived records with timestamps in ``[t0, t1]``.

        ``t1 < 0`` means no upper bound. With ``metrics``, each record's
        values are filtered to those metric names and records left empty
        by the filter are dropped. In non-strict mode a corrupted sealed
        volume is quarantined (named in :attr:`quarantined`) instead of
        raising, and the replay continues with the surviving volumes.
        """
        out: List[ArchiveRecord] = []
        for info in self.volumes:
            if info.records and (info.t1 < t0 or (t1 >= 0 and info.t0 > t1)):
                continue  # volume entirely outside the window
            out.extend(self._read_volume(info, strict))
        out.extend(self._read_tail())
        wanted = set(metrics) if metrics is not None else None
        selected: List[ArchiveRecord] = []
        for rec in out:
            if rec.timestamp < t0 or (t1 >= 0 and rec.timestamp > t1):
                continue
            if wanted is not None:
                values = {key: v for key, v in rec.values.items()
                          if key[0] in wanted}
                if not values:
                    continue
                rec = ArchiveRecord(timestamp=rec.timestamp,
                                    values=values, gap=rec.gap)
            selected.append(rec)
        return selected

    def series(self, metric: str, instance: str
               ) -> List[Tuple[float, int]]:
        """Replay one metric instance as (timestamp, value) pairs."""
        key = (metric, instance)
        out = [(rec.timestamp, rec.values[key])
               for rec in self.records() if key in rec.values]
        if not out:
            raise PCPError(f"no archived data for {metric}[{instance}]")
        return out

    def rates(self, metric: str, instance: str
              ) -> List[Tuple[float, float]]:
        """Counter metric -> rate curve; identical semantics to the live
        ``PmLogger.rates`` (gap records restart the curve)."""
        return rates_from_records(self.records(), metric, instance)

    def instances_of(self, metric: str) -> List[str]:
        for rec in self.records():
            found = sorted(inst for (m, inst) in rec.values if m == metric)
            if found:
                return found
        return []

    def __len__(self) -> int:
        return sum(v.records for v in self.volumes) + self._tail_records

    # -- maintenance ----------------------------------------------------
    def retain(self, max_volumes: Optional[int] = None,
               max_records: Optional[int] = None) -> List[str]:
        """Drop the oldest sealed volumes until within budget.

        The tail volume is never dropped. Returns the names of the
        volumes removed. The index is updated (atomically) *before* the
        files are unlinked, so a crash mid-retention leaves orphan files
        but never a dangling index entry.
        """
        self._require_open()
        keep = list(self.volumes)
        dropped: List[VolumeInfo] = []
        while keep:
            over = ((max_volumes is not None and len(keep) > max_volumes)
                    or (max_records is not None
                        and sum(v.records for v in keep)
                        + self._tail_records > max_records))
            if not over:
                break
            dropped.append(keep.pop(0))
        if not dropped:
            return []
        self.volumes = keep
        self._write_index()
        for info in dropped:
            try:
                os.unlink(os.path.join(self.path, info.name))
            except OSError:
                pass
        return [info.name for info in dropped]

    def compact(self) -> Optional[str]:
        """Merge all sealed volumes into one, record for record.

        Replay output (``records``/``series``/``rates``) is unchanged —
        compaction only reduces file count. Returns the new volume name,
        or None if there was nothing to merge. Uses the same
        index-before-unlink ordering as :meth:`retain`.
        """
        self._require_open()
        if len(self.volumes) < 2:
            return None
        merged: List[ArchiveRecord] = []
        for info in self.volumes:
            merged.extend(self._read_volume(info, strict=True))
        name = f"volume.{self._next_seq:05d}.jsonl"
        self._next_seq += 1
        path = os.path.join(self.path, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in merged:
                fh.write(_encode_record(record))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        old = self.volumes
        self.volumes = [VolumeInfo(
            name=name, records=len(merged),
            t0=merged[0].timestamp, t1=merged[-1].timestamp,
            crc32=_file_crc32(path),
        )]
        self._write_index()
        for info in old:
            try:
                os.unlink(os.path.join(self.path, info.name))
            except OSError:
                pass
        return name

    def verify(self) -> Dict[str, str]:
        """Check every sealed volume against its index entry.

        Returns ``{volume_name: error}`` — empty means healthy.
        """
        problems: Dict[str, str] = {}
        for info in self.volumes:
            try:
                self._read_volume(info, strict=True)
            except ArchiveCorruptionError as exc:
                problems[info.name] = str(exc)
        return problems


def rates_from_records(records: Sequence[ArchiveRecord], metric: str,
                       instance: str) -> List[Tuple[float, float]]:
    """PCP rate conversion over a record sequence (gap-aware).

    Shared by the live ``PmLogger`` and archive replay so the two can
    never drift apart.
    """
    key = (metric, instance)
    out: List[Tuple[float, float]] = []
    prev: Optional[ArchiveRecord] = None
    for rec in records:
        if key not in rec.values:
            continue
        if rec.gap or prev is None:
            prev = rec
            continue
        t0, t1 = prev.timestamp, rec.timestamp
        if t1 <= t0:
            raise PCPError("archive timestamps not increasing")
        out.append((t1, (rec.values[key] - prev.values[key]) / (t1 - t0)))
        prev = rec
    return out
