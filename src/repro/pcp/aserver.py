"""Asyncio multi-tenant PMCD fabric.

The threaded :class:`~repro.pcp.server.PMCDServer` proves the process
boundary with one thread per client — fine for tens of clients, not
for thousands. This module is the same daemon rebuilt as a service
fabric:

* **asyncio TCP front-end** — every client connection is a coroutine
  on one event loop, so thousands of concurrent
  :class:`~repro.pcp.session.AsyncPcpSession` contexts cost file
  descriptors, not threads;
* **PMNS sharded across PMDA worker tasks** — each PMDA domain gets
  its own worker task and queue. A fetch PDU is split by PMID domain,
  the sub-fetches run on their shards concurrently, and the front-end
  recombines the answers. A slow or stalled agent backs up only its
  own shard;
* **per-shard request coalescing** — a shard worker drains its queue
  in batches and identical concurrent pmid-tuples share one PMDA
  read, exactly the invariant the threaded server's dispatcher
  enforced globally;
* **hybrid executor offload** — domains named in ``executor_domains``
  have their PMDA reads pushed to a concurrent.futures executor (a
  thread pool by default; pass a process pool for picklable
  CPU-bound agents) so a heavy read never blocks the event loop;
* **archive serving** — v2 ``ArchiveFetchRequest`` PDUs replay from
  the daemon's attached :class:`~repro.pcp.archive.MetricArchive`,
  and the v2 ``OpenRequest`` handshake negotiates the protocol
  version per connection;
* **supervised shard workers** — :meth:`AsyncPMCDServer.kill_shard`
  cancels a worker mid-flight (the load harness's fault scenario); a
  supervisor requeues the jobs it had claimed and restarts the
  worker, so clients observe latency, never a lost request.

Faults from :class:`~repro.pcp.faults.FaultInjector` apply at the
same two sites as the threaded server: per served response
(drop/slow/truncate) and — new — per PMDA read
(:attr:`~repro.pcp.faults.FaultKind.SLOW_PMDA`).

The fabric runs inside one event loop; :meth:`start_in_thread` hosts
that loop on a daemon thread so synchronous code (tests, the CLI, the
threaded stress harness) can stand up a fabric and talk to it over
TCP. Everything here is Python 3.9-compatible (no ``asyncio.timeout``
or ``TaskGroup``).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PCPError
from . import protocol
from .faults import FaultInjector, FaultKind
from .pmcd import PMCD
from .pmda import pmid_domain


class FabricStats:
    """Counters for the asyncio service layer.

    Snapshot keys are a superset of the threaded
    :class:`~repro.pcp.server.ServiceStats` (``coalesced``,
    ``max_queue_depth``, ``latency_max_usec``, ...) so the ``pmcd.
    service.*`` self-metrics read identically against either server.
    """

    _FIELDS = ("requests", "responses", "batches", "coalesced",
               "max_queue_depth", "connections", "disconnects", "faults",
               "dispatch_timeouts", "shard_kills", "shard_restarts",
               "requeued_jobs", "executor_reads", "archive_fetches")

    def __init__(self) -> None:
        # The loop thread does almost all the counting, but snapshots
        # arrive from other threads (tests, the CLI) — keep a lock.
        self._lock = threading.Lock()
        for field in self._FIELDS:
            setattr(self, field, 0)
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._latency_n = 0

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def record_batch(self, depth: int) -> None:
        with self._lock:
            self.batches += 1
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latency_sum += seconds
            self._latency_max = max(self._latency_max, seconds)
            self._latency_n += 1

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            out: Dict[str, float] = {f: getattr(self, f)
                                     for f in self._FIELDS}
            out["latency_avg_usec"] = int(
                self._latency_sum / self._latency_n * 1e6
            ) if self._latency_n else 0
            out["latency_max_usec"] = int(self._latency_max * 1e6)
            return out


class _ShardJob:
    """One domain's slice of a fetch, waiting on a shard worker."""

    __slots__ = ("pmids", "future", "enqueued_at")

    def __init__(self, pmids: Tuple[int, ...], future: "asyncio.Future"):
        self.pmids = pmids
        self.future = future
        self.enqueued_at = time.monotonic()


class AsyncPMCDServer:
    """Serves one PMCD over TCP to thousands of async clients."""

    #: Upper bound on jobs drained into one shard batch.
    MAX_BATCH = 256

    def __init__(self, pmcd: PMCD, host: str = "127.0.0.1", port: int = 0,
                 fault_injector: Optional[FaultInjector] = None,
                 coalesce: bool = True,
                 executor_domains: Sequence[int] = (),
                 executor=None):
        self.pmcd = pmcd
        self.host = host
        self.port = port
        self.coalesce = coalesce
        self.stats = FabricStats()
        self.faults = fault_injector or FaultInjector()
        # Export service counters through the pmcd.* self-metrics PMDA.
        pmcd.service_stats = self.stats
        self.executor_domains = frozenset(executor_domains)
        self._executor = executor
        self._own_executor = executor is None and bool(self.executor_domains)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queues: Dict[int, "asyncio.Queue[_ShardJob]"] = {}
        self._supervisors: Dict[int, "asyncio.Task"] = {}
        self._workers: Dict[int, "asyncio.Task"] = {}
        self._writers: set = set()
        #: pmid-tuple -> ((domain, pmids), ...) fetch-split cache.
        self._split_cache: Dict[Tuple[int, ...],
                                Tuple[Tuple[int, Tuple[int, ...]], ...]] = {}
        #: Domains whose worker cancellation came from :meth:`kill_shard`
        #: (restart it) as opposed to event-loop teardown (die).
        self._killed: set = set()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self) -> "AsyncPMCDServer":
        self._loop = asyncio.get_event_loop()
        self._stopping = False
        if self._own_executor:
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, len(self.executor_domains)),
                thread_name_prefix="pmda-shard")
        for agent in self.pmcd.agents:
            self._spawn_shard(agent.domain)
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self

    async def stop(self) -> None:
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._supervisors.values()):
            task.cancel()
        for task in list(self._workers.values()):
            task.cancel()
        await asyncio.gather(*self._supervisors.values(),
                             *self._workers.values(),
                             return_exceptions=True)
        self._supervisors.clear()
        self._workers.clear()
        self._drop_all_connections()
        if self._own_executor and self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        # Let the connection handlers observe their closed sockets.
        await asyncio.sleep(0)

    def restart(self) -> None:
        """Simulate a daemon crash + restart (boot-id bump + drops).

        Listening socket and shard workers survive, as systemd socket
        activation would provide; every live client connection is
        dropped so auto-reconnecting transports observe the gap.
        Thread-safe.
        """
        def crash() -> None:
            self.pmcd.restart()
            self._drop_all_connections()

        loop = self._thread_loop or self._loop
        if (loop is not None and self._thread is not None
                and threading.current_thread() is not self._thread):
            loop.call_soon_threadsafe(crash)
        else:
            crash()

    def _drop_all_connections(self) -> None:
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass

    @property
    def open_connections(self) -> int:
        return len(self._writers)

    # ------------------------------------------------------------------
    # Threaded hosting for synchronous callers.

    def start_in_thread(self) -> "AsyncPMCDServer":
        """Run the fabric's event loop on a daemon thread.

        Returns once the listening socket is bound (``self.address``
        is set). Pair with :meth:`stop_in_thread`.
        """
        if self._thread is not None:
            raise PCPError("fabric already running in a thread")
        self._thread_loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: List[BaseException] = []

        def runner() -> None:
            loop = self._thread_loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors
                failure.append(exc)
                started.set()
                return
            started.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="pcp-fabric")
        self._thread.start()
        if not started.wait(timeout=10):
            raise PCPError("fabric event loop failed to start")
        if failure:
            self._thread = None
            raise failure[0]
        return self

    def stop_in_thread(self) -> None:
        if self._thread is None or self._thread_loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.stop(), self._thread_loop)
        try:
            future.result(timeout=10)
        finally:
            self._thread_loop.call_soon_threadsafe(self._thread_loop.stop)
            self._thread.join(timeout=10)
            self._thread = None
            self._thread_loop = None

    # ------------------------------------------------------------------
    # Shard workers.

    def _spawn_shard(self, domain: int) -> None:
        if domain not in self._queues:
            self._queues[domain] = asyncio.Queue()
        self._supervisors[domain] = self._loop.create_task(
            self._shard_supervisor(domain))

    async def _shard_supervisor(self, domain: int) -> None:
        """Keep ``domain``'s worker alive across kills and crashes."""
        queue = self._queues[domain]
        first = True
        while not self._stopping:
            if not first:
                self.stats.bump("shard_restarts")
            first = False
            worker = self._loop.create_task(
                self._shard_worker(domain, queue))
            self._workers[domain] = worker
            try:
                await worker
            except asyncio.CancelledError:
                if self._stopping or domain not in self._killed:
                    # stop() or event-loop teardown cancelled us: a
                    # swallowed cancel here would respawn the worker
                    # and wedge loop shutdown forever.
                    raise
                # kill_shard cancelled the worker, not us: restart it.
                self._killed.discard(domain)
                continue
            except Exception:
                # A worker bug must not take the shard down for good.
                continue

    async def _shard_worker(self, domain: int,
                            queue: "asyncio.Queue[_ShardJob]") -> None:
        claimed: List[_ShardJob] = []
        try:
            while True:
                claimed = [await queue.get()]
                while (not queue.empty()
                       and len(claimed) < self.MAX_BATCH):
                    claimed.append(queue.get_nowait())
                self.stats.record_batch(len(claimed))
                groups: Dict[Tuple[int, ...], List[_ShardJob]] = {}
                ordered: List[Tuple[int, ...]] = []
                for job in claimed:
                    key = job.pmids if self.coalesce else None
                    if key is not None and key in groups:
                        groups[key].append(job)
                        self.stats.bump("coalesced")
                        continue
                    if key is None:
                        key = (id(job),)  # unique: no sharing
                    groups[key] = [job]
                    ordered.append(key)
                for key in ordered:
                    members = groups[key]
                    result = await self._read_pmda(
                        domain, members[0].pmids)
                    for job in members:
                        if not job.future.done():
                            job.future.set_result(result)
                claimed = []
        finally:
            # Cancelled (kill_shard) or crashed mid-batch: hand the
            # unanswered jobs back to the queue so the restarted
            # worker serves them — clients see latency, not errors.
            requeued = 0
            for job in claimed:
                if not job.future.done():
                    queue.put_nowait(job)
                    requeued += 1
            if requeued:
                self.stats.bump("requeued_jobs", requeued)

    async def _read_pmda(self, domain: int, pmids: Tuple[int, ...]):
        """One PMDA read for a coalesced group; never raises."""
        action = self.faults.next_pmda_action()
        if action is not None and action.kind is FaultKind.SLOW_PMDA:
            self.stats.bump("faults")
            await asyncio.sleep(action.seconds)
        if domain in self.executor_domains and self._executor is not None:
            self.stats.bump("executor_reads")
            return await self._loop.run_in_executor(
                self._executor, self._fetch_sync, domain, pmids)
        return self._fetch_sync(domain, pmids)

    def _fetch_sync(self, domain: int, pmids: Tuple[int, ...]):
        agent = self.pmcd._agents.get(domain)
        if agent is None:
            return protocol.PCPStatus.PM_ERR_PMID
        metrics = []
        for pmid in pmids:
            try:
                self.pmcd.stats.pmda_fetch_calls += 1
                values = agent.fetch(pmid)
            except PCPError:
                return protocol.PCPStatus.PM_ERR_PMID
            metrics.append(protocol.MetricValues(pmid=pmid, values=values))
        return metrics

    def kill_shard(self, domain: int) -> bool:
        """Cancel one shard's worker task (fault injection).

        Thread-safe; the supervisor restarts the worker and requeues
        whatever it had claimed. Returns False for unknown domains.
        """
        worker = self._workers.get(domain)
        if worker is None:
            return False
        self.stats.bump("shard_kills")

        def cancel() -> None:
            # Mark before cancelling, on the loop thread, so the
            # supervisor can tell this cancel from loop teardown.
            self._killed.add(domain)
            worker.cancel()

        loop = self._thread_loop or self._loop
        if loop is not None and threading.current_thread() is not (
                self._thread or threading.current_thread()):
            loop.call_soon_threadsafe(cancel)
        else:
            cancel()
        return True

    def queue_depth(self) -> int:
        return sum(q.qsize() for q in self._queues.values())

    # ------------------------------------------------------------------
    # Front-end.

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self.stats.bump("connections")
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                self.stats.bump("requests")
                started = time.monotonic()
                try:
                    request = protocol.decode_request(line)
                except PCPError as exc:
                    response = protocol.ErrorResponse(
                        protocol.PCPStatus.PM_ERR_PMID, str(exc))
                else:
                    response = await self._dispatch(request)
                if not await self._send(writer, response, started):
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            # Exactly one disconnect per socket close, however many
            # paths unwind through here (drop fault, restart, EOF).
            if writer in self._writers:
                self._writers.discard(writer)
                self.stats.bump("disconnects")
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, request):
        if isinstance(request, protocol.FetchRequest):
            return await self._dispatch_fetch(request)
        if isinstance(request, protocol.ArchiveFetchRequest):
            self.stats.bump("archive_fetches")
        # Lookup/children/open/archive are cheap namespace or disk
        # reads — served inline by the daemon object.
        return self.pmcd.handle(request)

    async def _dispatch_fetch(self, request: protocol.FetchRequest):
        self.pmcd.stats.requests += 1
        if not self.pmcd.running:
            self.pmcd.stats.errors += 1
            return protocol.ErrorResponse(
                protocol.PCPStatus.PM_ERR_PERMISSION, "pmcd not running")
        self.pmcd.stats.fetches += 1
        # Clients fetch the same few pmid-tuples over and over; cache
        # the per-domain split instead of re-deriving it per request.
        split = self._split_cache.get(request.pmids)
        if split is None:
            by_domain: Dict[int, List[int]] = {}
            for pmid in request.pmids:
                by_domain.setdefault(pmid_domain(pmid), []).append(pmid)
            split = tuple((domain, tuple(pmids))
                          for domain, pmids in by_domain.items())
            if len(self._split_cache) < 4096:
                self._split_cache[request.pmids] = split
        futures = []
        for domain, pmids in split:
            queue = self._queues.get(domain)
            if queue is None:
                return protocol.FetchResponse(
                    status=protocol.PCPStatus.PM_ERR_PMID,
                    generation=self.pmcd.generation,
                    boot_id=self.pmcd.boot_id)
            future = self._loop.create_future()
            queue.put_nowait(_ShardJob(pmids, future))
            futures.append(future)
        if len(futures) == 1:
            # Hot path: a fetch that lands on one shard needs no
            # cross-domain merge — the shard preserved request order.
            result = await futures[0]
            if isinstance(result, protocol.PCPStatus):
                return protocol.FetchResponse(
                    status=result,
                    generation=self.pmcd.generation,
                    boot_id=self.pmcd.boot_id)
            return protocol.FetchResponse(
                status=protocol.PCPStatus.OK,
                timestamp=self.pmcd._timestamp(),
                metrics=tuple(result),
                generation=self.pmcd.generation,
                boot_id=self.pmcd.boot_id)
        results = await asyncio.gather(*futures)
        values_by_pmid: Dict[int, protocol.MetricValues] = {}
        for result in results:
            if isinstance(result, protocol.PCPStatus):
                return protocol.FetchResponse(
                    status=result,
                    generation=self.pmcd.generation,
                    boot_id=self.pmcd.boot_id)
            for metric in result:
                values_by_pmid[metric.pmid] = metric
        return protocol.FetchResponse(
            status=protocol.PCPStatus.OK,
            timestamp=self.pmcd._timestamp(),
            metrics=tuple(values_by_pmid[pmid] for pmid in request.pmids),
            generation=self.pmcd.generation,
            boot_id=self.pmcd.boot_id)

    async def _send(self, writer: asyncio.StreamWriter, response,
                    started: float) -> bool:
        """Apply any scheduled fault, then send. False = close conn."""
        action = self.faults.next_action()
        if action is not None:
            self.stats.bump("faults")
            if action.kind is FaultKind.DROP_CONNECTION:
                return False
            if action.kind is FaultKind.SLOW_RESPONSE:
                await asyncio.sleep(action.seconds)
        payload = protocol.encode_response(response)
        if action is not None and action.kind is FaultKind.TRUNCATE_PDU:
            payload = payload[:max(1, len(payload) // 2)]
        try:
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        if action is not None and action.kind is FaultKind.TRUNCATE_PDU:
            return False
        self.stats.bump("responses")
        self.stats.record_latency(time.monotonic() - started)
        return True
