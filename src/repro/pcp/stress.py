"""Concurrency stress harness for the PCP service layer.

Drives N concurrent :class:`~repro.pcp.session.PcpSession` clients —
each over its own TCP :class:`~repro.pcp.server.RemoteTransport`
— against one live :class:`~repro.pcp.server.PMCDServer`, and verifies
the service invariants as it goes:

* **no cross-wired responses**: every fetch must return exactly the
  PMIDs that were requested on that connection;
* **monotone fetch timestamps** per client (the daemon clock never
  runs backwards);
* **coalescing saves PMDA reads**: with many clients fetching the same
  PMIDs, the daemon's ``pmda_fetch_calls`` stays strictly below the
  naive per-request count.

Used by the ``repro-experiments pcp-stress`` CLI command and the
concurrency test suite.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..machine.config import get_machine
from ..machine.node import Node
from ..noise import QUIET
from ..pmu.events import pcp_metric_name
from .faults import FaultInjector
from .pmcd import start_pmcd_for_node
from .server import PMCDServer, RemoteTransport
from .session import PcpSession


def run_stress(n_clients: int = 8, n_fetches: int = 32,
               machine: str = "summit", seed: int = 1,
               coalesce: bool = True,
               fault_injector: Optional[FaultInjector] = None,
               server: Optional[PMCDServer] = None) -> Dict[str, object]:
    """Run the stress scenario and return a flat stats report.

    Every client resolves the full 16-metric nest set plus one
    client-specific metric, then alternates fetching the shared set
    (coalescible across clients) and its own single PMID (must never
    be answered with another client's response).
    """
    node = Node(get_machine(machine), seed=seed, noise=QUIET)
    own_server = server is None
    if own_server:
        pmcd = start_pmcd_for_node(node)
        server = PMCDServer(pmcd, coalesce=coalesce,
                            fault_injector=fault_injector).start()
    else:
        pmcd = server.pmcd
    n_channels = node.config.socket.n_memory_channels
    shared_metrics = [pcp_metric_name(channel, write)
                      for channel in range(n_channels)
                      for write in (False, True)]
    errors: List[str] = []
    cross_wired = [0]
    non_monotone = [0]
    #: Clients whose run died on an exception the transport's
    #: retry/reconnect machinery could not absorb.
    unrecovered = [0]
    completed = [0]
    transport_totals = {"retries": 0, "timeouts": 0, "reconnects": 0}
    report_lock = threading.Lock()
    barrier = threading.Barrier(n_clients)

    def worker(index: int) -> None:
        own_metric = pcp_metric_name(index % n_channels,
                                     write=bool(index % 2))
        remote = None
        try:
            remote = RemoteTransport(*server.address,
                                     round_trip_seconds=0.0,
                                     auto_reconnect=True, max_retries=3,
                                     backoff_base_seconds=0.005)
            context = PcpSession(remote, node=None, cache_lookups=True)
            shared_pmids = context.lookup_names(shared_metrics)
            own_pmid = context.lookup_names([own_metric])[0]
            barrier.wait()
            last_timestamp = None
            for i in range(n_fetches):
                pmids = [own_pmid] if i % 2 else shared_pmids
                values = context.fetch(pmids)
                if set(values) != set(pmids):
                    with report_lock:
                        cross_wired[0] += 1
                timestamp = context.last_fetch_timestamp
                if last_timestamp is not None and timestamp < last_timestamp:
                    with report_lock:
                        non_monotone[0] += 1
                last_timestamp = timestamp
            with report_lock:
                completed[0] += 1
        except Exception as exc:  # surfaced in the report, not swallowed
            with report_lock:
                errors.append(f"client {index}: {exc!r}")
                unrecovered[0] += 1
        finally:
            if remote is not None:
                stats = remote.transport_stats()
                with report_lock:
                    for key in transport_totals:
                        transport_totals[key] += stats[key]
                remote.close()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    # A client thread still alive here hung past the join deadline —
    # an unrecovered fault even though it raised no exception.
    hung = sum(1 for thread in threads if thread.is_alive())
    if hung:
        errors.append(f"{hung} client(s) hung past the join deadline")
        unrecovered[0] += hung
    service = server.stats.snapshot()
    daemon = pmcd.stats.snapshot()
    if own_server:
        server.stop()
    total_fetches = n_clients * n_fetches
    # What serving each fetch PDU individually would have cost in PMDA
    # reads: half the fetches carry the 16-metric shared set, half one.
    naive_pmda_calls = (n_clients
                        * ((n_fetches - n_fetches // 2) * len(shared_metrics)
                           + n_fetches // 2))
    return {
        "clients": n_clients,
        "fetches_per_client": n_fetches,
        "total_fetches": total_fetches,
        "errors": errors,
        "cross_wired": cross_wired[0],
        "non_monotone_timestamps": non_monotone[0],
        "pmda_fetch_calls": daemon["pmda_fetch_calls"],
        "naive_pmda_calls": naive_pmda_calls,
        "coalesced": service["coalesced"],
        "batches": service["batches"],
        "max_queue_depth": service["max_queue_depth"],
        "latency_avg_usec": service["latency_avg_usec"],
        "latency_max_usec": service["latency_max_usec"],
        "connections": service["connections"],
        "faults_injected": service["faults"],
        "clients_completed": completed[0],
        "unrecovered_faults": unrecovered[0],
        "client_retries": transport_totals["retries"],
        "client_timeouts": transport_totals["timeouts"],
        "client_reconnects": transport_totals["reconnects"],
    }
