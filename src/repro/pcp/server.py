"""Concurrent PMCD over a real TCP socket.

The in-process :class:`~repro.pcp.pmcd.PMCD` captures the architecture;
this module adds the wire *and* the service layer: a concurrent TCP
server that handles many simultaneous :class:`~repro.pcp.client.
PmapiContext` clients, and a client transport with per-request
timeouts, exponential-backoff retry and optional auto-reconnect. It
exists to demonstrate (and test) that the measurement path genuinely
crosses a process-style boundary — the defining property of the PCP
approach — without requiring multiple OS processes.

Service architecture::

    conn thread (xN) --decode--> dispatch queue --> dispatcher thread
         ^                                              |
         |   response slot + event per request          v
         +------ encode <--- fault injector <--- PMCD (one lock)

One thread per connection parses line-delimited JSON PDUs and enqueues
pending requests on a shared dispatch queue; a single dispatcher
thread drains the queue in batches, **coalesces identical concurrent
FetchRequests into one PMDA read**, and wakes the waiting connection
threads, which consult the :class:`~repro.pcp.faults.FaultInjector`
and write the responses back. Because every pending request owns its
response slot and each connection thread only ever writes its own
socket, responses cannot cross wires between clients by construction.

Encoding: one JSON object per line, ``{"type": <RequestClass>,
**fields}`` → ``{"type": <ResponseClass>, **fields}`` (codec in
:mod:`repro.pcp.protocol`, re-exported here for compatibility).
"""

from __future__ import annotations

import queue as queue_module
import socket
import socketserver
import threading
import time
import warnings
from typing import Dict, List, Optional, Tuple

from ..errors import PCPError, PCPTimeout
from . import protocol
from .faults import FaultInjector, FaultKind
from .pmcd import PMCD
from .protocol import (  # noqa: F401 — codec re-exported for compatibility
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)


class ServiceStats:
    """Thread-safe counters describing the TCP service layer."""

    _FIELDS = ("requests", "responses", "batches", "coalesced",
               "max_queue_depth", "connections", "disconnects", "faults",
               "dispatch_timeouts")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.responses = 0
        self.batches = 0
        #: Fetch PDUs answered by a PMDA read shared with another
        #: in-flight request (requests saved by coalescing).
        self.coalesced = 0
        self.max_queue_depth = 0
        self.connections = 0
        self.disconnects = 0
        self.faults = 0
        self.dispatch_timeouts = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._latency_n = 0

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def record_batch(self, depth: int) -> None:
        with self._lock:
            self.batches += 1
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latency_sum += seconds
            self._latency_max = max(self._latency_max, seconds)
            self._latency_n += 1

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            out: Dict[str, float] = {f: getattr(self, f)
                                     for f in self._FIELDS}
            out["latency_avg_usec"] = int(
                self._latency_sum / self._latency_n * 1e6
            ) if self._latency_n else 0
            out["latency_max_usec"] = int(self._latency_max * 1e6)
            return out


class _Pending:
    """One request waiting for the dispatcher."""

    __slots__ = ("request", "response", "ready", "enqueued_at")

    def __init__(self, request) -> None:
        self.request = request
        self.response = None
        self.ready = threading.Event()
        self.enqueued_at = time.monotonic()


class PMCDServer:
    """Serves one PMCD instance over TCP to many concurrent clients."""

    #: Dispatcher poll interval while the queue is empty.
    DISPATCH_POLL_SECONDS = 0.02
    #: Upper bound on requests drained into one dispatch batch.
    MAX_BATCH = 256

    def __init__(self, pmcd: PMCD, host: str = "127.0.0.1", port: int = 0,
                 fault_injector: Optional[FaultInjector] = None,
                 coalesce: bool = True, response_timeout: float = 10.0):
        self.pmcd = pmcd
        self.coalesce = coalesce
        self.response_timeout = response_timeout
        self.stats = ServiceStats()
        self.faults = fault_injector or FaultInjector()
        # Export service counters through the pmcd.* self-metrics PMDA.
        pmcd.service_stats = self.stats
        self._queue: "queue_module.Queue[_Pending]" = queue_module.Queue()
        self._gate = threading.Event()
        self._gate.set()
        self._stopping = threading.Event()
        self._pmcd_lock = threading.Lock()
        self._conns: set = set()
        self._conn_lock = threading.Lock()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                outer._register_conn(self.connection)
                try:
                    outer._serve_connection(self.rfile, self.wfile)
                finally:
                    outer._unregister_conn(self.connection)

        self._server = socketserver.ThreadingTCPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address

    def start(self) -> "PMCDServer":
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            daemon=True)
        self._dispatcher.start()
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        self._gate.set()
        self._server.shutdown()
        self._server.server_close()
        self._drop_all_connections()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
        if self._thread is not None:
            self._thread.join(timeout=5)
        # Handler threads unregister as they unwind from the dropped
        # sockets; wait so a clean stop reports zero open connections.
        deadline = time.monotonic() + 5.0
        while self.open_connections and time.monotonic() < deadline:
            time.sleep(0.005)

    def restart(self) -> None:
        """Simulate a pmcd crash + restart.

        Every live client connection is dropped and the daemon's
        in-memory state resets (boot id bump → clients flag a gap).
        The listening socket survives, as systemd socket activation
        would provide, so clients with auto-reconnect resume.
        """
        with self._pmcd_lock:
            self.pmcd.restart()
        self._drop_all_connections()

    # ------------------------------------------------------------------
    def pause_dispatch(self) -> None:
        """Hold dispatching so concurrent requests pile up in the
        queue (used by tests to make coalescing deterministic)."""
        self._gate.clear()

    def resume_dispatch(self) -> None:
        self._gate.set()

    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def open_connections(self) -> int:
        with self._conn_lock:
            return len(self._conns)

    # ------------------------------------------------------------------
    def _register_conn(self, conn) -> None:
        self.stats.bump("connections")
        with self._conn_lock:
            self._conns.add(conn)

    def _unregister_conn(self, conn) -> None:
        # Idempotent: a fault-injected drop can race the client's retry
        # teardown so both the handler unwind and the connection-drop
        # path unregister the same socket — count one disconnect per
        # socket close, not per caller.
        with self._conn_lock:
            was_registered = conn in self._conns
            self._conns.discard(conn)
        if was_registered:
            self.stats.bump("disconnects")

    def _drop_all_connections(self) -> None:
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _serve_connection(self, rfile, wfile) -> None:
        try:
            self._serve_lines(rfile, wfile)
        except (OSError, ValueError):
            # The socket was force-dropped under us (fault injection,
            # restart, shutdown) — a normal way for a session to end,
            # not something to dump a traceback over.
            return

    def _serve_lines(self, rfile, wfile) -> None:
        for line in rfile:
            line = line.strip()
            if not line:
                continue
            self.stats.bump("requests")
            try:
                request = protocol.decode_request(line)
            except PCPError as exc:
                response = protocol.ErrorResponse(
                    protocol.PCPStatus.PM_ERR_PMID, str(exc))
            else:
                pending = _Pending(request)
                self._queue.put(pending)
                if pending.ready.wait(self.response_timeout):
                    response = pending.response
                else:
                    self.stats.bump("dispatch_timeouts")
                    response = protocol.ErrorResponse(
                        protocol.PCPStatus.PM_ERR_TIMEOUT,
                        "pmcd dispatch timed out")
            if not self._write_response(wfile, response):
                return

    def _write_response(self, wfile, response) -> bool:
        """Apply any scheduled fault, then send. False = close conn."""
        action = self.faults.next_action()
        if action is not None:
            self.stats.bump("faults")
            if action.kind is FaultKind.DROP_CONNECTION:
                return False
            if action.kind is FaultKind.SLOW_RESPONSE:
                time.sleep(action.seconds)
        payload = protocol.encode_response(response)
        if action is not None and action.kind is FaultKind.TRUNCATE_PDU:
            payload = payload[:max(1, len(payload) // 2)]
        try:
            wfile.write(payload)
            wfile.flush()
        except OSError:
            return False
        if action is not None and action.kind is FaultKind.TRUNCATE_PDU:
            return False
        self.stats.bump("responses")
        return True

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                first = self._queue.get(timeout=self.DISPATCH_POLL_SECONDS)
            except queue_module.Empty:
                continue
            # If dispatch was paused while we were blocked in get(),
            # hold the request so the batch accumulates behind it.
            while not self._gate.is_set() and not self._stopping.is_set():
                self._gate.wait(timeout=0.1)
            batch = [first]
            while len(batch) < self.MAX_BATCH:
                try:
                    batch.append(self._queue.get_nowait())
                except queue_module.Empty:
                    break
            self.stats.record_batch(len(batch))
            self._serve_batch(batch)

    def _serve_batch(self, batch: List[_Pending]) -> None:
        """Serve one drained batch, coalescing identical fetches."""
        groups: Dict[tuple, List[_Pending]] = {}
        order: List[Tuple[Optional[tuple], _Pending]] = []
        for pending in batch:
            if self.coalesce and isinstance(pending.request,
                                            protocol.FetchRequest):
                key = pending.request.pmids
                if key in groups:
                    groups[key].append(pending)
                    self.stats.bump("coalesced")
                    continue
                groups[key] = [pending]
                order.append((key, pending))
            else:
                order.append((None, pending))
        for key, pending in order:
            with self._pmcd_lock:
                try:
                    response = self.pmcd.handle(pending.request)
                except Exception as exc:  # daemon bug: fail the request
                    response = protocol.ErrorResponse(
                        protocol.PCPStatus.PM_ERR_PMID, str(exc))
            members = groups[key] if key is not None else [pending]
            done = time.monotonic()
            for member in members:
                member.response = response
                self.stats.record_latency(done - member.enqueued_at)
                member.ready.set()


class RemoteTransport:
    """Client-side stand-in for a PMCD reached over TCP.

    Duck-types the surface :class:`~repro.pcp.session.PcpSession`
    uses (``handle``, ``pmns``, ``round_trip_seconds``), so the whole
    PAPI PCP component works unchanged across the socket. ``pmns``
    access is served by traversing the remote namespace via
    ChildrenRequest PDUs. Sessions normally obtain one through
    ``repro.pcp.connect(("host", port))`` rather than directly.

    Fault tolerance: each request has a deadline
    (``request_timeout``); a timed-out or failed request is retried up
    to ``max_retries`` times with exponential backoff, reconnecting
    first because a timed-out byte stream may still carry the stale
    response (which would cross-wire every request after it). With
    ``auto_reconnect=True`` the transport also re-dials after the
    daemon drops the connection (e.g. a restart) — the daemon's
    ``boot_id`` then tells the :class:`~repro.pcp.client.PmapiContext`
    to flag a measurement gap.
    """

    def __init__(self, host: str, port: int,
                 round_trip_seconds: float = PMCD.DEFAULT_ROUND_TRIP,
                 timeout: float = 10.0,
                 request_timeout: Optional[float] = None,
                 max_retries: int = 2,
                 backoff_base_seconds: float = 0.01,
                 auto_reconnect: bool = False):
        self.host = host
        self.port = port
        self.round_trip_seconds = round_trip_seconds
        self.connect_timeout = timeout
        self.request_timeout = (timeout if request_timeout is None
                                else request_timeout)
        self.max_retries = max_retries
        self.backoff_base_seconds = backoff_base_seconds
        self.auto_reconnect = auto_reconnect
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._pmns = None
        self.requests = 0
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout)
        self._sock.settimeout(self.request_timeout)
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None

    def _reconnect(self) -> None:
        self._teardown()
        self._connect()
        self.reconnects += 1

    # ------------------------------------------------------------------
    def handle(self, request):
        payload = encode_request(request)
        with self._lock:
            self.requests += 1
            last_error: Optional[Exception] = None
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self.retries += 1
                    time.sleep(self.backoff_base_seconds
                               * (2 ** (attempt - 1)))
                    try:
                        self._reconnect()
                    except OSError as exc:
                        last_error = exc
                        continue
                started = time.monotonic()
                try:
                    self._sock.sendall(payload)
                    line = self._rfile.readline()
                except socket.timeout:
                    self.timeouts += 1
                    last_error = PCPTimeout(
                        f"pmcd request timed out after "
                        f"{self.request_timeout}s")
                    continue  # stream poisoned: reconnect before retry
                except OSError as exc:
                    last_error = exc
                    if not self.auto_reconnect:
                        break
                    continue
                if not line:
                    last_error = PCPError("connection to pmcd lost")
                    if not self.auto_reconnect:
                        break
                    continue
                try:
                    response = decode_response(line)
                except PCPError as exc:  # truncated/corrupt PDU
                    last_error = exc
                    if not self.auto_reconnect:
                        break
                    continue
                elapsed = time.monotonic() - started
                self._latency_sum += elapsed
                self._latency_max = max(self._latency_max, elapsed)
                return response
        if isinstance(last_error, PCPError):
            raise last_error
        raise PCPError(
            f"pmcd request failed after {self.max_retries + 1} "
            f"attempt(s): {last_error}")

    # ------------------------------------------------------------------
    @property
    def pmns(self):
        if self._pmns is None:
            self._pmns = _RemotePMNS(self)
        return self._pmns

    def transport_stats(self) -> Dict[str, float]:
        """Client-side service counters (latency, retries, reconnects)."""
        served = max(1, self.requests)
        return {
            "requests": self.requests,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reconnects": self.reconnects,
            "latency_avg_usec": int(self._latency_sum / served * 1e6),
            "latency_max_usec": int(self._latency_max * 1e6),
        }

    def close(self) -> None:
        self._teardown()


class RemotePMCD(RemoteTransport):
    """Deprecated alias for :class:`RemoteTransport`.

    Use ``repro.pcp.connect(("host", port), ...)`` which dials the
    transport and returns a session in one call.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "RemotePMCD is deprecated; use repro.pcp.connect((host, "
            "port)) or RemoteTransport",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)


class _RemotePMNS:
    """Remote PMNS traversal via ChildrenRequest PDUs."""

    def __init__(self, remote: RemoteTransport):
        self._remote = remote

    def traverse(self, prefix: str = ""):
        response = self._remote.handle(
            protocol.ChildrenRequest(prefix=prefix))
        if response.status != protocol.PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix {prefix!r}")
        for child, leaf in zip(response.children, response.leaf_flags):
            path = f"{prefix}.{child}" if prefix else child
            if leaf:
                yield path
            else:
                yield from self.traverse(path)
