"""PMCD over a real TCP socket.

The in-process :class:`~repro.pcp.pmcd.PMCD` captures the architecture;
this module adds the wire: a threaded TCP server speaking a
line-delimited JSON encoding of the protocol PDUs, and a client
transport that plugs into :class:`~repro.pcp.client.PmapiContext` by
duck-typing the daemon's ``handle``/``pmns``/``round_trip_seconds``
surface. It exists to demonstrate (and test) that the measurement path
genuinely crosses a process-style boundary — the defining property of
the PCP approach — without requiring multiple OS processes.

Encoding: one JSON object per line, ``{"type": <RequestClass>,
**fields}`` → ``{"type": <ResponseClass>, **fields}``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from ..errors import PCPError
from . import protocol
from .pmcd import PMCD

_REQUEST_TYPES = {
    "LookupRequest": protocol.LookupRequest,
    "FetchRequest": protocol.FetchRequest,
    "ChildrenRequest": protocol.ChildrenRequest,
}


def encode_request(request) -> bytes:
    name = type(request).__name__
    if name not in _REQUEST_TYPES:
        raise PCPError(f"cannot encode request type {name}")
    payload = {"type": name}
    payload.update(_dataclass_fields(request))
    return (json.dumps(payload) + "\n").encode("utf-8")


def decode_request(line: bytes):
    data = json.loads(line.decode("utf-8"))
    cls = _REQUEST_TYPES.get(data.pop("type", None))
    if cls is None:
        raise PCPError(f"unknown request in PDU: {data}")
    if "names" in data:
        data["names"] = tuple(data["names"])
    if "pmids" in data:
        data["pmids"] = tuple(data["pmids"])
    return cls(**data)


def encode_response(response) -> bytes:
    name = type(response).__name__
    payload = {"type": name}
    payload.update(_dataclass_fields(response))
    return (json.dumps(payload) + "\n").encode("utf-8")


def decode_response(line: bytes):
    data = json.loads(line.decode("utf-8"))
    name = data.pop("type", None)
    if name == "LookupResponse":
        return protocol.LookupResponse(
            status=protocol.PCPStatus(data["status"]),
            pmids=tuple(data["pmids"]),
            name_status=tuple(protocol.PCPStatus(s)
                              for s in data["name_status"]),
        )
    if name == "FetchResponse":
        return protocol.FetchResponse(
            status=protocol.PCPStatus(data["status"]),
            timestamp=data["timestamp"],
            metrics=tuple(
                protocol.MetricValues(pmid=m["pmid"], values=m["values"])
                for m in data["metrics"]
            ),
        )
    if name == "ChildrenResponse":
        return protocol.ChildrenResponse(
            status=protocol.PCPStatus(data["status"]),
            children=tuple(data["children"]),
            leaf_flags=tuple(data["leaf_flags"]),
        )
    if name == "ErrorResponse":
        return protocol.ErrorResponse(
            status=protocol.PCPStatus(data["status"]),
            detail=data.get("detail", ""),
        )
    raise PCPError(f"unknown response in PDU: {name}")


def _jsonable(value):
    import enum

    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return _dataclass_fields(value)
    return value


def _dataclass_fields(obj) -> dict:
    return {key: _jsonable(value) for key, value in obj.__dict__.items()}


class PMCDServer:
    """Serves one PMCD instance over TCP (threaded, loopback)."""

    def __init__(self, pmcd: PMCD, host: str = "127.0.0.1", port: int = 0):
        self.pmcd = pmcd
        handler_pmcd = pmcd

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for line in self.rfile:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        request = decode_request(line)
                        response = handler_pmcd.handle(request)
                    except Exception as exc:  # malformed PDU
                        response = protocol.ErrorResponse(
                            protocol.PCPStatus.PM_ERR_PMID, str(exc))
                    self.wfile.write(encode_response(response))
                    self.wfile.flush()

        self._server = socketserver.ThreadingTCPServer(
            (host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address

    def start(self) -> "PMCDServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


class RemotePMCD:
    """Client-side stand-in for a PMCD reached over TCP.

    Duck-types the surface :class:`~repro.pcp.client.PmapiContext`
    uses (``handle``, ``pmns``, ``round_trip_seconds``), so the whole
    PAPI PCP component works unchanged across the socket. ``pmns``
    access is served by traversing the remote namespace once via
    ChildrenRequest PDUs.
    """

    def __init__(self, host: str, port: int,
                 round_trip_seconds: float = PMCD.DEFAULT_ROUND_TRIP,
                 timeout: float = 10.0):
        self.round_trip_seconds = round_trip_seconds
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._pmns = None

    # ------------------------------------------------------------------
    def handle(self, request):
        with self._lock:
            self._sock.sendall(encode_request(request))
            line = self._rfile.readline()
        if not line:
            raise PCPError("connection to pmcd lost")
        return decode_response(line)

    @property
    def pmns(self):
        if self._pmns is None:
            self._pmns = _RemotePMNS(self)
        return self._pmns

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()


class _RemotePMNS:
    """Remote PMNS traversal via ChildrenRequest PDUs."""

    def __init__(self, remote: RemotePMCD):
        self._remote = remote

    def traverse(self, prefix: str = ""):
        response = self._remote.handle(
            protocol.ChildrenRequest(prefix=prefix))
        if response.status != protocol.PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix {prefix!r}")
        for child, leaf in zip(response.children, response.leaf_flags):
            path = f"{prefix}.{child}" if prefix else child
            if leaf:
                yield path
            else:
                yield from self.traverse(path)
