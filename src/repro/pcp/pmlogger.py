"""pmlogger: periodic archiving of PCP metrics.

Real PCP deployments run ``pmlogger`` next to PMCD, sampling configured
metrics on an interval into archives that tools replay later. The
simulated logger does the same against a :class:`PmapiContext`: each
``sample()`` costs one daemon round trip (charged to the client node's
clock), records a timestamped snapshot, and the archive answers replay
queries — including rate conversion between consecutive samples, which
is how counter metrics like ``PM_MBA*_BYTES`` become bandwidth curves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PCPError
from .client import PmapiContext


@dataclasses.dataclass(frozen=True)
class ArchiveRecord:
    """One timestamped sample of every logged metric instance."""

    timestamp: float
    values: Dict[Tuple[str, str], int]  # (metric, instance) -> value


class PmLogger:
    """Samples a fixed metric set into an in-memory archive."""

    def __init__(self, context: PmapiContext, metrics: Sequence[str],
                 interval_seconds: float = 1.0):
        if not metrics:
            raise PCPError("pmlogger needs at least one metric")
        if interval_seconds <= 0:
            raise PCPError("sampling interval must be positive")
        self.context = context
        self.metrics = list(metrics)
        self.interval_seconds = interval_seconds
        self._pmids = context.lookup_names(self.metrics)
        self.archive: List[ArchiveRecord] = []

    # ------------------------------------------------------------------
    def sample(self) -> ArchiveRecord:
        """Take one sample now (one pmFetch round trip)."""
        fetched = self.context.fetch(self._pmids)
        values: Dict[Tuple[str, str], int] = {}
        for metric, pmid in zip(self.metrics, self._pmids):
            for instance, value in fetched[pmid].items():
                values[(metric, instance)] = value
        timestamp = (self.context.node.clock
                     if self.context.node is not None
                     else float(len(self.archive)))
        record = ArchiveRecord(timestamp=timestamp, values=values)
        self.archive.append(record)
        return record

    def run(self, n_samples: int) -> None:
        """Sample ``n_samples`` times, idling ``interval_seconds``
        between fetches (advancing the client node's clock)."""
        for i in range(n_samples):
            if i and self.context.node is not None:
                self.context.node.advance(self.interval_seconds)
            self.sample()

    # ------------------------------------------------------------------
    def series(self, metric: str, instance: str) -> List[Tuple[float, int]]:
        """Replay one metric instance as (timestamp, value) pairs."""
        key = (metric, instance)
        out = [(rec.timestamp, rec.values[key])
               for rec in self.archive if key in rec.values]
        if not out:
            raise PCPError(f"no archived data for {metric}[{instance}]")
        return out

    def rates(self, metric: str, instance: str) -> List[Tuple[float, float]]:
        """Counter metric -> rate curve (PCP's rate conversion)."""
        points = self.series(metric, instance)
        out = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t1 <= t0:
                raise PCPError("archive timestamps not increasing")
            out.append((t1, (v1 - v0) / (t1 - t0)))
        return out

    def instances_of(self, metric: str) -> List[str]:
        for rec in self.archive:
            found = sorted(inst for (m, inst) in rec.values if m == metric)
            if found:
                return found
        return []

    def __len__(self) -> int:
        return len(self.archive)
