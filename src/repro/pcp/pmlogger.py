"""Deprecated pmlogger entry point.

The periodic-archiving logic moved to :class:`repro.pcp.session.
SessionLogger` (start one with ``session.log(metrics, interval)``),
and the on-disk archive format lives in :mod:`repro.pcp.archive`.
:class:`PmLogger` remains as a thin shim — same constructor, same
sampling/replay behaviour — that warns on construction. The
:class:`~repro.pcp.archive.ArchiveRecord` dataclass is re-exported
here for compatibility.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from .archive import ArchiveRecord  # noqa: F401 — re-exported
from .session import SessionLogger


class PmLogger(SessionLogger):
    """Deprecated alias for :class:`~repro.pcp.session.SessionLogger`.

    Use ``session.log(metrics, interval_seconds)`` on a session from
    ``repro.pcp.connect(...)``.
    """

    def __init__(self, context, metrics: Sequence[str],
                 interval_seconds: float = 1.0):
        warnings.warn(
            "PmLogger is deprecated; use session.log(...) on a "
            "PcpSession from repro.pcp.connect(...)",
            DeprecationWarning, stacklevel=2)
        super().__init__(context, metrics, interval_seconds)
