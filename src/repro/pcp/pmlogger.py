"""pmlogger: periodic archiving of PCP metrics.

Real PCP deployments run ``pmlogger`` next to PMCD, sampling configured
metrics on an interval into archives that tools replay later. The
simulated logger does the same against a :class:`PmapiContext`: each
``sample()`` costs one daemon round trip (charged to the client node's
clock), records a timestamped snapshot, and the archive answers replay
queries — including rate conversion between consecutive samples, which
is how counter metrics like ``PM_MBA*_BYTES`` become bandwidth curves.

Degraded mode: if the daemon restarts between samples (the client
context observes a ``boot_id`` change), the next archive record is
flagged ``gap=True``. Rate conversion never differentiates across a
gap — a daemon crash yields a missing interval in the bandwidth curve
instead of a corrupted one.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PCPError
from .client import PmapiContext


@dataclasses.dataclass(frozen=True)
class ArchiveRecord:
    """One timestamped sample of every logged metric instance."""

    timestamp: float
    values: Dict[Tuple[str, str], int]  # (metric, instance) -> value
    #: True when the daemon restarted since the previous sample; the
    #: interval ending at this record is unusable for rates.
    gap: bool = False


class PmLogger:
    """Samples a fixed metric set into an in-memory archive."""

    def __init__(self, context: PmapiContext, metrics: Sequence[str],
                 interval_seconds: float = 1.0):
        if not metrics:
            raise PCPError("pmlogger needs at least one metric")
        if interval_seconds <= 0:
            raise PCPError("sampling interval must be positive")
        self.context = context
        self.metrics = list(metrics)
        self.interval_seconds = interval_seconds
        self._pmids = context.lookup_names(self.metrics)
        self._gaps_seen = context.gaps
        self.archive: List[ArchiveRecord] = []

    # ------------------------------------------------------------------
    def sample(self) -> ArchiveRecord:
        """Take one sample now (one pmFetch round trip)."""
        fetched = self.context.fetch(self._pmids)
        gap = self.context.gaps > self._gaps_seen
        if gap:
            # Daemon restarted under us: re-resolve the metric names
            # (the namespace generation changed) and mark the record.
            self._gaps_seen = self.context.gaps
            self._pmids = self.context.lookup_names(self.metrics)
        values: Dict[Tuple[str, str], int] = {}
        for metric, pmid in zip(self.metrics, self._pmids):
            for instance, value in fetched[pmid].items():
                values[(metric, instance)] = value
        timestamp = (self.context.node.clock
                     if self.context.node is not None
                     else float(len(self.archive)))
        record = ArchiveRecord(timestamp=timestamp, values=values, gap=gap)
        self.archive.append(record)
        return record

    def run(self, n_samples: int) -> None:
        """Sample ``n_samples`` times, idling ``interval_seconds``
        between fetches (advancing the client node's clock)."""
        for i in range(n_samples):
            if i and self.context.node is not None:
                self.context.node.advance(self.interval_seconds)
            self.sample()

    # ------------------------------------------------------------------
    def series(self, metric: str, instance: str) -> List[Tuple[float, int]]:
        """Replay one metric instance as (timestamp, value) pairs."""
        key = (metric, instance)
        out = [(rec.timestamp, rec.values[key])
               for rec in self.archive if key in rec.values]
        if not out:
            raise PCPError(f"no archived data for {metric}[{instance}]")
        return out

    def rates(self, metric: str, instance: str) -> List[Tuple[float, float]]:
        """Counter metric -> rate curve (PCP's rate conversion).

        Intervals that end at a gap record (daemon restart) are
        skipped: the record restarts the curve instead of producing a
        bogus rate from mixed counter epochs.
        """
        key = (metric, instance)
        out: List[Tuple[float, float]] = []
        prev: Optional[ArchiveRecord] = None
        for rec in self.archive:
            if key not in rec.values:
                continue
            if rec.gap or prev is None:
                prev = rec
                continue
            t0, t1 = prev.timestamp, rec.timestamp
            if t1 <= t0:
                raise PCPError("archive timestamps not increasing")
            out.append((t1, (rec.values[key] - prev.values[key]) / (t1 - t0)))
            prev = rec
        return out

    def instances_of(self, metric: str) -> List[str]:
        for rec in self.archive:
            found = sorted(inst for (m, inst) in rec.values if m == metric)
            if found:
                return found
        return []

    def __len__(self) -> int:
        return len(self.archive)
