"""Deprecated client-side PCP context (the libpcp/pmapi equivalent).

The session logic that lived here moved to :mod:`repro.pcp.session`
when the three client entry points (``PmapiContext``, ``RemotePMCD``,
``PmLogger``) were unified behind :func:`repro.pcp.connect`.
:class:`PmapiContext` remains as a thin shim — same constructor, same
behaviour, same accounting (it *is* a :class:`~repro.pcp.session.
PcpSession`) — that warns on construction so existing call sites keep
working while new code uses ``pcp.connect(...)``.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..machine.node import Node
from .session import PcpSession


class PmapiContext(PcpSession):
    """Deprecated alias for :class:`~repro.pcp.session.PcpSession`.

    Use ``repro.pcp.connect(pmcd, node=..., cache_lookups=...)``.
    """

    def __init__(self, pmcd, node: Optional[Node] = None,
                 cache_lookups: bool = False):
        warnings.warn(
            "PmapiContext is deprecated; use repro.pcp.connect(...) "
            "which returns a PcpSession",
            DeprecationWarning, stacklevel=2)
        super().__init__(pmcd, node=node, cache_lookups=cache_lookups)
