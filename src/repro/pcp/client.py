"""Client-side PCP context (the libpcp/pmapi equivalent).

User-space code — in particular the PAPI PCP component — talks to the
daemon through a :class:`PmapiContext`. Each call is one daemon round
trip: the client's node clock advances by the configured latency, so
measurement windows taken through PCP are slightly longer than direct
reads. That extra window (milliseconds) is the only systematic
difference between the two paths and is swamped by kernel runtime for
all but the smallest problems — the paper's accuracy result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import PCPError
from ..machine.node import Node
from .pmcd import PMCD
from .protocol import (
    ChildrenRequest,
    ChildrenResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    PCPStatus,
)


class PmapiContext:
    """A connection from (unprivileged) user space to a PMCD."""

    def __init__(self, pmcd: PMCD, node: Optional[Node] = None):
        """``node`` is the machine whose clock pays the round trips;
        pass None for a free-running client (no latency accounting)."""
        self.pmcd = pmcd
        self.node = node
        self.round_trips = 0

    # ------------------------------------------------------------------
    def _round_trip(self) -> None:
        self.round_trips += 1
        if self.node is not None and self.pmcd.round_trip_seconds > 0:
            self.node.advance(self.pmcd.round_trip_seconds)

    # ------------------------------------------------------------------
    def lookup_names(self, names: Sequence[str]) -> List[int]:
        """pmLookupName: resolve metric names to PMIDs."""
        self._round_trip()
        response = self.pmcd.handle(LookupRequest(names=tuple(names)))
        if not isinstance(response, LookupResponse):
            raise PCPError(f"unexpected response: {response}")
        if response.status != PCPStatus.OK:
            bad = [n for n, s in zip(names, response.name_status)
                   if s != PCPStatus.OK]
            raise PCPError(f"unknown metric name(s): {bad}")
        return list(response.pmids)

    def fetch(self, pmids: Sequence[int]) -> Dict[int, Dict[str, int]]:
        """pmFetch: current values for each PMID, keyed by instance."""
        self._round_trip()
        response = self.pmcd.handle(FetchRequest(pmids=tuple(pmids)))
        if not isinstance(response, FetchResponse):
            raise PCPError(f"unexpected response: {response}")
        if response.status != PCPStatus.OK:
            raise PCPError(f"fetch failed: {response.status.name}")
        return {m.pmid: dict(m.values) for m in response.metrics}

    def fetch_one(self, name: str, instance: str) -> int:
        """Convenience: one metric, one instance."""
        pmid = self.lookup_names([name])[0]
        values = self.fetch([pmid])[pmid]
        try:
            return values[instance]
        except KeyError:
            raise PCPError(
                f"metric {name!r} has no instance {instance!r}; "
                f"available: {sorted(values)}"
            ) from None

    def children(self, prefix: str = "") -> List[str]:
        """pmGetChildren: names one level below ``prefix``."""
        self._round_trip()
        response = self.pmcd.handle(ChildrenRequest(prefix=prefix))
        if not isinstance(response, ChildrenResponse):
            raise PCPError(f"unexpected response: {response}")
        if response.status != PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix: {prefix!r}")
        return list(response.children)

    def traverse(self, prefix: str = "") -> List[str]:
        """pmTraversePMNS: all metric names under ``prefix``.

        Served from the daemon's PMNS in one round trip (the real
        protocol batches the traversal similarly).
        """
        self._round_trip()
        return list(self.pmcd.pmns.traverse(prefix))
