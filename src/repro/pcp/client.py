"""Client-side PCP context (the libpcp/pmapi equivalent).

User-space code — in particular the PAPI PCP component — talks to the
daemon through a :class:`PmapiContext`. Each call is one daemon round
trip: the client's node clock advances by the configured latency, so
measurement windows taken through PCP are slightly longer than direct
reads. That extra window (milliseconds) is the only systematic
difference between the two paths and is swamped by kernel runtime for
all but the smallest problems — the paper's accuracy result.

The context also implements two service-layer behaviours:

* **Lookup caching with generation invalidation** (opt-in via
  ``cache_lookups=True``): resolved name→PMID bindings are served
  locally with *no* round trip until the daemon's namespace
  ``generation`` (carried on every response) changes. It is off by
  default so that measurement sessions keep the exact round-trip
  accounting of the seed — the golden-figure fixtures prove this.
* **Gap detection**: every fetch response carries the daemon's
  ``boot_id``. If it changes mid-session (daemon crash + restart), the
  context increments :attr:`gaps` instead of silently splicing counter
  epochs together; consumers like ``pmlogger`` mark the affected
  sample so rate conversion skips the discontinuity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import PCPError
from ..machine.node import Node
from .pmcd import PMCD
from .protocol import (
    ChildrenRequest,
    ChildrenResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    PCPStatus,
)


class PmapiContext:
    """A connection from (unprivileged) user space to a PMCD."""

    def __init__(self, pmcd: PMCD, node: Optional[Node] = None,
                 cache_lookups: bool = False):
        """``node`` is the machine whose clock pays the round trips;
        pass None for a free-running client (no latency accounting).
        ``cache_lookups`` serves repeated name resolution locally
        (invalidated when the daemon's generation changes)."""
        self.pmcd = pmcd
        self.node = node
        self.round_trips = 0
        self.cache_lookups = cache_lookups
        #: Lookups answered from the local cache (no round trip).
        self.cached_lookups = 0
        #: Daemon restarts observed mid-session (measurement gaps).
        self.gaps = 0
        self.last_fetch_timestamp: Optional[float] = None
        self._lookup_cache: Dict[str, int] = {}
        self._generation: Optional[int] = None
        self._boot_id: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def gap_detected(self) -> bool:
        """True once a daemon restart has been observed."""
        return self.gaps > 0

    def _round_trip(self) -> None:
        self.round_trips += 1
        if self.node is not None and self.pmcd.round_trip_seconds > 0:
            self.node.advance(self.pmcd.round_trip_seconds)

    def _observe(self, response) -> None:
        """Track the daemon's generation/boot id from any response."""
        generation = getattr(response, "generation", None)
        if generation is not None:
            if self._generation is not None and generation != self._generation:
                self._lookup_cache.clear()
            self._generation = generation
        boot_id = getattr(response, "boot_id", None)
        if boot_id is not None:
            if self._boot_id is not None and boot_id != self._boot_id:
                self.gaps += 1
            self._boot_id = boot_id

    # ------------------------------------------------------------------
    def lookup_names(self, names: Sequence[str]) -> List[int]:
        """pmLookupName: resolve metric names to PMIDs."""
        names = list(names)
        if self.cache_lookups and names:
            cached = [self._lookup_cache.get(name) for name in names]
            if all(pmid is not None for pmid in cached):
                self.cached_lookups += 1
                return cached
        self._round_trip()
        response = self.pmcd.handle(LookupRequest(names=tuple(names)))
        if not isinstance(response, LookupResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            bad = [n for n, s in zip(names, response.name_status)
                   if s != PCPStatus.OK]
            raise PCPError(f"unknown metric name(s): {bad}")
        for name, pmid in zip(names, response.pmids):
            self._lookup_cache[name] = pmid
        return list(response.pmids)

    def fetch(self, pmids: Sequence[int]) -> Dict[int, Dict[str, int]]:
        """pmFetch: current values for each PMID, keyed by instance."""
        self._round_trip()
        response = self.pmcd.handle(FetchRequest(pmids=tuple(pmids)))
        if not isinstance(response, FetchResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            raise PCPError(f"fetch failed: {response.status.name}")
        self.last_fetch_timestamp = response.timestamp
        return {m.pmid: dict(m.values) for m in response.metrics}

    def fetch_one(self, name: str, instance: str) -> int:
        """Convenience: one metric, one instance."""
        pmid = self.lookup_names([name])[0]
        values = self.fetch([pmid])[pmid]
        try:
            return values[instance]
        except KeyError:
            raise PCPError(
                f"metric {name!r} has no instance {instance!r}; "
                f"available: {sorted(values)}"
            ) from None

    def children(self, prefix: str = "") -> List[str]:
        """pmGetChildren: names one level below ``prefix``."""
        self._round_trip()
        response = self.pmcd.handle(ChildrenRequest(prefix=prefix))
        if not isinstance(response, ChildrenResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix: {prefix!r}")
        return list(response.children)

    def traverse(self, prefix: str = "") -> List[str]:
        """pmTraversePMNS: all metric names under ``prefix``.

        Served from the daemon's PMNS in one round trip (the real
        protocol batches the traversal similarly).
        """
        self._round_trip()
        return list(self.pmcd.pmns.traverse(prefix))

    # ------------------------------------------------------------------
    def daemon_overhead(self) -> Dict[str, float]:
        """Service-layer overhead counters for this client's path.

        Merges client-side accounting (round trips, cache hits, gaps),
        the daemon's own :class:`~repro.pcp.pmcd.PMCDStats`, and — for
        TCP transports — the remote transport's latency/retry stats.
        """
        info: Dict[str, float] = {
            "round_trips": self.round_trips,
            "cached_lookups": self.cached_lookups,
            "gaps": self.gaps,
            "round_trip_seconds": self.pmcd.round_trip_seconds,
            "latency_seconds": (self.round_trips
                                * self.pmcd.round_trip_seconds),
        }
        stats = getattr(self.pmcd, "stats", None)
        if stats is not None and hasattr(stats, "snapshot"):
            info.update({f"pmcd.{k}": v for k, v in stats.snapshot().items()})
        service = getattr(self.pmcd, "service_stats", None)
        if service is not None:
            info.update(
                {f"service.{k}": v for k, v in service.snapshot().items()})
        transport = getattr(self.pmcd, "transport_stats", None)
        if callable(transport):
            info.update(
                {f"transport.{k}": v for k, v in transport().items()})
        return info
