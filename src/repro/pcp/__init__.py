"""Simulated Performance Co-Pilot stack: PMNS, PMDAs, the PMCD daemon
and the client (pmapi) context. The privileged perfevent PMDA is what
lets unprivileged users read nest counters — the mechanism the paper
validates."""

from .client import PmapiContext
from .pmcd import PMCD, start_pmcd_for_node
from .pmlogger import ArchiveRecord, PmLogger
from .pmda import PMDA, PerfeventPMDA, make_pmid, pmid_domain
from .pmns import PMNS
from .protocol import (
    ChildrenRequest,
    ChildrenResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    MetricValues,
    PCPStatus,
)

__all__ = [
    "ArchiveRecord",
    "ChildrenRequest",
    "PmLogger",
    "ChildrenResponse",
    "FetchRequest",
    "FetchResponse",
    "LookupRequest",
    "LookupResponse",
    "MetricValues",
    "PCPStatus",
    "PMCD",
    "PMDA",
    "PMNS",
    "PerfeventPMDA",
    "PmapiContext",
    "make_pmid",
    "pmid_domain",
    "start_pmcd_for_node",
]
