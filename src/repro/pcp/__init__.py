"""Simulated Performance Co-Pilot stack: PMNS, PMDAs, the PMCD daemon
and the client (pmapi) context, plus the concurrent TCP service layer
(:mod:`~repro.pcp.server`) with fault injection
(:mod:`~repro.pcp.faults`). The privileged perfevent PMDA is what lets
unprivileged users read nest counters — the mechanism the paper
validates."""

from .client import PmapiContext
from .faults import FaultAction, FaultInjector, FaultKind
from .pmcd import PMCD, PMCDStats, start_pmcd_for_node
from .pmlogger import ArchiveRecord, PmLogger
from .pmda import PMDA, PerfeventPMDA, PmcdPMDA, make_pmid, pmid_domain
from .pmns import PMNS
from .protocol import (
    ChildrenRequest,
    ChildrenResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    MetricValues,
    PCPStatus,
)
from .server import PMCDServer, RemotePMCD, ServiceStats

__all__ = [
    "ArchiveRecord",
    "ChildrenRequest",
    "PmLogger",
    "ChildrenResponse",
    "FaultAction",
    "FaultInjector",
    "FaultKind",
    "FetchRequest",
    "FetchResponse",
    "LookupRequest",
    "LookupResponse",
    "MetricValues",
    "PCPStatus",
    "PMCD",
    "PMCDServer",
    "PMCDStats",
    "PMDA",
    "PMNS",
    "PerfeventPMDA",
    "PmapiContext",
    "PmcdPMDA",
    "RemotePMCD",
    "ServiceStats",
    "make_pmid",
    "pmid_domain",
    "start_pmcd_for_node",
]
