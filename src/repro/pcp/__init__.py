"""Simulated Performance Co-Pilot stack: PMNS, PMDAs, the PMCD daemon
and the unified client session surface (:func:`connect` /
:class:`PcpSession`), plus the threaded TCP service layer
(:mod:`~repro.pcp.server`), the asyncio multi-tenant fabric
(:mod:`~repro.pcp.aserver`), on-disk metric archives
(:mod:`~repro.pcp.archive`) and fault injection
(:mod:`~repro.pcp.faults`). The privileged perfevent PMDA is what lets
unprivileged users read nest counters — the mechanism the paper
validates.

``PmapiContext``, ``RemotePMCD`` and ``PmLogger`` are deprecated shims
kept for compatibility; new code uses ``pcp.connect(...)``."""

from .archive import ArchiveRecord, MetricArchive, rates_from_records
from .aserver import AsyncPMCDServer, FabricStats
from .client import PmapiContext
from .faults import FaultAction, FaultInjector, FaultKind
from .pmcd import PMCD, PMCDStats, start_pmcd_for_node
from .pmlogger import PmLogger
from .pmda import PMDA, PerfeventPMDA, PmcdPMDA, make_pmid, pmid_domain
from .pmns import PMNS
from .protocol import (
    PROTOCOL_VERSION,
    ArchiveFetchRequest,
    ArchiveFetchResponse,
    ArchiveSample,
    ChildrenRequest,
    ChildrenResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    MetricValues,
    OpenRequest,
    OpenResponse,
    PCPStatus,
    negotiate_version,
)
from .server import PMCDServer, RemotePMCD, RemoteTransport, ServiceStats
from .session import AsyncPcpSession, PcpSession, SessionLogger, connect

__all__ = [
    "ArchiveFetchRequest",
    "ArchiveFetchResponse",
    "ArchiveRecord",
    "ArchiveSample",
    "AsyncPMCDServer",
    "AsyncPcpSession",
    "ChildrenRequest",
    "ChildrenResponse",
    "FabricStats",
    "FaultAction",
    "FaultInjector",
    "FaultKind",
    "FetchRequest",
    "FetchResponse",
    "LookupRequest",
    "LookupResponse",
    "MetricArchive",
    "MetricValues",
    "OpenRequest",
    "OpenResponse",
    "PCPStatus",
    "PMCD",
    "PMCDServer",
    "PMCDStats",
    "PMDA",
    "PMNS",
    "PROTOCOL_VERSION",
    "PcpSession",
    "PerfeventPMDA",
    "PmLogger",
    "PmapiContext",
    "PmcdPMDA",
    "RemotePMCD",
    "RemoteTransport",
    "ServiceStats",
    "SessionLogger",
    "connect",
    "make_pmid",
    "negotiate_version",
    "pmid_domain",
    "rates_from_records",
    "start_pmcd_for_node",
]
