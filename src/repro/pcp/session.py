"""One session surface for the whole PCP stack: ``pcp.connect()``.

Historically the package had three unrelated client entry points —
``PmapiContext`` (in-process contexts), ``RemotePMCD`` (the TCP
transport) and ``PmLogger`` (periodic archiving) — each with its own
constructor. :func:`connect` collapses them into one call::

    session = pcp.connect(pmcd)                      # in-process
    session = pcp.connect(("127.0.0.1", 44321))      # over TCP
    session = pcp.connect(server)                    # dial a server
    asession = pcp.connect(addr, mode="async")       # asyncio client

Sync mode returns a :class:`PcpSession` carrying the full pmapi
surface — ``lookup_names``/``fetch``/``fetch_one``/``children``/
``traverse`` — plus periodic logging (:meth:`PcpSession.log` returns a
:class:`SessionLogger`) and archive replay
(:meth:`PcpSession.fetch_archive` queries a historical window instead
of live-fetching). Async mode returns an :class:`AsyncPcpSession`
whose methods are coroutines (``await session.fetch(...)``), designed
for thousands of concurrent contexts against the asyncio fabric
(:mod:`repro.pcp.aserver`).

The old names remain as thin deprecated shims (``PmapiContext`` and
``PmLogger`` subclass the session classes; ``RemotePMCD`` subclasses
the transport) so every pre-redesign call site keeps working, with a
``DeprecationWarning`` pointing here.

Accounting is unchanged from the seed: each sync call is one daemon
round trip charged to the client node's clock, lookup caching is
opt-in and generation-invalidated, and a daemon ``boot_id`` change is
surfaced as a measurement gap — the golden-figure fixtures hold
bit-exactly through the redesign.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ArchiveError, PCPError, PCPTimeout
from ..machine.node import Node
from .archive import ArchiveRecord, rates_from_records
from .protocol import (
    ArchiveFetchRequest,
    ArchiveFetchResponse,
    ChildrenRequest,
    ChildrenResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    OpenRequest,
    OpenResponse,
    PCPStatus,
    decode_response,
    encode_request,
)


def _records_from_samples(samples) -> List[ArchiveRecord]:
    """ArchiveFetchResponse payload -> the PmLogger record shape."""
    records = []
    for sample in samples:
        values: Dict[Tuple[str, str], int] = {}
        for key, value in sample.values.items():
            metric, _, instance = key.rpartition("|")
            values[(metric, instance)] = int(value)
        records.append(ArchiveRecord(timestamp=sample.timestamp,
                                     values=values, gap=sample.gap))
    return records


class _SessionState:
    """Client-side accounting shared by the sync and async sessions."""

    def __init__(self, node: Optional[Node], cache_lookups: bool):
        self.node = node
        self.cache_lookups = cache_lookups
        self.round_trips = 0
        #: Lookups answered from the local cache (no round trip).
        self.cached_lookups = 0
        #: Daemon restarts observed mid-session (measurement gaps).
        self.gaps = 0
        self.last_fetch_timestamp: Optional[float] = None
        #: Negotiated protocol version (None until :meth:`handshake`).
        self.protocol_version: Optional[int] = None
        self._lookup_cache: Dict[str, int] = {}
        self._generation: Optional[int] = None
        self._boot_id: Optional[int] = None

    @property
    def gap_detected(self) -> bool:
        """True once a daemon restart has been observed."""
        return self.gaps > 0

    def _observe(self, response) -> None:
        """Track the daemon's generation/boot id from any response."""
        generation = getattr(response, "generation", None)
        if generation is not None:
            if self._generation is not None and generation != self._generation:
                self._lookup_cache.clear()
            self._generation = generation
        boot_id = getattr(response, "boot_id", None)
        if boot_id is not None:
            if self._boot_id is not None and boot_id != self._boot_id:
                self.gaps += 1
            self._boot_id = boot_id

    def _observe_open(self, response) -> int:
        """Digest the daemon's answer to an OpenRequest."""
        if isinstance(response, OpenResponse) \
                and response.status == PCPStatus.OK:
            self._observe(response)
            self.protocol_version = response.version
        else:
            # A v1 daemon rejects the unknown PDU type — that *is* the
            # negotiation result.
            self.protocol_version = 1
        return self.protocol_version

    def _check_archive_response(self, response) -> List[ArchiveRecord]:
        if isinstance(response, ErrorResponse):
            if response.status == PCPStatus.PM_ERR_NODATA:
                raise ArchiveError("daemon has no archive attached")
            raise PCPError(
                f"archive fetch failed: {response.status.name} "
                f"({response.detail})")
        if not isinstance(response, ArchiveFetchResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status == PCPStatus.PM_ERR_NODATA:
            raise ArchiveError("daemon has no archive attached")
        if response.status != PCPStatus.OK:
            raise PCPError(f"archive fetch failed: {response.status.name}")
        return _records_from_samples(response.samples)


class PcpSession(_SessionState):
    """A synchronous session from user space to a PMCD.

    ``pmcd`` is anything with the daemon surface (``handle``, ``pmns``,
    ``round_trip_seconds``): an in-process :class:`~repro.pcp.pmcd.
    PMCD` or a TCP :class:`~repro.pcp.server.RemoteTransport`. ``node``
    is the machine whose clock pays the round trips; pass None for a
    free-running client (no latency accounting). ``cache_lookups``
    serves repeated name resolution locally (invalidated when the
    daemon's generation changes).
    """

    def __init__(self, pmcd, node: Optional[Node] = None,
                 cache_lookups: bool = False):
        super().__init__(node, cache_lookups)
        self.pmcd = pmcd

    # ------------------------------------------------------------------
    def _round_trip(self) -> None:
        self.round_trips += 1
        if self.node is not None and self.pmcd.round_trip_seconds > 0:
            self.node.advance(self.pmcd.round_trip_seconds)

    # ------------------------------------------------------------------
    def handshake(self) -> int:
        """Negotiate the protocol version (one round trip).

        Optional: sessions default to the v1 surface, which every
        daemon speaks. Returns the negotiated version.
        """
        self._round_trip()
        return self._observe_open(self.pmcd.handle(OpenRequest()))

    def lookup_names(self, names: Sequence[str]) -> List[int]:
        """pmLookupName: resolve metric names to PMIDs."""
        names = list(names)
        if self.cache_lookups and names:
            cached = [self._lookup_cache.get(name) for name in names]
            if all(pmid is not None for pmid in cached):
                self.cached_lookups += 1
                return cached
        self._round_trip()
        response = self.pmcd.handle(LookupRequest(names=tuple(names)))
        if not isinstance(response, LookupResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            bad = [n for n, s in zip(names, response.name_status)
                   if s != PCPStatus.OK]
            raise PCPError(f"unknown metric name(s): {bad}")
        for name, pmid in zip(names, response.pmids):
            self._lookup_cache[name] = pmid
        return list(response.pmids)

    def fetch(self, pmids: Sequence[int]) -> Dict[int, Dict[str, int]]:
        """pmFetch: current values for each PMID, keyed by instance."""
        self._round_trip()
        response = self.pmcd.handle(FetchRequest(pmids=tuple(pmids)))
        if not isinstance(response, FetchResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            raise PCPError(f"fetch failed: {response.status.name}")
        self.last_fetch_timestamp = response.timestamp
        return {m.pmid: dict(m.values) for m in response.metrics}

    def fetch_one(self, name: str, instance: str) -> int:
        """Convenience: one metric, one instance."""
        pmid = self.lookup_names([name])[0]
        values = self.fetch([pmid])[pmid]
        try:
            return values[instance]
        except KeyError:
            raise PCPError(
                f"metric {name!r} has no instance {instance!r}; "
                f"available: {sorted(values)}"
            ) from None

    def children(self, prefix: str = "") -> List[str]:
        """pmGetChildren: names one level below ``prefix``."""
        self._round_trip()
        response = self.pmcd.handle(ChildrenRequest(prefix=prefix))
        if not isinstance(response, ChildrenResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix: {prefix!r}")
        return list(response.children)

    def traverse(self, prefix: str = "") -> List[str]:
        """pmTraversePMNS: all metric names under ``prefix``.

        Served from the daemon's PMNS in one round trip (the real
        protocol batches the traversal similarly).
        """
        self._round_trip()
        return list(self.pmcd.pmns.traverse(prefix))

    # ------------------------------------------------------------------
    def log(self, metrics: Sequence[str], interval_seconds: float = 1.0,
            store=None) -> "SessionLogger":
        """Start a pmlogger-style periodic logger on this session.

        ``store`` optionally mirrors every sample into an on-disk
        :class:`~repro.pcp.archive.MetricArchive`.
        """
        return SessionLogger(self, metrics, interval_seconds, store=store)

    def fetch_archive(self, metrics: Sequence[str] = (),
                      t0: float = 0.0, t1: Optional[float] = None
                      ) -> List[ArchiveRecord]:
        """Replay archived samples for ``metrics`` in ``[t0, t1]``.

        Empty ``metrics`` means all; ``t1=None`` means no upper bound.
        Requires a daemon with an archive attached (v2 protocol);
        raises :class:`~repro.errors.ArchiveError` otherwise. The
        records returned are identical to what a live ``SessionLogger``
        recorded.
        """
        self._round_trip()
        response = self.pmcd.handle(ArchiveFetchRequest(
            metrics=tuple(metrics), t0=t0,
            t1=-1.0 if t1 is None else t1))
        return self._check_archive_response(response)

    # ------------------------------------------------------------------
    def daemon_overhead(self) -> Dict[str, float]:
        """Service-layer overhead counters for this client's path.

        Merges client-side accounting (round trips, cache hits, gaps),
        the daemon's own :class:`~repro.pcp.pmcd.PMCDStats`, and — for
        TCP transports — the remote transport's latency/retry stats.
        """
        info: Dict[str, float] = {
            "round_trips": self.round_trips,
            "cached_lookups": self.cached_lookups,
            "gaps": self.gaps,
            "round_trip_seconds": self.pmcd.round_trip_seconds,
            "latency_seconds": (self.round_trips
                                * self.pmcd.round_trip_seconds),
        }
        stats = getattr(self.pmcd, "stats", None)
        if stats is not None and hasattr(stats, "snapshot"):
            info.update({f"pmcd.{k}": v for k, v in stats.snapshot().items()})
        service = getattr(self.pmcd, "service_stats", None)
        if service is not None:
            info.update(
                {f"service.{k}": v for k, v in service.snapshot().items()})
        transport = getattr(self.pmcd, "transport_stats", None)
        if callable(transport):
            info.update(
                {f"transport.{k}": v for k, v in transport().items()})
        return info

    def close(self) -> None:
        """Close the underlying transport, if it has a close()."""
        closer = getattr(self.pmcd, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "PcpSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SessionLogger:
    """Samples a fixed metric set into an archive (pmlogger).

    Each ``sample()`` costs one daemon round trip (charged to the
    client node's clock) and records a timestamped snapshot; the
    in-memory archive answers replay queries including rate conversion.
    If the daemon restarts between samples (the session observes a
    ``boot_id`` change) the next record is flagged ``gap=True`` and
    rate conversion never differentiates across it.

    With ``store`` set, every record is also appended to an on-disk
    :class:`~repro.pcp.archive.MetricArchive`, making the samples
    replayable by other sessions via ``fetch_archive``.
    """

    def __init__(self, context, metrics: Sequence[str],
                 interval_seconds: float = 1.0, store=None):
        if not metrics:
            raise PCPError("pmlogger needs at least one metric")
        if interval_seconds <= 0:
            raise PCPError("sampling interval must be positive")
        self.context = context
        self.metrics = list(metrics)
        self.interval_seconds = interval_seconds
        self.store = store
        self._pmids = context.lookup_names(self.metrics)
        self._gaps_seen = context.gaps
        self.archive: List[ArchiveRecord] = []

    @property
    def session(self):
        return self.context

    # ------------------------------------------------------------------
    def sample(self) -> ArchiveRecord:
        """Take one sample now (one pmFetch round trip)."""
        fetched = self.context.fetch(self._pmids)
        gap = self.context.gaps > self._gaps_seen
        if gap:
            # Daemon restarted under us: re-resolve the metric names
            # (the namespace generation changed) and mark the record.
            self._gaps_seen = self.context.gaps
            self._pmids = self.context.lookup_names(self.metrics)
        values: Dict[Tuple[str, str], int] = {}
        for metric, pmid in zip(self.metrics, self._pmids):
            for instance, value in fetched[pmid].items():
                values[(metric, instance)] = value
        timestamp = (self.context.node.clock
                     if self.context.node is not None
                     else float(len(self.archive)))
        record = ArchiveRecord(timestamp=timestamp, values=values, gap=gap)
        self.archive.append(record)
        if self.store is not None:
            self.store.append(record)
        return record

    def run(self, n_samples: int) -> None:
        """Sample ``n_samples`` times, idling ``interval_seconds``
        between fetches (advancing the client node's clock)."""
        for i in range(n_samples):
            if i and self.context.node is not None:
                self.context.node.advance(self.interval_seconds)
            self.sample()

    # ------------------------------------------------------------------
    def series(self, metric: str, instance: str) -> List[Tuple[float, int]]:
        """Replay one metric instance as (timestamp, value) pairs."""
        key = (metric, instance)
        out = [(rec.timestamp, rec.values[key])
               for rec in self.archive if key in rec.values]
        if not out:
            raise PCPError(f"no archived data for {metric}[{instance}]")
        return out

    def rates(self, metric: str, instance: str) -> List[Tuple[float, float]]:
        """Counter metric -> rate curve (PCP's rate conversion).

        Intervals that end at a gap record (daemon restart) are
        skipped: the record restarts the curve instead of producing a
        bogus rate from mixed counter epochs.
        """
        return rates_from_records(self.archive, metric, instance)

    def instances_of(self, metric: str) -> List[str]:
        for rec in self.archive:
            found = sorted(inst for (m, inst) in rec.values if m == metric)
            if found:
                return found
        return []

    def __len__(self) -> int:
        return len(self.archive)


class AsyncPcpSession(_SessionState):
    """An asyncio session against the PMCD fabric.

    Same surface as :class:`PcpSession` but every call is a coroutine,
    so thousands of sessions multiplex on one event loop — the client
    side of the :mod:`repro.pcp.aserver` fabric. ``target`` is either
    a ``(host, port)`` address (dialed by :meth:`open`) or an
    in-process daemon object, which is served without a socket (useful
    for tests and single-process deployments).

    Usage::

        session = pcp.connect(addr, mode="async")
        async with session:
            pmids = await session.lookup_names(names)
            values = await session.fetch(pmids)
    """

    def __init__(self, target, node: Optional[Node] = None,
                 cache_lookups: bool = False,
                 round_trip_seconds: Optional[float] = None,
                 connect_timeout: float = 10.0,
                 request_timeout: float = 30.0):
        super().__init__(node, cache_lookups)
        self._address: Optional[Tuple[str, int]] = None
        self._pmcd = None
        if isinstance(target, tuple):
            self._address = (str(target[0]), int(target[1]))
        elif hasattr(target, "handle"):
            self._pmcd = target
        else:
            raise PCPError(f"cannot connect to {target!r}")
        if round_trip_seconds is None:
            round_trip_seconds = getattr(
                self._pmcd, "round_trip_seconds", 0.0)
        self.round_trip_seconds = float(round_trip_seconds)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        # Created lazily inside the running loop: on py3.9 a Lock built
        # outside the loop binds the wrong one.
        self._lock: Optional[asyncio.Lock] = None
        self.requests = 0

    # ------------------------------------------------------------------
    async def open(self) -> "AsyncPcpSession":
        """Dial the daemon (no-op for in-process targets)."""
        if self._lock is None:
            self._lock = asyncio.Lock()
        if self._address is not None and self._writer is None:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(*self._address),
                timeout=self.connect_timeout)
        return self

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def __aenter__(self) -> "AsyncPcpSession":
        return await self.open()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    def _round_trip(self) -> None:
        self.round_trips += 1
        if self.node is not None and self.round_trip_seconds > 0:
            self.node.advance(self.round_trip_seconds)

    async def _request(self, request):
        self._round_trip()
        self.requests += 1
        if self._pmcd is not None:
            return self._pmcd.handle(request)
        if self._writer is None or self._lock is None:
            await self.open()
        async with self._lock:
            self._writer.write(encode_request(request))
            await self._writer.drain()
            try:
                line = await asyncio.wait_for(
                    self._reader.readline(), timeout=self.request_timeout)
            except asyncio.TimeoutError:
                raise PCPTimeout(
                    f"pmcd request timed out after "
                    f"{self.request_timeout}s") from None
        if not line:
            raise PCPError("connection to pmcd lost")
        return decode_response(line)

    async def _request_many(self, requests: Sequence) -> list:
        """Pipeline: write every request, then read the responses FIFO.

        One writer/reader pass for N requests — the client-side half of
        the fabric's coalescing story (many in-flight fetches share
        socket round trips and, server-side, PMDA reads).
        """
        if self._pmcd is not None:
            out = []
            for request in requests:
                self._round_trip()
                self.requests += 1
                out.append(self._pmcd.handle(request))
            return out
        if self._writer is None or self._lock is None:
            await self.open()
        async with self._lock:
            for request in requests:
                self._round_trip()
                self.requests += 1
                self._writer.write(encode_request(request))
            await self._writer.drain()

            async def read_all() -> list:
                lines = []
                for _ in requests:
                    line = await self._reader.readline()
                    if not line:
                        raise PCPError("connection to pmcd lost")
                    lines.append(line)
                return lines

            try:
                # One deadline for the whole pipelined batch: a
                # wait_for per response costs a timer handle + wrapper
                # task each, which dominates the fabric's hot path.
                lines = await asyncio.wait_for(
                    read_all(), timeout=self.request_timeout)
            except asyncio.TimeoutError:
                raise PCPTimeout(
                    f"pmcd request timed out after "
                    f"{self.request_timeout}s") from None
        return [decode_response(line) for line in lines]

    # ------------------------------------------------------------------
    async def handshake(self) -> int:
        """Negotiate the protocol version (one round trip)."""
        return self._observe_open(await self._request(OpenRequest()))

    async def lookup_names(self, names: Sequence[str]) -> List[int]:
        names = list(names)
        if self.cache_lookups and names:
            cached = [self._lookup_cache.get(name) for name in names]
            if all(pmid is not None for pmid in cached):
                self.cached_lookups += 1
                return cached
        response = await self._request(LookupRequest(names=tuple(names)))
        if not isinstance(response, LookupResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            bad = [n for n, s in zip(names, response.name_status)
                   if s != PCPStatus.OK]
            raise PCPError(f"unknown metric name(s): {bad}")
        for name, pmid in zip(names, response.pmids):
            self._lookup_cache[name] = pmid
        return list(response.pmids)

    async def fetch(self, pmids: Sequence[int]) -> Dict[int, Dict[str, int]]:
        response = await self._request(FetchRequest(pmids=tuple(pmids)))
        return self._digest_fetch(response)

    def _digest_fetch(self, response) -> Dict[int, Dict[str, int]]:
        if not isinstance(response, FetchResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            raise PCPError(f"fetch failed: {response.status.name}")
        self.last_fetch_timestamp = response.timestamp
        return {m.pmid: dict(m.values) for m in response.metrics}

    async def fetch_many(self, pmid_groups: Sequence[Sequence[int]]
                         ) -> List[Dict[int, Dict[str, int]]]:
        """Pipelined pmFetch: N fetches, one socket write/read pass."""
        responses = await self._request_many(
            [FetchRequest(pmids=tuple(pmids)) for pmids in pmid_groups])
        return [self._digest_fetch(response) for response in responses]

    async def fetch_one(self, name: str, instance: str) -> int:
        pmid = (await self.lookup_names([name]))[0]
        values = (await self.fetch([pmid]))[pmid]
        try:
            return values[instance]
        except KeyError:
            raise PCPError(
                f"metric {name!r} has no instance {instance!r}; "
                f"available: {sorted(values)}"
            ) from None

    async def children(self, prefix: str = "") -> List[str]:
        response = await self._request(ChildrenRequest(prefix=prefix))
        if not isinstance(response, ChildrenResponse):
            raise PCPError(f"unexpected response: {response}")
        self._observe(response)
        if response.status != PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix: {prefix!r}")
        return list(response.children)

    async def traverse(self, prefix: str = "") -> List[str]:
        """pmTraversePMNS via recursive ChildrenRequest PDUs."""
        if self._pmcd is not None:
            self._round_trip()
            return list(self._pmcd.pmns.traverse(prefix))
        out: List[str] = []
        response = await self._request(ChildrenRequest(prefix=prefix))
        if not isinstance(response, ChildrenResponse) \
                or response.status != PCPStatus.OK:
            raise PCPError(f"unknown PMNS prefix {prefix!r}")
        self._observe(response)
        for child, leaf in zip(response.children, response.leaf_flags):
            path = f"{prefix}.{child}" if prefix else child
            if leaf:
                out.append(path)
            else:
                out.extend(await self.traverse(path))
        return out

    async def fetch_archive(self, metrics: Sequence[str] = (),
                            t0: float = 0.0, t1: Optional[float] = None
                            ) -> List[ArchiveRecord]:
        """Replay archived samples (see :meth:`PcpSession.fetch_archive`)."""
        response = await self._request(ArchiveFetchRequest(
            metrics=tuple(metrics), t0=t0,
            t1=-1.0 if t1 is None else t1))
        return self._check_archive_response(response)


AddressLike = Union[str, Tuple[str, int]]


def _parse_address(target) -> Optional[Tuple[str, int]]:
    if isinstance(target, tuple) and len(target) == 2 \
            and isinstance(target[0], str):
        return (target[0], int(target[1]))
    if isinstance(target, str):
        host, sep, port = target.rpartition(":")
        if not sep or not port.isdigit():
            raise PCPError(f"bad pmcd address {target!r} "
                           "(expected 'host:port')")
        return (host, int(port))
    address = getattr(target, "address", None)
    if address is not None and not hasattr(target, "handle"):
        # A server object (threaded PMCDServer or AsyncPMCDServer):
        # dial its listening address.
        return (address[0], int(address[1]))
    return None


def connect(target, mode: str = "sync", *,
            node: Optional[Node] = None,
            cache_lookups: bool = False,
            round_trip_seconds: Optional[float] = None,
            timeout: float = 10.0,
            request_timeout: Optional[float] = None,
            max_retries: int = 2,
            backoff_base_seconds: float = 0.01,
            auto_reconnect: bool = True):
    """Open a PCP session — the one entry point to the client stack.

    ``target`` may be an in-process :class:`~repro.pcp.pmcd.PMCD`, an
    already-dialed transport, a server object, a ``(host, port)`` pair
    or a ``"host:port"`` string. ``mode="sync"`` returns a
    :class:`PcpSession`; ``mode="async"`` returns an
    :class:`AsyncPcpSession` (dialed lazily — use ``async with`` or
    ``await session.open()``).

    The transport keywords (``timeout``/``request_timeout``/
    ``max_retries``/``backoff_base_seconds``/``auto_reconnect``) apply
    when ``target`` is an address and a new transport is dialed.
    """
    address = _parse_address(target)
    if mode == "sync":
        if address is not None:
            from .server import RemoteTransport
            target = RemoteTransport(
                address[0], address[1],
                round_trip_seconds=(0.0 if round_trip_seconds is None
                                    else round_trip_seconds),
                timeout=timeout,
                request_timeout=request_timeout,
                max_retries=max_retries,
                backoff_base_seconds=backoff_base_seconds,
                auto_reconnect=auto_reconnect)
        if not hasattr(target, "handle"):
            raise PCPError(f"cannot connect to {target!r}")
        return PcpSession(target, node=node, cache_lookups=cache_lookups)
    if mode == "async":
        return AsyncPcpSession(
            address if address is not None else target,
            node=node, cache_lookups=cache_lookups,
            round_trip_seconds=round_trip_seconds,
            connect_timeout=timeout,
            request_timeout=(30.0 if request_timeout is None
                             else request_timeout))
    raise PCPError(f"unknown session mode {mode!r} "
                   "(expected 'sync' or 'async')")
