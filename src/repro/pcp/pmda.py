"""Performance Metrics Domain Agents (PMDAs).

A PMDA owns a *domain* of metrics and answers fetches for them. The
agent that matters here is the **perfevent PMDA**: it is the piece IBM
deploys on Summit that opens the nest perf events *with elevated
privileges* and re-exports them as PCP metrics, so ordinary users can
read socket-wide memory-traffic counters through the daemon.

PMIDs follow PCP's encoding: ``domain << 22 | item`` (cluster folded
into the item space for simplicity).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

from ..errors import PCPError
from ..machine.node import Node
from ..pmu.events import pcp_metric_name, socket_instance_cpu

PMID_DOMAIN_SHIFT = 22


def make_pmid(domain: int, item: int) -> int:
    if not 0 <= domain < 512:
        raise PCPError(f"domain {domain} out of range")
    if not 0 <= item < (1 << PMID_DOMAIN_SHIFT):
        raise PCPError(f"item {item} out of range")
    return (domain << PMID_DOMAIN_SHIFT) | item


def pmid_domain(pmid: int) -> int:
    return pmid >> PMID_DOMAIN_SHIFT


class PMDA(abc.ABC):
    """Base agent: a metric table plus a fetch callback."""

    def __init__(self, name: str, domain: int):
        self.name = name
        self.domain = domain

    @abc.abstractmethod
    def metric_table(self) -> List[Tuple[str, int]]:
        """All (metric name, pmid) pairs this agent serves."""

    @abc.abstractmethod
    def fetch(self, pmid: int) -> Dict[str, int]:
        """Current values of ``pmid``, keyed by instance name."""


class PmcdPMDA(PMDA):
    """The daemon's self-instrumentation agent.

    Real pmcd serves its own ``pmcd.*`` metrics through the same fetch
    path as every other agent; this mirrors that. Request counts,
    lookup-cache behaviour, fetch coalescing and service latency become
    ordinary PCP metrics with the single instance ``"pmcd"``, so the
    daemon overhead the paper's Table 2 quantifies is measurable
    through the very path that incurs it.
    """

    DEFAULT_DOMAIN = 2  # the real pmcd's PCP domain number

    #: metric suffix -> reader(pmcd) returning an int.
    _READERS = (
        ("pmcd.requests.total", lambda d: d.stats.requests),
        ("pmcd.lookup.total", lambda d: d.stats.lookups),
        ("pmcd.lookup.cache_hits", lambda d: d.stats.lookup_cache_hits),
        ("pmcd.lookup.cache_misses", lambda d: d.stats.lookup_cache_misses),
        ("pmcd.fetch.total", lambda d: d.stats.fetches),
        ("pmcd.fetch.pmda_calls", lambda d: d.stats.pmda_fetch_calls),
        ("pmcd.errors.total", lambda d: d.stats.errors),
        ("pmcd.restarts.total", lambda d: d.stats.restarts),
        ("pmcd.state.generation", lambda d: d.generation),
        ("pmcd.state.boot", lambda d: d.boot_id),
        ("pmcd.service.coalesced",
         lambda d: _service_stat(d, "coalesced")),
        ("pmcd.service.max_queue_depth",
         lambda d: _service_stat(d, "max_queue_depth")),
        ("pmcd.service.latency_max_usec",
         lambda d: _service_stat(d, "latency_max_usec")),
    )

    def __init__(self, pmcd, domain: int = DEFAULT_DOMAIN):
        super().__init__("pmcd", domain)
        self._pmcd = pmcd
        self._by_pmid = {}
        self._names: List[Tuple[str, int]] = []
        for item, (metric, reader) in enumerate(self._READERS):
            pmid = make_pmid(domain, item)
            self._by_pmid[pmid] = reader
            self._names.append((metric, pmid))

    def metric_table(self) -> List[Tuple[str, int]]:
        return list(self._names)

    def fetch(self, pmid: int) -> Dict[str, int]:
        try:
            reader = self._by_pmid[pmid]
        except KeyError:
            raise PCPError(f"pmcd PMDA does not serve pmid {pmid}") from None
        return {"pmcd": int(reader(self._pmcd))}


def _service_stat(pmcd, key: str) -> int:
    """Read one TCP service-layer counter (0 for in-process daemons)."""
    stats = getattr(pmcd, "service_stats", None)
    if stats is None:
        return 0
    return int(stats.snapshot().get(key, 0))


class PerfeventPMDA(PMDA):
    """Exports one node's nest counters as PCP metrics.

    The agent is constructed with privileged access to the node's nest
    blocks — this mirrors PMCD running as root on Summit. Each metric
    has one instance per socket, named after the socket's last hardware
    thread (``cpu87``/``cpu175``), matching the instance qualifiers in
    the paper's Table I.
    """

    DEFAULT_DOMAIN = 127  # the real perfevent PMDA's PCP domain number

    def __init__(self, node: Node, domain: int = DEFAULT_DOMAIN):
        super().__init__("perfevent", domain)
        self.node = node
        self._metrics: Dict[int, Tuple[int, bool]] = {}
        self._names: List[Tuple[str, int]] = []
        item = 0
        for channel in range(node.config.socket.n_memory_channels):
            for write in (False, True):
                pmid = make_pmid(domain, item)
                self._metrics[pmid] = (channel, write)
                self._names.append((pcp_metric_name(channel, write), pmid))
                item += 1

    # ------------------------------------------------------------------
    def metric_table(self) -> List[Tuple[str, int]]:
        return list(self._names)

    def fetch(self, pmid: int) -> Dict[str, int]:
        try:
            channel, write = self._metrics[pmid]
        except KeyError:
            raise PCPError(f"perfevent PMDA does not serve pmid {pmid}") from None
        direction = "WRITE" if write else "READ"
        event = f"PM_MBA{channel}_{direction}_BYTES"
        values: Dict[str, int] = {}
        for socket in self.node.sockets:
            instance = f"cpu{socket_instance_cpu(self.node.config, socket.socket_id)}"
            # The PMDA holds the privileged handle — this read succeeds
            # even though the *user* on Summit is unprivileged.
            values[instance] = socket.nest.read_event(event, privileged=True)
        return values
