"""Performance Metrics Name Space (PMNS).

PCP organises metrics in a dotted hierarchical namespace
(``perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value``).
:class:`PMNS` implements the tree with leaf→PMID mapping, child
enumeration, and full traversal — the operations libpcp exposes as
``pmLookupName``, ``pmGetChildren`` and ``pmTraversePMNS``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import PMNSError


class _TreeNode:
    __slots__ = ("children", "pmid")

    def __init__(self) -> None:
        self.children: Dict[str, _TreeNode] = {}
        self.pmid: Optional[int] = None  # set only on leaves


class PMNS:
    """The metric name tree."""

    def __init__(self) -> None:
        self._root = _TreeNode()
        self._by_pmid: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, pmid: int) -> None:
        """Add a leaf metric ``name`` with identifier ``pmid``."""
        parts = self._split(name)
        node = self._root
        for part in parts:
            if node.pmid is not None:
                raise PMNSError(
                    f"cannot register {name!r}: prefix is already a leaf"
                )
            node = node.children.setdefault(part, _TreeNode())
        if node.children:
            raise PMNSError(f"cannot make non-leaf {name!r} a metric")
        if node.pmid is not None and node.pmid != pmid:
            raise PMNSError(f"{name!r} already registered with another pmid")
        if pmid in self._by_pmid and self._by_pmid[pmid] != name:
            raise PMNSError(f"pmid {pmid} already bound to {self._by_pmid[pmid]!r}")
        node.pmid = pmid
        self._by_pmid[pmid] = name

    # ------------------------------------------------------------------
    def lookup(self, name: str) -> int:
        """Name → PMID (pmLookupName for one name)."""
        node = self._find(name)
        if node is None or node.pmid is None:
            raise PMNSError(f"unknown metric name: {name!r}")
        return node.pmid

    def name_of(self, pmid: int) -> str:
        """PMID → name (pmNameID)."""
        try:
            return self._by_pmid[pmid]
        except KeyError:
            raise PMNSError(f"unknown pmid: {pmid}") from None

    def children(self, prefix: str = "") -> List[Tuple[str, bool]]:
        """Immediate children of ``prefix`` as (name, is_leaf) pairs."""
        node = self._root if not prefix else self._find(prefix)
        if node is None:
            raise PMNSError(f"unknown PMNS node: {prefix!r}")
        return sorted(
            (child_name, child.pmid is not None)
            for child_name, child in node.children.items()
        )

    def traverse(self, prefix: str = "") -> Iterator[str]:
        """All leaf metric names at or below ``prefix``."""
        node = self._root if not prefix else self._find(prefix)
        if node is None:
            raise PMNSError(f"unknown PMNS node: {prefix!r}")
        yield from self._walk(node, prefix)

    def __contains__(self, name: str) -> bool:
        node = self._find(name)
        return node is not None and node.pmid is not None

    def __len__(self) -> int:
        return len(self._by_pmid)

    # ------------------------------------------------------------------
    def _walk(self, node: _TreeNode, path: str) -> Iterator[str]:
        if node.pmid is not None:
            yield path
        for name, child in sorted(node.children.items()):
            child_path = f"{path}.{name}" if path else name
            yield from self._walk(child, child_path)

    def _find(self, name: str) -> Optional[_TreeNode]:
        node = self._root
        for part in self._split(name):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    @staticmethod
    def _split(name: str) -> List[str]:
        parts = name.split(".")
        if not name or any(not p for p in parts):
            raise PMNSError(f"malformed metric name: {name!r}")
        return parts
