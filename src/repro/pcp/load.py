"""pcp-load: asyncio load harness for the PMCD fabric.

Where ``pcp-stress`` proves the *threaded* service layer correct under
tens of clients, ``pcp-load`` drives the asyncio fabric
(:mod:`repro.pcp.aserver`) at service scale: hundreds of concurrent
:class:`~repro.pcp.session.AsyncPcpSession` contexts, each pipelining
fetch PDUs over its own TCP connection, sustained for a wall-clock
window — with fault injection running *during* the load:

* **shard-worker kill** — :meth:`AsyncPMCDServer.kill_shard` cancels
  the perfevent shard mid-batch at scheduled points; the supervisor
  must requeue + restart so no client sees an error;
* **slow PMDA** — :meth:`FaultInjector.slow_pmda` stalls scheduled
  PMDA reads, backing up one shard while the fabric keeps serving;
* **dropped connections** — scheduled response-site drops force
  clients through their reconnect path;
* **archive-volume corruption** — a sealed archive volume is
  bit-flipped mid-run and a replay is issued; the daemon must answer
  with a clean error (never corrupt data, never crash).

The harness verifies the stress invariants as it goes (no cross-wired
responses, per-context monotone fetch timestamps) and reports client-
observed latency percentiles plus a histogram suitable for the CI
artifact. Latency is recorded per *pipelined batch* and attributed to
each fetch in it — the conservative client-observed bound.

Everything runs on one event loop (server + clients), which is the
honest single-node deployment shape and keeps the run deterministic
enough to gate: throughput is bounded by PDU codec + fabric work, not
scheduler noise across threads.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict, List, Optional

from ..errors import ArchiveError, PCPError
from ..machine.config import get_machine
from ..machine.node import Node
from ..noise import QUIET
from ..pmu.events import pcp_metric_name
from .archive import ArchiveRecord, MetricArchive
from .aserver import AsyncPMCDServer
from .faults import FaultInjector
from .pmcd import start_pmcd_for_node
from .session import AsyncPcpSession

#: Histogram bucket upper bounds (client-observed latency, usec).
LATENCY_BUCKETS_USEC = (100, 200, 500, 1000, 2000, 5000, 10000,
                        20000, 50000, 100000, 500000)


def percentile_usec(sorted_seconds: List[float], q: float) -> int:
    """The q-quantile (0..1) of a sorted latency sample, in usec."""
    if not sorted_seconds:
        return 0
    index = min(len(sorted_seconds) - 1,
                int(q * (len(sorted_seconds) - 1) + 0.5))
    return int(sorted_seconds[index] * 1e6)


def latency_histogram(seconds: List[float]) -> Dict[str, int]:
    """Bucketed counts keyed ``"<=<bound>us"`` (last bucket ``">..."``)."""
    counts = [0] * (len(LATENCY_BUCKETS_USEC) + 1)
    for value in seconds:
        usec = value * 1e6
        for i, bound in enumerate(LATENCY_BUCKETS_USEC):
            if usec <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    out = {f"<={bound}us": counts[i]
           for i, bound in enumerate(LATENCY_BUCKETS_USEC)}
    out[f">{LATENCY_BUCKETS_USEC[-1]}us"] = counts[-1]
    return out


def _seed_archive(path: str, metrics: List[str]) -> MetricArchive:
    """A small multi-volume archive for the corruption scenario."""
    archive = MetricArchive.create(path, volume_records=16)
    value = 0
    for i in range(48):
        value += 1000 + i
        archive.append(ArchiveRecord(
            timestamp=float(i),
            values={(metric, "cpu87"): value + j
                    for j, metric in enumerate(metrics)}))
    archive.rotate()
    return archive


async def _run_load(n_contexts: int, duration_seconds: float,
                    machine: str, seed: int, pipeline_depth: int,
                    pmids_per_fetch: int, coalesce: bool,
                    shard_kills: int, slow_pmda: int,
                    slow_pmda_seconds: float, drop_connections: int,
                    corrupt_archive: bool,
                    archive_dir: Optional[str]) -> Dict[str, object]:
    node = Node(get_machine(machine), seed=seed, noise=QUIET)
    pmcd = start_pmcd_for_node(node, round_trip_seconds=0.0)
    injector = FaultInjector()
    if slow_pmda:
        injector.slow_pmda(slow_pmda, seconds=slow_pmda_seconds)
    if drop_connections:
        injector.drop_connections(drop_connections)

    n_channels = node.config.socket.n_memory_channels
    all_metrics = [pcp_metric_name(channel, write)
                   for channel in range(n_channels)
                   for write in (False, True)]
    metrics = all_metrics[:max(1, pmids_per_fetch)]

    archive = None
    archive_result: Optional[str] = None
    if corrupt_archive:
        archive = _seed_archive(
            os.path.join(archive_dir or ".", "pcp-load-archive"),
            metrics)
        pmcd.attach_archive(archive)

    server = await AsyncPMCDServer(
        pmcd, fault_injector=injector, coalesce=coalesce).start()
    perfevent_domain = pmcd.agents[0].domain

    latencies: List[float] = []
    errors: List[str] = []
    cross_wired = [0]
    non_monotone = [0]
    reconnects = [0]
    unrecovered = [0]
    fetches = [0]

    sessions = [AsyncPcpSession(server.address, request_timeout=30.0)
                for _ in range(n_contexts)]
    try:
        await asyncio.gather(*(session.open() for session in sessions))
        # The first served response can already eat an armed drop
        # fault — resolve names through the same reconnect path the
        # workers use rather than dying before the run starts.
        for attempt in range(1 + drop_connections):
            try:
                pmids = tuple(await sessions[0].lookup_names(metrics))
                break
            except (PCPError, OSError):
                await sessions[0].close()
                await sessions[0].open()
                reconnects[0] += 1
        else:
            pmids = tuple(await sessions[0].lookup_names(metrics))
    except BaseException:
        await asyncio.gather(*(session.close() for session in sessions),
                             return_exceptions=True)
        await server.stop()
        if archive is not None:
            archive.close()
        raise
    batch = [pmids] * max(1, pipeline_depth)
    stop_at = time.monotonic() + duration_seconds

    async def worker(index: int, session: AsyncPcpSession) -> None:
        last_timestamp = None
        while time.monotonic() < stop_at:
            started = time.monotonic()
            try:
                results = await session.fetch_many(batch)
            except (PCPError, OSError):
                # Dropped connection (fault injection / restart):
                # redial and resume — the client-side recovery path.
                try:
                    await session.close()
                    await session.open()
                    reconnects[0] += 1
                    continue
                except (PCPError, OSError) as exc:
                    errors.append(f"context {index}: {exc!r}")
                    unrecovered[0] += 1
                    return
            elapsed = time.monotonic() - started
            for values in results:
                if set(values) != set(pmids):
                    cross_wired[0] += 1
                latencies.append(elapsed)
            timestamp = session.last_fetch_timestamp
            if last_timestamp is not None and timestamp is not None \
                    and timestamp < last_timestamp:
                non_monotone[0] += 1
            last_timestamp = timestamp
            fetches[0] += len(results)

    async def chaos() -> None:
        for i in range(shard_kills):
            await asyncio.sleep(duration_seconds / (shard_kills + 1))
            server.kill_shard(perfevent_domain)

    started_at = time.monotonic()
    try:
        tasks = [asyncio.ensure_future(worker(i, session))
                 for i, session in enumerate(sessions)]
        tasks.append(asyncio.ensure_future(chaos()))
        await asyncio.gather(*tasks)
        elapsed = time.monotonic() - started_at

        if corrupt_archive and archive is not None:
            # Bit-flip a sealed volume, then replay: the daemon must
            # refuse with a clean error rather than serve corrupt data.
            volume_path = os.path.join(archive.path,
                                       archive.volumes[0].name)
            with open(volume_path, "r+b") as fh:
                fh.seek(20)
                byte = fh.read(1)
                fh.seek(20)
                fh.write(bytes([byte[0] ^ 0xFF]))
            try:
                await sessions[0].fetch_archive(metrics)
                archive_result = "undetected"  # corrupt data served: BAD
            except (ArchiveError, PCPError):
                archive_result = "detected"
    finally:
        await asyncio.gather(*(session.close() for session in sessions),
                             return_exceptions=True)
        await server.stop()
        if archive is not None:
            archive.close()

    latencies.sort()
    service = server.stats.snapshot()
    daemon = pmcd.stats.snapshot()
    total = fetches[0]
    return {
        "contexts": n_contexts,
        "duration_seconds": round(elapsed, 3),
        "pipeline_depth": pipeline_depth,
        "pmids_per_fetch": len(pmids),
        "total_fetches": total,
        "fetches_per_second": int(total / elapsed) if elapsed else 0,
        "latency_p50_usec": percentile_usec(latencies, 0.50),
        "latency_p90_usec": percentile_usec(latencies, 0.90),
        "latency_p99_usec": percentile_usec(latencies, 0.99),
        "latency_max_usec": (int(latencies[-1] * 1e6)
                             if latencies else 0),
        "latency_histogram": latency_histogram(latencies),
        "cross_wired": cross_wired[0],
        "non_monotone_timestamps": non_monotone[0],
        "errors": errors,
        "client_reconnects": reconnects[0],
        "unrecovered_faults": unrecovered[0],
        "coalesced": service["coalesced"],
        "batches": service["batches"],
        "max_queue_depth": service["max_queue_depth"],
        "shard_kills": service["shard_kills"],
        "shard_restarts": service["shard_restarts"],
        "requeued_jobs": service["requeued_jobs"],
        "faults_injected": service["faults"],
        "pmda_fetch_calls": daemon["pmda_fetch_calls"],
        "archive_corruption": archive_result,
    }


def run_load(n_contexts: int = 256, duration_seconds: float = 5.0,
             machine: str = "summit", seed: int = 1,
             pipeline_depth: int = 8, pmids_per_fetch: int = 4,
             coalesce: bool = True, shard_kills: int = 0,
             slow_pmda: int = 0, slow_pmda_seconds: float = 0.02,
             drop_connections: int = 0, corrupt_archive: bool = False,
             archive_dir: Optional[str] = None) -> Dict[str, object]:
    """Run the load scenario and return a flat stats report.

    ``n_contexts`` async client sessions pipeline ``pipeline_depth``
    fetches of ``pmids_per_fetch`` metrics each against a fresh
    fabric for ``duration_seconds``. Fault counts arm the injector /
    chaos schedule described in the module docstring.
    """
    return asyncio.run(_run_load(
        n_contexts=n_contexts, duration_seconds=duration_seconds,
        machine=machine, seed=seed, pipeline_depth=pipeline_depth,
        pmids_per_fetch=pmids_per_fetch, coalesce=coalesce,
        shard_kills=shard_kills, slow_pmda=slow_pmda,
        slow_pmda_seconds=slow_pmda_seconds,
        drop_connections=drop_connections,
        corrupt_archive=corrupt_archive, archive_dir=archive_dir))


def healthy(report: Dict[str, object]) -> bool:
    """True when the run upheld every service invariant."""
    return (not report["errors"]
            and report["cross_wired"] == 0
            and report["non_monotone_timestamps"] == 0
            and report["unrecovered_faults"] == 0
            and report["archive_corruption"] in (None, "detected"))
