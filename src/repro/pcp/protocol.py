"""PCP client/daemon protocol messages (PDU equivalents) and codec.

The real Performance Co-Pilot exchanges PDUs over a socket between the
client libpcp and the PMCD daemon. Here the exchange may be in-process
or over TCP, but is always *message-shaped*: clients build request
objects, the daemon dispatches on their type and returns response
objects. This preserves the architectural indirection the paper
studies (every fetch is a daemon round trip with a latency cost) while
staying deterministic.

Responses carry two service-level fields beyond their payload:

* ``generation`` — bumped whenever the daemon's metric namespace
  changes (agent registration, restart). Clients use it to invalidate
  cached name→PMID lookups.
* ``boot_id`` (fetches only) — bumped when the daemon restarts.
  Clients use it to flag a measurement gap instead of silently mixing
  counters across a daemon crash.

The wire codec (one JSON object per line, ``{"type": <ClassName>,
**fields}``) also lives here. Decoding is strict: any malformed line —
bad JSON, a non-object, an unknown type, unexpected or missing fields,
out-of-range status codes — raises :class:`~repro.errors.PCPError`,
never ``KeyError``/``TypeError``, so a hostile or truncated byte
stream cannot crash the daemon loop.

**Protocol versioning.** Every PDU may carry a ``version`` field.
Version 1 is the seed wire format; it is encoded *without* the field
so that v1 peers (whose strict decoders reject unknown keys) keep
interoperating, and a missing field always decodes as v1. Version 2
adds the :class:`OpenRequest`/:class:`OpenResponse` handshake and the
archive-replay PDUs. Peers negotiate down to the highest version both
sides speak (:func:`negotiate_version`); a v2 client talking to a v1
daemon receives an error for its ``OpenRequest`` and simply falls back
to the v1 surface.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Dict, Tuple

from ..errors import PCPError


#: Highest protocol version this codec speaks. v1 = the seed wire
#: format (no version field); v2 adds Open handshake + archive PDUs.
PROTOCOL_VERSION = 2


def negotiate_version(peer_version: int) -> int:
    """Version both sides speak: min(ours, theirs), clamped to >= 1."""
    return max(1, min(PROTOCOL_VERSION, int(peer_version)))


class PCPStatus(enum.IntEnum):
    """Subset of PCP error codes (negative, like libpcp's PM_ERR_*)."""

    OK = 0
    PM_ERR_NAME = -12357       # unknown metric name
    PM_ERR_PMID = -12358       # unknown metric id
    PM_ERR_INDOM_INST = -12361  # unknown instance
    PM_ERR_PERMISSION = -12387  # agent refused access
    PM_ERR_TIMEOUT = -12366    # request deadline exceeded
    PM_ERR_NODATA = -12368     # no archive data in the window


@dataclasses.dataclass(frozen=True)
class LookupRequest:
    """Resolve metric names to PMIDs (pmLookupName)."""

    names: Tuple[str, ...]
    #: Wire protocol version; v1 PDUs omit the field on the wire.
    version: int = 1


@dataclasses.dataclass(frozen=True)
class LookupResponse:
    status: PCPStatus
    pmids: Tuple[int, ...] = ()
    #: Per-name status for partial failures.
    name_status: Tuple[PCPStatus, ...] = ()
    #: Daemon namespace generation (cache invalidation token).
    generation: int = 0
    version: int = 1


@dataclasses.dataclass(frozen=True)
class FetchRequest:
    """Fetch current values for a set of PMIDs (pmFetch)."""

    pmids: Tuple[int, ...]
    version: int = 1


@dataclasses.dataclass(frozen=True)
class MetricValues:
    """Values of one metric, keyed by instance identifier."""

    pmid: int
    values: Dict[str, int]


@dataclasses.dataclass(frozen=True)
class FetchResponse:
    status: PCPStatus
    #: Daemon timestamp of the fetch (simulated seconds).
    timestamp: float = 0.0
    metrics: Tuple[MetricValues, ...] = ()
    generation: int = 0
    #: Daemon incarnation serving this fetch; a change means restart.
    boot_id: int = 0
    version: int = 1


@dataclasses.dataclass(frozen=True)
class ChildrenRequest:
    """List the children of a PMNS node (pmGetChildren)."""

    prefix: str
    version: int = 1


@dataclasses.dataclass(frozen=True)
class ChildrenResponse:
    status: PCPStatus
    children: Tuple[str, ...] = ()
    #: True for leaf children (actual metrics).
    leaf_flags: Tuple[bool, ...] = ()
    generation: int = 0
    version: int = 1


@dataclasses.dataclass(frozen=True)
class ErrorResponse:
    status: PCPStatus
    detail: str = ""
    version: int = 1


@dataclasses.dataclass(frozen=True)
class OpenRequest:
    """Protocol handshake (v2+): the client advertises its highest
    protocol version; the daemon answers with the negotiated one. A
    v1 daemon rejects the unknown PDU type with an :class:`
    ErrorResponse`, which clients treat as "peer speaks v1"."""

    version: int = PROTOCOL_VERSION


@dataclasses.dataclass(frozen=True)
class OpenResponse:
    status: PCPStatus
    #: The negotiated version (min of both peers').
    version: int = 1
    hostname: str = ""
    generation: int = 0
    boot_id: int = 0


@dataclasses.dataclass(frozen=True)
class ArchiveSample:
    """One archived timestamped sample (v2 archive replay payload).

    ``values`` is keyed ``"<metric>|<instance>"`` — flat so it JSON-
    encodes without a nested schema.
    """

    timestamp: float
    values: Dict[str, int]
    gap: bool = False


@dataclasses.dataclass(frozen=True)
class ArchiveFetchRequest:
    """Replay archived samples for ``metrics`` in ``[t0, t1]`` (v2).

    ``t1 < 0`` means "no upper bound". Requires the daemon to have an
    archive attached; daemons without one answer ``PM_ERR_NODATA``.
    """

    metrics: Tuple[str, ...]
    t0: float = 0.0
    t1: float = -1.0
    version: int = PROTOCOL_VERSION


@dataclasses.dataclass(frozen=True)
class ArchiveFetchResponse:
    status: PCPStatus
    samples: Tuple[ArchiveSample, ...] = ()
    generation: int = 0
    version: int = PROTOCOL_VERSION


Request = object  # any of the *Request dataclasses
Response = object  # any of the *Response dataclasses


def ok(status: PCPStatus) -> bool:
    return status == PCPStatus.OK


# ----------------------------------------------------------------------
# Wire codec: one JSON object per line.

_REQUEST_TYPES = {
    cls.__name__: cls
    for cls in (LookupRequest, FetchRequest, ChildrenRequest,
                OpenRequest, ArchiveFetchRequest)
}

#: Fields decoded from JSON lists back into tuples.
_TUPLE_FIELDS = ("names", "pmids", "metrics")

#: Per-class field-name sets, computed once: ``dataclasses.fields`` is
#: too slow to call per decoded PDU on the fabric's hot path.
_FIELD_NAMES = {cls: frozenset(f.name for f in dataclasses.fields(cls))
                for cls in _REQUEST_TYPES.values()}


def _decode_version(data: dict, type_name) -> int:
    """Pop and validate a PDU's version field (absent -> v1)."""
    version = data.pop("version", 1)
    if isinstance(version, bool) or not isinstance(version, int) \
            or version < 1:
        raise PCPError(
            f"bad protocol version in {type_name} PDU: {version!r}")
    return version


def _load_pdu(line) -> dict:
    if isinstance(line, (bytes, bytearray)):
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PCPError(f"malformed PDU (bad utf-8): {exc}") from None
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise PCPError(f"malformed PDU (bad JSON): {exc}") from None
    if not isinstance(data, dict):
        raise PCPError(
            f"malformed PDU: expected a JSON object, got {type(data).__name__}")
    return data


def encode_request(request) -> bytes:
    if type(request) is FetchRequest:
        # Hot path: fetches dominate fabric traffic. Key order matches
        # the generic path exactly, so the bytes are identical.
        payload = {"type": "FetchRequest", "pmids": list(request.pmids)}
        if request.version != 1:
            payload["version"] = request.version
        return (json.dumps(payload) + "\n").encode("utf-8")
    name = type(request).__name__
    if name not in _REQUEST_TYPES:
        raise PCPError(f"cannot encode request type {name}")
    payload = {"type": name}
    payload.update(_dataclass_fields(request))
    if payload.get("version") == 1:
        # v1 PDUs stay byte-compatible with the seed wire format, so
        # old peers (whose strict decoders reject unknown keys) still
        # interoperate.
        del payload["version"]
    return (json.dumps(payload) + "\n").encode("utf-8")


def decode_request(line):
    data = _load_pdu(line)
    type_name = data.pop("type", None)
    cls = _REQUEST_TYPES.get(type_name) if isinstance(type_name, str) else None
    if cls is None:
        raise PCPError(f"unknown request type in PDU: {type_name!r}")
    if (cls is FetchRequest and isinstance(data.get("pmids"), list)
            and not (data.keys() - _FIELD_NAMES[cls])):
        # Hot path for the well-formed case; anything unusual falls
        # through to the strict generic decoder below.
        return FetchRequest(pmids=tuple(data["pmids"]),
                            version=_decode_version(data, type_name))
    version = _decode_version(data, type_name)
    field_names = _FIELD_NAMES[cls]
    unknown = sorted(set(data) - field_names)
    if unknown:
        # Reject explicitly: silently dropping fields would hide client
        # bugs, and passing them through crashes the dataclass.
        raise PCPError(
            f"unexpected field(s) in {type_name} PDU: {unknown}")
    for field in _TUPLE_FIELDS:
        if field in data:
            if not isinstance(data[field], (list, tuple)):
                raise PCPError(
                    f"field {field!r} of {type_name} PDU must be a list")
            data[field] = tuple(data[field])
    try:
        return cls(version=version, **data)
    except TypeError as exc:  # missing required fields
        raise PCPError(f"malformed {type_name} PDU: {exc}") from None


def encode_response(response) -> bytes:
    if type(response) is FetchResponse:
        # Hot path, byte-identical to the generic encoding.
        payload = {
            "type": "FetchResponse",
            "status": response.status.value,
            "timestamp": response.timestamp,
            "metrics": [{"pmid": m.pmid, "values": m.values}
                        for m in response.metrics],
            "generation": response.generation,
            "boot_id": response.boot_id,
        }
        if response.version != 1:
            payload["version"] = response.version
        return (json.dumps(payload) + "\n").encode("utf-8")
    name = type(response).__name__
    payload = {"type": name}
    payload.update(_dataclass_fields(response))
    if payload.get("version") == 1:
        del payload["version"]
    return (json.dumps(payload) + "\n").encode("utf-8")


def decode_response(line):
    data = _load_pdu(line)
    name = data.pop("type", None)
    version = _decode_version(data, name)
    try:
        if name == "LookupResponse":
            return LookupResponse(
                status=PCPStatus(data["status"]),
                pmids=tuple(data["pmids"]),
                name_status=tuple(PCPStatus(s) for s in data["name_status"]),
                generation=int(data.get("generation", 0)),
                version=version,
            )
        if name == "FetchResponse":
            return FetchResponse(
                status=PCPStatus(data["status"]),
                timestamp=data["timestamp"],
                metrics=tuple(
                    MetricValues(pmid=m["pmid"], values=m["values"])
                    for m in data["metrics"]
                ),
                generation=int(data.get("generation", 0)),
                boot_id=int(data.get("boot_id", 0)),
                version=version,
            )
        if name == "ChildrenResponse":
            return ChildrenResponse(
                status=PCPStatus(data["status"]),
                children=tuple(data["children"]),
                leaf_flags=tuple(data["leaf_flags"]),
                generation=int(data.get("generation", 0)),
                version=version,
            )
        if name == "ErrorResponse":
            return ErrorResponse(
                status=PCPStatus(data["status"]),
                detail=data.get("detail", ""),
                version=version,
            )
        if name == "OpenResponse":
            return OpenResponse(
                status=PCPStatus(data["status"]),
                version=version,
                hostname=str(data.get("hostname", "")),
                generation=int(data.get("generation", 0)),
                boot_id=int(data.get("boot_id", 0)),
            )
        if name == "ArchiveFetchResponse":
            return ArchiveFetchResponse(
                status=PCPStatus(data["status"]),
                samples=tuple(
                    ArchiveSample(timestamp=float(s["timestamp"]),
                                  values=dict(s["values"]),
                                  gap=bool(s.get("gap", False)))
                    for s in data["samples"]
                ),
                generation=int(data.get("generation", 0)),
                version=version,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise PCPError(f"malformed {name} PDU: {exc}") from None
    raise PCPError(f"unknown response type in PDU: {name!r}")


def _jsonable(value):
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return _dataclass_fields(value)
    return value


def _dataclass_fields(obj) -> dict:
    return {key: _jsonable(value) for key, value in obj.__dict__.items()}
