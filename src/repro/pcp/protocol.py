"""PCP client/daemon protocol messages (PDU equivalents).

The real Performance Co-Pilot exchanges PDUs over a socket between the
client libpcp and the PMCD daemon. Here the exchange is in-process but
kept *message-shaped*: clients build request objects, the daemon
dispatches on their type and returns response objects. This preserves
the architectural indirection the paper studies (every fetch is a
daemon round trip with a latency cost) while staying deterministic.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple


class PCPStatus(enum.IntEnum):
    """Subset of PCP error codes (negative, like libpcp's PM_ERR_*)."""

    OK = 0
    PM_ERR_NAME = -12357       # unknown metric name
    PM_ERR_PMID = -12358       # unknown metric id
    PM_ERR_INDOM_INST = -12361  # unknown instance
    PM_ERR_PERMISSION = -12387  # agent refused access


@dataclasses.dataclass(frozen=True)
class LookupRequest:
    """Resolve metric names to PMIDs (pmLookupName)."""

    names: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class LookupResponse:
    status: PCPStatus
    pmids: Tuple[int, ...] = ()
    #: Per-name status for partial failures.
    name_status: Tuple[PCPStatus, ...] = ()


@dataclasses.dataclass(frozen=True)
class FetchRequest:
    """Fetch current values for a set of PMIDs (pmFetch)."""

    pmids: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class MetricValues:
    """Values of one metric, keyed by instance identifier."""

    pmid: int
    values: Dict[str, int]


@dataclasses.dataclass(frozen=True)
class FetchResponse:
    status: PCPStatus
    #: Daemon timestamp of the fetch (simulated seconds).
    timestamp: float = 0.0
    metrics: Tuple[MetricValues, ...] = ()


@dataclasses.dataclass(frozen=True)
class ChildrenRequest:
    """List the children of a PMNS node (pmGetChildren)."""

    prefix: str


@dataclasses.dataclass(frozen=True)
class ChildrenResponse:
    status: PCPStatus
    children: Tuple[str, ...] = ()
    #: True for leaf children (actual metrics).
    leaf_flags: Tuple[bool, ...] = ()


@dataclasses.dataclass(frozen=True)
class ErrorResponse:
    status: PCPStatus
    detail: str = ""


Request = object  # any of the *Request dataclasses
Response = object  # any of the *Response dataclasses


def ok(status: PCPStatus) -> bool:
    return status == PCPStatus.OK
