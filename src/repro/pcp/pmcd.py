"""The Performance Metrics Collector Daemon (PMCD).

"The PMCD runs with the special privileges needed to query the nest
hardware counters. PAPI then queries the PMCD via the PCP component
without the user requiring any special permissions."

:class:`PMCD` registers PMDAs, builds the PMNS from their metric
tables, and serves protocol requests. Every request costs a simulated
round-trip latency, charged to the *client's* node clock by the client
context — this is the indirection overhead whose effect on measurement
accuracy the paper quantifies (and finds negligible for large
problems).

Service-layer state beyond the seed daemon:

* a monotonically increasing ``generation`` (bumped whenever the
  metric namespace changes) that clients use to invalidate cached
  lookups,
* a ``boot_id`` (bumped by :meth:`PMCD.restart`) that lets clients
  detect a daemon crash as a measurement *gap* instead of silently
  mixing counter epochs,
* a daemon-side lookup cache keyed on the request's name tuple, and
* :class:`PMCDStats` counters that the ``pmcd.*`` self-metrics PMDA
  re-exports, so daemon overhead is itself measurable through PAPI —
  the paper's Table 2 overhead analysis as a live metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import PCPError
from ..machine.node import Node
from .pmda import PMDA, PerfeventPMDA, PmcdPMDA, pmid_domain
from .pmns import PMNS
from .protocol import (
    ArchiveFetchRequest,
    ArchiveFetchResponse,
    ArchiveSample,
    ChildrenRequest,
    ChildrenResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    MetricValues,
    OpenRequest,
    OpenResponse,
    PCPStatus,
    negotiate_version,
)


class PMCDStats:
    """Daemon-side request counters (exported via the pmcd.* PMDA)."""

    __slots__ = ("requests", "lookups", "fetches", "children", "errors",
                 "lookup_cache_hits", "lookup_cache_misses",
                 "pmda_fetch_calls", "restarts", "opens", "archive_fetches")

    def __init__(self) -> None:
        self.requests = 0
        self.lookups = 0
        self.fetches = 0
        self.children = 0
        self.errors = 0
        self.lookup_cache_hits = 0
        self.lookup_cache_misses = 0
        #: Individual PMDA ``fetch`` invocations — strictly less than
        #: the naive per-request count once the TCP service layer
        #: coalesces concurrent fetches.
        self.pmda_fetch_calls = 0
        self.restarts = 0
        #: v2 protocol handshakes served.
        self.opens = 0
        #: Archive replay requests served.
        self.archive_fetches = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PMCD:
    """The collector daemon for one host."""

    #: One daemon round trip as seen by a local client (seconds). This
    #: is the dominant fixed cost of the PCP measurement path.
    DEFAULT_ROUND_TRIP = 2.5e-3

    def __init__(self, hostname: str = "localhost",
                 round_trip_seconds: float = DEFAULT_ROUND_TRIP):
        self.hostname = hostname
        self.round_trip_seconds = round_trip_seconds
        self.pmns = PMNS()
        self._agents: Dict[int, PMDA] = {}
        self._fetch_count = 0
        self.running = True
        self.generation = 0
        self.boot_id = 0
        self.stats = PMCDStats()
        #: Optional :class:`~repro.pcp.server.ServiceStats` attached by
        #: the TCP service layer (exported via pmcd.service.* metrics).
        self.service_stats = None
        #: Optional :class:`~repro.pcp.archive.MetricArchive` serving
        #: ArchiveFetchRequest replay (attach via :meth:`attach_archive`).
        self.archive = None
        self._lookup_cache: Dict[Tuple[str, ...], LookupResponse] = {}

    # ------------------------------------------------------------------
    def register_agent(self, agent: PMDA) -> None:
        """Install a PMDA and splice its metrics into the PMNS."""
        if agent.domain in self._agents:
            raise PCPError(
                f"domain {agent.domain} already owned by "
                f"{self._agents[agent.domain].name}"
            )
        self._agents[agent.domain] = agent
        for name, pmid in agent.metric_table():
            self.pmns.register(name, pmid)
        self._bump_generation()

    def attach_archive(self, archive) -> None:
        """Attach a :class:`~repro.pcp.archive.MetricArchive` so this
        daemon answers archive-replay requests (v2 protocol)."""
        self.archive = archive

    @property
    def agents(self) -> List[PMDA]:
        return list(self._agents.values())

    @property
    def fetch_count(self) -> int:
        """Number of fetch PDUs served (diagnostics/tests)."""
        return self._fetch_count

    def _bump_generation(self) -> None:
        self.generation += 1
        self._lookup_cache.clear()

    def restart(self) -> None:
        """Simulate a daemon crash + restart.

        In-memory caches are lost and the boot id changes, so clients
        observe a measurement *gap* (via the ``boot_id`` on fetch
        responses) rather than silently continuing. The PMNS survives
        because agents re-register deterministically on boot.
        """
        self.stats.restarts += 1
        self.boot_id += 1
        self.running = True
        self._bump_generation()

    # ------------------------------------------------------------------
    def handle(self, request):
        """Dispatch one protocol request; never raises to the client."""
        self.stats.requests += 1
        if not self.running:
            self.stats.errors += 1
            return ErrorResponse(PCPStatus.PM_ERR_PERMISSION, "pmcd not running")
        if isinstance(request, LookupRequest):
            return self._handle_lookup(request)
        if isinstance(request, FetchRequest):
            return self._handle_fetch(request)
        if isinstance(request, ChildrenRequest):
            return self._handle_children(request)
        if isinstance(request, OpenRequest):
            return self._handle_open(request)
        if isinstance(request, ArchiveFetchRequest):
            return self._handle_archive_fetch(request)
        self.stats.errors += 1
        return ErrorResponse(PCPStatus.PM_ERR_PMID,
                             f"unknown request type {type(request).__name__}")

    # ------------------------------------------------------------------
    def _handle_lookup(self, request: LookupRequest) -> LookupResponse:
        self.stats.lookups += 1
        cached = self._lookup_cache.get(request.names)
        if cached is not None:
            self.stats.lookup_cache_hits += 1
            return cached
        self.stats.lookup_cache_misses += 1
        pmids = []
        statuses = []
        for name in request.names:
            try:
                pmids.append(self.pmns.lookup(name))
                statuses.append(PCPStatus.OK)
            except Exception:
                pmids.append(-1)
                statuses.append(PCPStatus.PM_ERR_NAME)
        overall = (PCPStatus.OK if all(s == PCPStatus.OK for s in statuses)
                   else PCPStatus.PM_ERR_NAME)
        response = LookupResponse(status=overall, pmids=tuple(pmids),
                                  name_status=tuple(statuses),
                                  generation=self.generation)
        self._lookup_cache[request.names] = response
        return response

    def _handle_fetch(self, request: FetchRequest) -> FetchResponse:
        self._fetch_count += 1
        self.stats.fetches += 1
        metrics = []
        for pmid in request.pmids:
            agent = self._agents.get(pmid_domain(pmid))
            if agent is None:
                return FetchResponse(status=PCPStatus.PM_ERR_PMID,
                                     generation=self.generation,
                                     boot_id=self.boot_id)
            try:
                self.stats.pmda_fetch_calls += 1
                values = agent.fetch(pmid)
            except PCPError:
                return FetchResponse(status=PCPStatus.PM_ERR_PMID,
                                     generation=self.generation,
                                     boot_id=self.boot_id)
            metrics.append(MetricValues(pmid=pmid, values=values))
        return FetchResponse(status=PCPStatus.OK,
                             timestamp=self._timestamp(),
                             metrics=tuple(metrics),
                             generation=self.generation,
                             boot_id=self.boot_id)

    def _handle_open(self, request: OpenRequest) -> OpenResponse:
        """v2 handshake: answer with the negotiated protocol version."""
        self.stats.opens += 1
        version = negotiate_version(request.version)
        return OpenResponse(status=PCPStatus.OK, version=version,
                            hostname=self.hostname,
                            generation=self.generation,
                            boot_id=self.boot_id)

    def _handle_archive_fetch(self, request: ArchiveFetchRequest):
        """v2 archive replay: serve records from the attached archive."""
        self.stats.archive_fetches += 1
        if self.archive is None:
            return ArchiveFetchResponse(status=PCPStatus.PM_ERR_NODATA,
                                        generation=self.generation)
        try:
            records = self.archive.records(
                t0=request.t0, t1=request.t1,
                metrics=list(request.metrics) or None)
        except PCPError as exc:  # corruption: fail the request, not us
            self.stats.errors += 1
            return ErrorResponse(PCPStatus.PM_ERR_NODATA, str(exc))
        samples = tuple(
            ArchiveSample(
                timestamp=record.timestamp,
                values={f"{metric}|{instance}": value
                        for (metric, instance), value
                        in sorted(record.values.items())},
                gap=record.gap,
            )
            for record in records
        )
        return ArchiveFetchResponse(status=PCPStatus.OK, samples=samples,
                                    generation=self.generation)

    def _handle_children(self, request: ChildrenRequest) -> ChildrenResponse:
        self.stats.children += 1
        try:
            pairs = self.pmns.children(request.prefix)
        except Exception:
            return ChildrenResponse(status=PCPStatus.PM_ERR_NAME,
                                    generation=self.generation)
        return ChildrenResponse(
            status=PCPStatus.OK,
            children=tuple(name for name, _ in pairs),
            leaf_flags=tuple(leaf for _, leaf in pairs),
            generation=self.generation,
        )

    def _timestamp(self) -> float:
        # Use the first agent's node clock when available (perfevent
        # PMDA); a standalone daemon reports 0.
        for agent in self._agents.values():
            node = getattr(agent, "node", None)
            if node is not None:
                return node.clock
        return 0.0


def start_pmcd_for_node(node: Node,
                        round_trip_seconds: Optional[float] = None,
                        self_metrics: bool = True) -> PMCD:
    """Boot a PMCD serving ``node``'s nest counters via perfevent.

    This is what IBM's deployment on Summit amounts to: a privileged
    daemon exporting the otherwise-restricted nest events to user space.
    ``self_metrics`` additionally registers the daemon's own ``pmcd.*``
    agent (as real pmcd does), making service overhead measurable
    through the same path.
    """
    pmcd = PMCD(
        hostname=node.config.name,
        round_trip_seconds=(PMCD.DEFAULT_ROUND_TRIP
                            if round_trip_seconds is None
                            else round_trip_seconds),
    )
    pmcd.register_agent(PerfeventPMDA(node))
    if self_metrics:
        pmcd.register_agent(PmcdPMDA(pmcd))
    return pmcd
