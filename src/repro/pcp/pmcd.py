"""The Performance Metrics Collector Daemon (PMCD).

"The PMCD runs with the special privileges needed to query the nest
hardware counters. PAPI then queries the PMCD via the PCP component
without the user requiring any special permissions."

:class:`PMCD` registers PMDAs, builds the PMNS from their metric
tables, and serves protocol requests. Every request costs a simulated
round-trip latency, charged to the *client's* node clock by the client
context — this is the indirection overhead whose effect on measurement
accuracy the paper quantifies (and finds negligible for large
problems).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PCPError
from ..machine.node import Node
from .pmda import PMDA, PerfeventPMDA, pmid_domain
from .pmns import PMNS
from .protocol import (
    ChildrenRequest,
    ChildrenResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    LookupRequest,
    LookupResponse,
    MetricValues,
    PCPStatus,
)


class PMCD:
    """The collector daemon for one host."""

    #: One daemon round trip as seen by a local client (seconds). This
    #: is the dominant fixed cost of the PCP measurement path.
    DEFAULT_ROUND_TRIP = 2.5e-3

    def __init__(self, hostname: str = "localhost",
                 round_trip_seconds: float = DEFAULT_ROUND_TRIP):
        self.hostname = hostname
        self.round_trip_seconds = round_trip_seconds
        self.pmns = PMNS()
        self._agents: Dict[int, PMDA] = {}
        self._fetch_count = 0
        self.running = True

    # ------------------------------------------------------------------
    def register_agent(self, agent: PMDA) -> None:
        """Install a PMDA and splice its metrics into the PMNS."""
        if agent.domain in self._agents:
            raise PCPError(
                f"domain {agent.domain} already owned by "
                f"{self._agents[agent.domain].name}"
            )
        self._agents[agent.domain] = agent
        for name, pmid in agent.metric_table():
            self.pmns.register(name, pmid)

    @property
    def agents(self) -> List[PMDA]:
        return list(self._agents.values())

    @property
    def fetch_count(self) -> int:
        """Number of fetch PDUs served (diagnostics/tests)."""
        return self._fetch_count

    # ------------------------------------------------------------------
    def handle(self, request):
        """Dispatch one protocol request; never raises to the client."""
        if not self.running:
            return ErrorResponse(PCPStatus.PM_ERR_PERMISSION, "pmcd not running")
        if isinstance(request, LookupRequest):
            return self._handle_lookup(request)
        if isinstance(request, FetchRequest):
            return self._handle_fetch(request)
        if isinstance(request, ChildrenRequest):
            return self._handle_children(request)
        return ErrorResponse(PCPStatus.PM_ERR_PMID,
                             f"unknown request type {type(request).__name__}")

    # ------------------------------------------------------------------
    def _handle_lookup(self, request: LookupRequest) -> LookupResponse:
        pmids = []
        statuses = []
        for name in request.names:
            try:
                pmids.append(self.pmns.lookup(name))
                statuses.append(PCPStatus.OK)
            except Exception:
                pmids.append(-1)
                statuses.append(PCPStatus.PM_ERR_NAME)
        overall = (PCPStatus.OK if all(s == PCPStatus.OK for s in statuses)
                   else PCPStatus.PM_ERR_NAME)
        return LookupResponse(status=overall, pmids=tuple(pmids),
                              name_status=tuple(statuses))

    def _handle_fetch(self, request: FetchRequest) -> FetchResponse:
        self._fetch_count += 1
        metrics = []
        for pmid in request.pmids:
            agent = self._agents.get(pmid_domain(pmid))
            if agent is None:
                return FetchResponse(status=PCPStatus.PM_ERR_PMID)
            try:
                values = agent.fetch(pmid)
            except PCPError:
                return FetchResponse(status=PCPStatus.PM_ERR_PMID)
            metrics.append(MetricValues(pmid=pmid, values=values))
        return FetchResponse(status=PCPStatus.OK,
                             timestamp=self._timestamp(),
                             metrics=tuple(metrics))

    def _handle_children(self, request: ChildrenRequest) -> ChildrenResponse:
        try:
            pairs = self.pmns.children(request.prefix)
        except Exception:
            return ChildrenResponse(status=PCPStatus.PM_ERR_NAME)
        return ChildrenResponse(
            status=PCPStatus.OK,
            children=tuple(name for name, _ in pairs),
            leaf_flags=tuple(leaf for _, leaf in pairs),
        )

    def _timestamp(self) -> float:
        # Use the first agent's node clock when available (perfevent
        # PMDA); a standalone daemon reports 0.
        for agent in self._agents.values():
            node = getattr(agent, "node", None)
            if node is not None:
                return node.clock
        return 0.0


def start_pmcd_for_node(node: Node,
                        round_trip_seconds: Optional[float] = None) -> PMCD:
    """Boot a PMCD serving ``node``'s nest counters via perfevent.

    This is what IBM's deployment on Summit amounts to: a privileged
    daemon exporting the otherwise-restricted nest events to user space.
    """
    pmcd = PMCD(
        hostname=node.config.name,
        round_trip_seconds=(PMCD.DEFAULT_ROUND_TRIP
                            if round_trip_seconds is None
                            else round_trip_seconds),
    )
    pmcd.register_agent(PerfeventPMDA(node))
    return pmcd
