"""Two-dimensional virtual processor grids (r × c).

The 3D-FFT "decomposes the input data array A into a two-dimensional
r × c virtual processor grid with each element in the grid
corresponding to a distinct MPI rank", so the local array per rank is
(N/r) × (N/c) × N. The paper's jobs use 2×4 (8 ranks), 4×8 (32 ranks)
and 8×8 (64 ranks) grids; :class:`ProcessorGrid` handles the rank ↔
coordinate mapping and the row/column communicators the transpose
phases exchange data within.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..errors import MPIError
from .comm import SimComm, SubComm


@dataclasses.dataclass(frozen=True)
class ProcessorGrid:
    """An ``rows × cols`` grid in row-major rank order."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise MPIError("grid dimensions must be positive")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def coords_of(self, rank: int) -> Tuple[int, int]:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} outside grid of size {self.size}")
        return divmod(rank, self.cols)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise MPIError(f"coords ({row}, {col}) outside {self.rows}x{self.cols}")
        return row * self.cols + col

    def row_ranks(self, row: int) -> List[int]:
        return [self.rank_of(row, c) for c in range(self.cols)]

    def col_ranks(self, col: int) -> List[int]:
        return [self.rank_of(r, col) for r in range(self.rows)]

    # ------------------------------------------------------------------
    def row_comm(self, comm: SimComm, rank: int) -> SubComm:
        """Communicator over the grid row containing ``rank``."""
        row, _ = self.coords_of(rank)
        return comm.sub_comm(self.row_ranks(row))

    def col_comm(self, comm: SimComm, rank: int) -> SubComm:
        """Communicator over the grid column containing ``rank``."""
        _, col = self.coords_of(rank)
        return comm.sub_comm(self.col_ranks(col))

    def local_shape(self, n: int) -> Tuple[int, int, int]:
        """Local array shape (N/r, N/c, N) for a global N³ problem."""
        if n % self.rows or n % self.cols:
            raise MPIError(
                f"N={n} must be divisible by grid dims {self.rows}x{self.cols}"
            )
        return (n // self.rows, n // self.cols, n)
