"""Simulated MPI substrate: clusters of simulated nodes, rank placement,
byte-accounted collectives, 2-D processor grids, and InfiniBand port
counters read by the PAPI infiniband component."""

from .comm import Cluster, RankPlacement, SimComm, SubComm
from .grid import ProcessorGrid
from .network import COUNTER_UNIT_BYTES, NICPort

__all__ = [
    "COUNTER_UNIT_BYTES",
    "Cluster",
    "NICPort",
    "ProcessorGrid",
    "RankPlacement",
    "SimComm",
    "SubComm",
]
