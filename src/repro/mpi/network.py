"""InfiniBand port model (Mellanox ConnectX-5-class).

The paper reads ``infiniband:::mlx5_[0|1]_1_ext:port_recv_data`` through
the PAPI infiniband component to identify the All2All phases of the
3D-FFT (Fig 11). Real IB ``port_rcv_data``/``port_xmit_data`` counters
count *4-byte words*, not bytes; :class:`NICPort` stores octets
internally and exposes the hardware counter semantics (octets / 4) so
the PAPI layer reports exactly what perfquery would.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import MPIError
from ..machine.config import NICConfig

#: InfiniBand data counters tick once per 4 octets (lane word).
COUNTER_UNIT_BYTES = 4


class NICPort:
    """One InfiniBand port with cumulative receive/transmit counters."""

    def __init__(self, config: NICConfig):
        self.config = config
        self.recv_octets = 0
        self.xmit_octets = 0
        # (t0, t1, octets) transfer intervals for rate queries/tests.
        self._recv_log: List[Tuple[float, float, int]] = []
        self._xmit_log: List[Tuple[float, float, int]] = []

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """PAPI-style port identifier, e.g. ``mlx5_0_1_ext``."""
        return f"{self.config.name}_{self.config.port}_ext"

    @property
    def port_recv_data(self) -> int:
        """Hardware counter value (4-byte units)."""
        return self.recv_octets // COUNTER_UNIT_BYTES

    @property
    def port_xmit_data(self) -> int:
        return self.xmit_octets // COUNTER_UNIT_BYTES

    # ------------------------------------------------------------------
    def record_recv(self, nbytes: int, t0: float = 0.0,
                    duration: float = 0.0) -> None:
        if nbytes < 0:
            raise MPIError("cannot receive a negative byte count")
        self.recv_octets += nbytes
        self._recv_log.append((t0, t0 + duration, nbytes))

    def record_xmit(self, nbytes: int, t0: float = 0.0,
                    duration: float = 0.0) -> None:
        if nbytes < 0:
            raise MPIError("cannot transmit a negative byte count")
        self.xmit_octets += nbytes
        self._xmit_log.append((t0, t0 + duration, nbytes))

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` at the configured link bandwidth."""
        if nbytes < 0:
            raise MPIError("transfer size cannot be negative")
        return nbytes / self.config.bandwidth

    def recv_bytes_between(self, t0: float, t1: float) -> int:
        """Octets received in the window (linear attribution)."""
        return _bytes_between(self._recv_log, t0, t1)

    def xmit_bytes_between(self, t0: float, t1: float) -> int:
        return _bytes_between(self._xmit_log, t0, t1)


def _bytes_between(log: List[Tuple[float, float, int]],
                   t0: float, t1: float) -> int:
    total = 0.0
    for a, b, nbytes in log:
        if b <= a:  # instantaneous record: attribute to its timestamp
            if t0 <= a < t1:
                total += nbytes
            continue
        lo, hi = max(a, t0), min(b, t1)
        if hi > lo:
            total += nbytes * (hi - lo) / (b - a)
    return int(total)
