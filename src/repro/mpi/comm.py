"""Simulated MPI: cluster, rank placement, and collectives.

The distributed 3D-FFT and QMCPACK drivers run all MPI ranks inside one
Python process. :class:`Cluster` owns the per-node hardware simulations
and keeps their clocks in lock-step; :class:`SimComm` provides the
mpi4py-like communication surface (buffer-oriented, upper-case-style
semantics) with full byte accounting:

* intra-node transfers read the sender socket's memory and write the
  receiver socket's memory (visible to the nest counters);
* inter-node transfers additionally cross the NICs, incrementing the
  InfiniBand ``port_recv_data``/``port_xmit_data`` counters the PAPI
  infiniband component reads.

Collectives are synchronising: every participating node's clock
advances by the same duration, modelling the implicit barrier.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..errors import MPIError
from ..machine.config import MachineConfig
from ..machine.node import Node
from ..noise import NoiseConfig
from ..rng import derive_seed


class Cluster:
    """A set of identical simulated compute nodes with a common clock."""

    def __init__(self, machine: MachineConfig, n_nodes: int,
                 seed: Optional[int] = None,
                 noise: Optional[NoiseConfig] = None):
        if n_nodes <= 0:
            raise MPIError("cluster needs at least one node")
        self.machine = machine
        self.nodes: List[Node] = [
            Node(machine, seed=derive_seed(seed, f"node{i}"), noise=noise)
            for i in range(n_nodes)
        ]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def advance_all(self, dt: float, background: bool = True) -> None:
        for node in self.nodes:
            node.advance(dt, background=background)

    @property
    def clock(self) -> float:
        return self.nodes[0].clock


@dataclasses.dataclass(frozen=True)
class RankPlacement:
    """Where one MPI rank lives: node index and socket on that node."""

    rank: int
    node_index: int
    socket_id: int


class SimComm:
    """Communicator over all ranks, one rank per socket (Summit style).

    "Each MPI rank is assigned to a socket (two per compute node) on
    Summit. Since each socket has its own nest, we measure PCP events
    per MPI rank."
    """

    def __init__(self, cluster: Cluster, ranks_per_node: Optional[int] = None):
        self.cluster = cluster
        per_node = (cluster.machine.n_sockets if ranks_per_node is None
                    else ranks_per_node)
        if per_node < 1 or per_node > cluster.machine.n_sockets:
            raise MPIError(
                f"ranks_per_node={per_node} must be within "
                f"1..{cluster.machine.n_sockets}"
            )
        self.placements: List[RankPlacement] = []
        rank = 0
        for node_index in range(cluster.n_nodes):
            for socket_id in range(per_node):
                self.placements.append(
                    RankPlacement(rank, node_index, socket_id))
                rank += 1

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.placements)

    def node_of(self, rank: int) -> Node:
        return self.cluster.nodes[self.placements[rank].node_index]

    def socket_of(self, rank: int):
        p = self.placements[rank]
        return self.cluster.nodes[p.node_index].socket(p.socket_id)

    def sub_comm(self, ranks: Sequence[int]) -> "SubComm":
        """Communicator over a subset of ranks (grid rows/columns)."""
        return SubComm(self, list(ranks))

    # ------------------------------------------------------------------
    def alltoallv(self, send_chunks: List[List[np.ndarray]],
                  account: bool = True) -> List[List[np.ndarray]]:
        """Personalised all-to-all: ``send_chunks[i][j]`` goes i → j.

        Returns ``recv`` with ``recv[j][i] = send_chunks[i][j]`` (data
        is not copied — ranks share one address space here; traffic and
        time accounting model the real exchange).
        """
        n = self.size
        if len(send_chunks) != n or any(len(row) != n for row in send_chunks):
            raise MPIError(
                f"alltoallv needs an {n}x{n} matrix of chunks, got "
                f"{len(send_chunks)} rows"
            )
        if account:
            self._account_exchange(
                [[chunk.nbytes for chunk in row] for row in send_chunks],
                list(range(n)),
            )
        return [[send_chunks[i][j] for i in range(n)] for j in range(n)]

    def alltoall_bytes(self, per_pair_bytes: int,
                       ranks: Optional[Sequence[int]] = None,
                       advance: bool = True) -> float:
        """Account (only) for an all-to-all moving ``per_pair_bytes``
        between every ordered pair of distinct ranks. Returns duration.

        ``advance=False`` records the traffic but leaves the clocks to
        the caller — used when several disjoint groups exchange
        *concurrently* (the per-row/per-column All2Alls of the FFT).
        """
        group = list(ranks) if ranks is not None else list(range(self.size))
        n = len(group)
        sizes = [[0 if i == j else per_pair_bytes for j in range(n)]
                 for i in range(n)]
        return self._account_exchange(sizes, group, advance=advance)

    # ------------------------------------------------------------------
    def _account_exchange(self, sizes: List[List[int]],
                          group: Sequence[int],
                          advance: bool = True) -> float:
        """Record memory/NIC traffic for a pairwise exchange and advance
        every node clock by the exchange duration."""
        nic_bytes_per_node = {}
        for i, src in enumerate(group):
            for j, dst in enumerate(group):
                nbytes = sizes[i][j]
                if nbytes == 0 or src == dst:
                    continue
                src_p = self.placements[src]
                dst_p = self.placements[dst]
                # Memory traffic: the sender reads its buffer, the
                # receiver writes its buffer.
                self.socket_of(src).record_traffic(read_bytes=nbytes)
                self.socket_of(dst).record_traffic(write_bytes=nbytes)
                if src_p.node_index != dst_p.node_index:
                    src_node = self.cluster.nodes[src_p.node_index]
                    dst_node = self.cluster.nodes[dst_p.node_index]
                    t0 = self.cluster.clock
                    if src_node.nics:
                        nic = src_node.nics[src_p.socket_id % len(src_node.nics)]
                        nic.record_xmit(nbytes, t0)
                    if dst_node.nics:
                        nic = dst_node.nics[dst_p.socket_id % len(dst_node.nics)]
                        nic.record_recv(nbytes, t0)
                    for idx in (src_p.node_index, dst_p.node_index):
                        nic_bytes_per_node[idx] = (
                            nic_bytes_per_node.get(idx, 0) + nbytes)
        bandwidth = self._link_bandwidth()
        duration = (max(nic_bytes_per_node.values()) / bandwidth
                    if nic_bytes_per_node else 0.0)
        if advance and duration > 0.0:
            self.cluster.advance_all(duration)
        return duration

    def _link_bandwidth(self) -> float:
        nics = self.cluster.machine.nics
        if not nics:
            return 12.5e9  # assume EDR when the machine has no NIC model
        return sum(n.bandwidth for n in nics)

    def barrier(self, skew: float = 0.0) -> None:
        """Synchronise all node clocks (optionally adding ``skew``)."""
        latest = max(node.clock for node in self.cluster.nodes)
        for node in self.cluster.nodes:
            dt = latest - node.clock + skew
            if dt > 0:
                node.advance(dt)


class SubComm:
    """A row/column communicator: a view over a subset of ranks."""

    def __init__(self, parent: SimComm, ranks: List[int]):
        if len(set(ranks)) != len(ranks):
            raise MPIError("duplicate ranks in sub-communicator")
        for r in ranks:
            if not 0 <= r < parent.size:
                raise MPIError(f"rank {r} out of range")
        self.parent = parent
        self.ranks = ranks

    @property
    def size(self) -> int:
        return len(self.ranks)

    def alltoall_bytes(self, per_pair_bytes: int, advance: bool = True) -> float:
        return self.parent.alltoall_bytes(per_pair_bytes, self.ranks,
                                          advance=advance)
