"""repro — reproduction of *"Memory Traffic and Complete Application
Profiling with PAPI Multi-Component Measurements"* (Barry, Jagode,
Danalis, Dongarra) on a fully simulated POWER9-class substrate.

The package builds, from scratch, every system the paper depends on:

* :mod:`repro.machine` — POWER9-like nodes: cores, L3 slices with
  idle-slice re-appropriation, a stride prefetcher, store-bypass
  policy, memory channels, and the privileged *nest* counters;
* :mod:`repro.engine` — exact sectored cache simulation and the fast
  analytic traffic laws it validates;
* :mod:`repro.pcp` — a Performance Co-Pilot stack (PMNS, perfevent
  PMDA, PMCD daemon, client context);
* :mod:`repro.papi` — a PAPI-like multi-component measurement library
  (pcp, perf_event_uncore, nvml, infiniband components, event sets);
* :mod:`repro.kernels` / :mod:`repro.fft3d` / :mod:`repro.qmc` — the
  paper's workloads (GEMM, capped GEMV, the distributed 3D-FFT and a
  QMCPACK-style VMC/DMC miniapp), each with verified numerics;
* :mod:`repro.measure` — the measurement methodology (expectations,
  Eq. 5 adaptive repetitions, sessions, timeline profiling);
* :mod:`repro.experiments` — one reproduction per table/figure.

Quickstart::

    from repro.machine import SUMMIT, Node
    from repro.pcp import start_pmcd_for_node
    from repro.papi import library_init

    node = Node(SUMMIT, seed=42)
    papi = library_init(node, pmcd=start_pmcd_for_node(node))
    es = papi.create_eventset()
    es.add_event("pcp:::perfevent.hwcounters.nest_mba0_imc."
                 "PM_MBA0_READ_BYTES.value:cpu87")
    es.start()
    # ... run work on the simulated node ...
    print(es.stop())
"""

from . import errors, units
from .machine import SKYLAKE, SUMMIT, TELLICO, Node, TrafficCounters
from .papi import Papi, library_init
from .pcp import start_pmcd_for_node

__version__ = "1.0.0"

__all__ = [
    "Node",
    "Papi",
    "SKYLAKE",
    "SUMMIT",
    "TELLICO",
    "TrafficCounters",
    "errors",
    "library_init",
    "start_pmcd_for_node",
    "units",
    "__version__",
]
