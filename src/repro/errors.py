"""Exception hierarchy for the ``repro`` package.

Every layer of the stack raises subclasses of :class:`ReproError` so that
callers can catch simulation problems without masking programming errors.
The PAPI layer mirrors the C library's negative return codes with typed
exceptions (see :mod:`repro.papi.consts`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A machine, kernel, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The hardware simulation reached an invalid internal state."""


class TraceStoreError(ReproError):
    """A problem with the on-disk columnar trace store."""


class TraceCorruptionError(TraceStoreError):
    """A stored trace failed validation (truncated, bit-flipped, or
    stale manifest); the entry must never be returned as data."""


class PrivilegeError(ReproError, PermissionError):
    """An operation required elevated privileges the caller lacks.

    Raised when user code attempts to read the nest (uncore) counters
    directly on a machine where the simulated user is unprivileged —
    the situation that motivates the PCP indirection in the paper.
    """


class PCPError(ReproError):
    """An error inside the simulated Performance Co-Pilot stack."""


class PCPTimeout(PCPError):
    """A PCP request exceeded its deadline (after client-side retries)."""


class PMNSError(PCPError):
    """A metric name could not be resolved in the PMNS namespace."""


class ArchiveError(PCPError):
    """A problem with an on-disk PCP metric archive."""


class ArchiveCorruptionError(ArchiveError):
    """An archive volume failed validation (truncated tail record,
    bit-flipped bytes, or an index/volume checksum mismatch); the
    affected records must never be returned as data."""


class PapiError(ReproError):
    """Base class for PAPI-layer errors (mirrors C PAPI return codes)."""

    #: Mirrors the C library's error code; subclasses override.
    code: int = -1

    def __init__(self, message: str = ""):
        super().__init__(message or self.__class__.__doc__ or "")


class PapiInvalidArgument(PapiError):
    """PAPI_EINVAL: invalid argument."""

    code = -1


class PapiNoEvent(PapiError):
    """PAPI_ENOEVNT: the named event does not exist in any component."""

    code = -7


class PapiNotRunning(PapiError):
    """PAPI_ENOTRUN: the event set is not currently counting."""

    code = -9


class PapiIsRunning(PapiError):
    """PAPI_EISRUN: the event set is already counting."""

    code = -10


class PapiNoComponent(PapiError):
    """PAPI_ENOCMP: the requested component is not available."""

    code = -20


class PapiPermissionDenied(PapiError):
    """PAPI_EPERM: insufficient privilege to access the counters."""

    code = -8


class MPIError(ReproError):
    """An error in the simulated MPI layer."""


class GPUError(ReproError):
    """An error in the simulated GPU device layer."""
