"""Executor: run kernel models on a simulated node.

The executor is the bridge between kernel traffic laws and the machine
state that the PAPI components observe. Running a kernel

* marks the chosen cores busy (which determines each core's effective
  L3 share via slice re-appropriation),
* computes the analytic traffic per core and records it — optionally
  perturbed by per-repetition capture jitter — into the socket's
  memory controller (where the nest counters see it),
* advances the node clock by a roofline runtime estimate, during which
  background traffic also accumulates.

Batched kernels (one independent instance per core, the paper's
"batched GEMM/GEMV") are expressed with ``n_cores > 1``.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from ..machine.cache import TrafficCounters
from ..machine.node import Node
from ..machine.prefetch import SoftwarePrefetch
from .analytic import CacheContext
from .trace import KernelModel


@dataclasses.dataclass
class ExecutionRecord:
    """Outcome of one executor invocation."""

    kernel: str
    socket_id: int
    n_cores: int
    repetitions: int
    #: Analytic (noise-free) traffic of ONE repetition across all cores.
    true_traffic: TrafficCounters
    #: Traffic actually recorded into the controller for the whole run
    #: (all repetitions, including capture jitter; excludes background).
    recorded_traffic: TrafficCounters
    #: Simulated runtime of one repetition (seconds).
    runtime_per_rep: float

    @property
    def runtime_total(self) -> float:
        return self.runtime_per_rep * self.repetitions


class Executor:
    """Runs kernels on one :class:`~repro.machine.node.Node`."""

    def __init__(self, node: Node):
        self.node = node

    # ------------------------------------------------------------------
    def cache_context(self, socket_id: int, n_cores: int,
                      footprint_bytes: int,
                      assume_socket_busy: bool = False) -> CacheContext:
        """Effective cache context for one of ``n_cores`` active cores.

        ``assume_socket_busy`` models an OpenMP-parallel kernel keeping
        every core busy (the 3D-FFT phases): each thread is confined to
        its 5 MB share even though the executor models the aggregate
        work as one logical kernel."""
        sock = self.node.socket(socket_id)
        effective = (len(sock.usable_cores) if assume_socket_busy
                     else n_cores)
        share = sock.topology.share_for(effective)
        spill = sock.topology.spill_extra_read_fraction(
            footprint_bytes, effective)
        return CacheContext(
            capacity_bytes=share.total_bytes,
            granule=sock.config.l3_slice.granule_bytes,
            line_bytes=sock.config.l3_slice.line_bytes,
            spill_extra_fraction=spill,
        )

    # ------------------------------------------------------------------
    def run(self, kernel: KernelModel, socket_id: int = 0, n_cores: int = 1,
            repetitions: int = 1,
            prefetch: SoftwarePrefetch = SoftwarePrefetch(),
            noisy: bool = True, background: bool = True,
            assume_socket_busy: bool = False,
            advance_clock: bool = True,
            ) -> ExecutionRecord:
        """Execute ``kernel`` ``repetitions`` times on ``n_cores`` cores.

        Each core runs an independent instance (batched semantics); for
        a single-threaded kernel pass ``n_cores=1``. Fresh data is
        assumed per repetition (the paper uses a different matrix per
        repetition precisely so no data is cached between repetitions),
        so every repetition pays full cold traffic.
        """
        sock = self.node.socket(socket_id)
        usable = sock.usable_cores
        if n_cores < 1 or n_cores > len(usable):
            raise ConfigurationError(
                f"n_cores={n_cores} not in 1..{len(usable)} for socket "
                f"{socket_id} of {self.node.config.name}"
            )
        cores = usable[:n_cores]
        for c in cores:
            c.mark_busy(True)
        try:
            ctx = self.cache_context(socket_id, n_cores,
                                     kernel.footprint_bytes(),
                                     assume_socket_busy=assume_socket_busy)
            per_core = kernel.traffic(ctx, prefetch)
            true_one_rep = per_core.scaled(n_cores)
            efficiency = max(1e-3, kernel.bandwidth_efficiency(prefetch))
            runtime = cores[0].estimate_runtime(
                kernel.flops(), per_core.total_bytes / efficiency,
                active_cores_on_socket=n_cores,
            )
            noise = self.node.noise_model(socket_id)
            recorded = TrafficCounters()
            for _ in range(repetitions):
                factor = noise.capture_factor(runtime) if noisy else 1.0
                rep = true_one_rep.scaled(factor)
                if noisy:
                    # Fresh buffers per repetition: first-touch traffic.
                    rep.add(noise.per_rep_traffic())
                sock.record_traffic(rep.read_bytes, rep.write_bytes)
                recorded.add(rep)
                if advance_clock:
                    self.node.advance(runtime,
                                      background=background and noisy)
            # Core-private PMU accounting: each core retires its own
            # instance's work (batched semantics).
            for c in cores:
                c.retire_work(kernel.flops() * repetitions,
                              runtime * repetitions)
        finally:
            for c in cores:
                c.mark_busy(False)
        return ExecutionRecord(
            kernel=kernel.name,
            socket_id=socket_id,
            n_cores=n_cores,
            repetitions=repetitions,
            true_traffic=true_one_rep,
            recorded_traffic=recorded,
            runtime_per_rep=runtime,
        )
