"""Segment-pipelined streaming exact engine.

:class:`~repro.engine.exact.ShardedExactEngine` removed the
simulation bottleneck but kept a hard barrier in the end-to-end
pipeline: a kernel's full trace must be generated (or loaded) before
the first shard simulates a single row, and every nest pays
process-pool spawn plus column-pickling cost again.
:class:`PipelinedExactEngine` removes the barrier the way PEBS-style
tools do — by processing access records *online* as they are
produced:

* kernels emit bounded-memory **trace segments** through the
  ``KernelModel.segments()`` protocol (every kernel family implements
  a bounded emitter; concatenation is byte-identical to
  ``exact_trace()``);
* the producer (parent process) resolves store-bypass once per nest,
  simulates bypassed stores through its private write-combining
  buffer (a global FIFO a set partition would not preserve),
  sector-expands the remaining rows *once*, computes each row's set
  shard, and writes the columns into a slot of a **shared-memory
  segment ring** (a mmapped temp file — visible to workers through
  the page cache, no pickling);
* a **persistent pool** of shard workers — spawned once per engine,
  reused across nests and kernels — consumes slots as they land.
  Worker *i* owns the sets with ``(line % n_sets) % n_workers == i``;
  it masks its rows out of each segment and advances its private
  :class:`CacheSim`. Generation of segment *k+1* overlaps simulation
  of segment *k*.

Backpressure: the ring has ``ring_depth`` slots; slot ``seq %
ring_depth`` is rewritten only after **every** worker acknowledged
segment ``seq - ring_depth``, so a slow consumer stalls the producer
instead of buffering without bound, and peak RSS stays bounded by the
ring regardless of trace length.

Correctness argument (inherited from ``ShardedExactEngine``, see
DESIGN.md §6.3): replacement state of a set-associative cache is
independent per set and every sector-expanded row maps to exactly one
set. Segments are produced in program order; each worker receives
every segment in order through its private queue and filters a
*stable* subsequence, so each set's access sequence is simulated
exactly as the single-process engine would — per-worker counters sum
to the monolithic totals, bit for bit. Segment boundaries are
invisible to the simulator because state carries across
``access_batch`` calls, and each nest ends in a flush, so nests stay
independent.

``run_many()`` schedules several kernels back-to-back through the
same pool: per-worker queues are ordered, so the producer can start
generating kernel *k+1* while workers still drain kernel *k*'s
segments — no barrier at nest boundaries. With ``checkpoint_dir``
set, each completed kernel's totals are checkpointed and a re-run
resumes after the last completed kernel.

``n_workers=0`` selects an **inline** mode with no worker processes:
segments stream through a single simulator in the parent. On a
single-core host this degrades gracefully to the fastest possible
configuration (no IPC at all) while exercising the identical
segment/bypass/flush logic — it is also what the hypothesis
equivalence tests drive.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import multiprocessing
import os
import queue as queue_mod
import tempfile
import time
import traceback
import warnings
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import SimulationError
from ..machine.affinity import apply_affinity, plan_worker_cpus
from ..machine.cache import CacheSim, TrafficCounters, expand_to_sectors
from ..machine.config import CacheConfig
from ..machine.prefetch import SoftwarePrefetch
from .autotune import (
    AdaptiveBackoff,
    AutotuneConfig,
    SegmentSizeController,
    resolve_autotune,
)
from .envconfig import (
    affinity_mode,
    default_ring_depth,
    positive_int,
    resolve_segment_rows,
)
from .exact import (
    _bypass_column,
    _Checkpoints,
    _resolve_bypass,
    _round_capacity,
)
from .stream import BatchTrace, StreamDecl, iter_row_slices
from .trace import KernelModel
from .tracestore import StoredTrace, kernel_fingerprint

#: What ``run_nest`` accepts as a segment source.
SegmentSource = Union[KernelModel, BatchTrace, StoredTrace,
                      Iterable[BatchTrace]]

#: Ring slot column layout: (name, dtype, bytes per row).
_SLOT_COLUMNS = (("addr", "<i8", 8), ("size", "<i4", 4),
                 ("shard", "|u1", 1), ("is_write", "|b1", 1))
_SLOT_ROW_BYTES = sum(width for _, _, width in _SLOT_COLUMNS)

#: Seconds between worker-liveness checks while the producer waits.
_POLL_S = 0.2
#: Grace period for a stopping worker before it is terminated.
_JOIN_S = 5.0


def _slot_views(buf, slot_rows: int, depth: int) -> List[Dict]:
    """Per-slot numpy column views over the ring buffer."""
    views = []
    offset = 0
    for _ in range(depth):
        cols = {}
        for name, dtype, width in _SLOT_COLUMNS:
            cols[name] = np.frombuffer(buf, dtype=dtype, count=slot_rows,
                                       offset=offset)
            offset += slot_rows * width
        views.append(cols)
    return views


def _worker_main(worker_id: int, n_workers: int, ring_path: str,
                 slot_rows: int, depth: int, config: CacheConfig,
                 policy: str, task_q, result_q,
                 cpus=None) -> None:
    """Shard-worker loop: lives for the whole engine, one nest at a
    time. Messages arrive in program order through the private queue:
    ``("begin",)`` → fresh simulator, ``("seg", slot, rows, seq)`` →
    mask owned rows then ack, ``("sseg", slot, seq, offsets)`` →
    slice the pre-sorted per-worker span then ack, ``("end",
    nest_id)`` → flush and report counters, ``("stop",)`` → exit.
    ``cpus`` (optional) pins the worker via ``sched_setaffinity``."""
    sim = None
    busy = 0.0
    rows_owned = 0
    if cpus:
        apply_affinity(cpus)
    try:
        with open(ring_path, "rb") as handle:
            ring = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        views = _slot_views(ring, slot_rows, depth)
        while True:
            msg = task_q.get()
            kind = msg[0]
            if kind == "begin":
                sim = CacheSim(config, policy=policy)
                busy = 0.0
                rows_owned = 0
            elif kind == "sseg":
                _, slot, seq, offsets = msg
                start = time.perf_counter()
                cols = views[slot]
                lo = offsets[worker_id]
                hi = offsets[worker_id + 1]
                # Copy out of the slot before acking: the parent may
                # rewrite it once the seq is fully acked.
                addr = cols["addr"][lo:hi].copy()
                size = cols["size"][lo:hi].copy()
                is_write = cols["is_write"][lo:hi].copy()
                if addr.size:
                    sim.access_batch(addr, size.astype(np.int64), is_write)
                    rows_owned += int(addr.size)
                busy += time.perf_counter() - start
                result_q.put(("ack", worker_id, seq))
            elif kind == "seg":
                _, slot, rows, seq = msg
                start = time.perf_counter()
                cols = views[slot]
                addr = cols["addr"][:rows]
                size = cols["size"][:rows]
                is_write = cols["is_write"][:rows]
                if n_workers > 1:
                    mask = cols["shard"][:rows] == worker_id
                    addr = addr[mask]
                    size = size[mask]
                    is_write = is_write[mask]
                else:
                    # Copy out of the slot before acking: the parent
                    # may rewrite it once the seq is fully acked.
                    addr = addr.copy()
                    size = size.copy()
                    is_write = is_write.copy()
                if addr.size:
                    sim.access_batch(addr, size.astype(np.int64), is_write)
                    rows_owned += int(addr.size)
                busy += time.perf_counter() - start
                result_q.put(("ack", worker_id, seq))
            elif kind == "end":
                _, nest_id = msg
                start = time.perf_counter()
                sim.flush()
                busy += time.perf_counter() - start
                result_q.put((
                    "done", worker_id, nest_id,
                    sim.traffic.read_bytes, sim.traffic.write_bytes,
                    sim.stats_hits, sim.stats_misses, busy, rows_owned))
                sim = None
            elif kind == "stop":
                return
    except Exception:  # pragma: no cover - surfaced via parent raise
        result_q.put(("error", worker_id, traceback.format_exc()))


class PipelinedExactEngine:
    """Exact simulation with trace generation overlapping sharded
    simulation through a bounded shared-memory segment ring.

    Traffic, hits, and misses are bit-identical to
    :class:`~repro.engine.exact.ExactEngine` fed the monolithic
    ``exact_trace()`` (tested per kernel family with randomized
    segment sizes). ``n_workers`` defaults to ``cpu_count - 1`` (the
    producer keeps one core); ``0`` selects the no-subprocess inline
    mode. The worker pool persists across ``run_*`` calls until
    :meth:`close` (the engine is also a context manager).
    """

    def __init__(self, cache: CacheConfig,
                 n_workers: Optional[int] = None,
                 capacity_override: Optional[int] = None,
                 policy: str = "lru",
                 segment_rows: Optional[int] = None,
                 ring_depth: Optional[int] = None,
                 checkpoint_dir=None,
                 autotune: Optional[bool] = None,
                 autotune_config: Optional[AutotuneConfig] = None,
                 affinity: Optional[bool] = None):
        if capacity_override is not None:
            cache = CacheConfig(
                capacity_bytes=_round_capacity(capacity_override, cache),
                line_bytes=cache.line_bytes,
                granule_bytes=cache.granule_bytes,
                associativity=cache.associativity,
            )
        self.cache_config = cache
        self.policy = policy
        if n_workers is None:
            n_workers = max(0, (os.cpu_count() or 1) - 1)
        elif n_workers != 0:
            positive_int(n_workers, "n_workers")
        # One set-shard per worker, clamped like ShardedExactEngine
        # (and to the uint8 shard column).
        self.n_workers = max(0, min(int(n_workers), cache.n_sets, 255))
        # Knob precedence (locked by regression test): an explicit
        # constructor argument always wins; the env default is only
        # consulted when the argument is None.
        self.segment_rows = resolve_segment_rows(segment_rows)
        self.ring_depth = (default_ring_depth() if ring_depth is None
                           else positive_int(ring_depth, "ring_depth"))
        self.autotune = resolve_autotune(autotune)
        self.autotune_config = autotune_config or AutotuneConfig()
        if affinity is None:
            mode = affinity_mode()
            self.affinity = (self.autotune if mode == "auto"
                             else mode == "on")
        else:
            self.affinity = bool(affinity)
        # The write-combining buffer lives in the parent simulator.
        self.sim = CacheSim(cache, policy=policy)
        #: Directory for per-kernel checkpoints of ``run_many`` suites
        #: (None disables resumability).
        self.checkpoint_dir = checkpoint_dir
        #: Fault-injection/test hook: called with the worker id after
        #: each worker's contribution to a completed nest has been
        #: accumulated (and the nest checkpointed, if enabled).
        self.after_shard_hook: Optional[Callable[[int], None]] = None
        #: Observer hook: called with every raw (pre-bypass,
        #: unexpanded) trace segment as the producer streams it, in
        #: program order — the attachment point for the sampling
        #: observer (``repro.papi.sampling``), which profiles the run
        #: in flight without a second generation pass.
        self.segment_tap: Optional[Callable[[BatchTrace], None]] = None
        #: How many kernels the last ``run_many`` restored from
        #: checkpoints instead of recomputing.
        self.kernels_resumed = 0
        self.last_stats: Optional[Dict[str, int]] = None
        self.last_pipeline_stats: Optional[Dict[str, object]] = None
        self._pool = None
        self._task_qs: List = []
        self._result_q = None
        self._nest_id = 0
        self._seq = 0
        self._acks: Dict[int, int] = {}
        self._dones: Dict[int, Dict[int, Tuple]] = {}
        self._ring = None
        self._ring_path: Optional[str] = None
        self._views = None
        self._backoff = AdaptiveBackoff()
        self._controller: Optional[SegmentSizeController] = None
        self._worker_cpus: Optional[List[List[int]]] = None

    # ------------------------------------------------------- lifecycle
    def __enter__(self) -> "PipelinedExactEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        # Best-effort, but never *silently* best-effort: a pool that
        # had to be terminated (or a close that failed outright) is a
        # resource leak the caller should hear about.
        try:
            leaked = self.close()
        except Exception as exc:  # pragma: no cover - interpreter teardown
            warnings.warn(
                f"PipelinedExactEngine.__del__: close() failed "
                f"({exc!r}); worker processes may have leaked",
                ResourceWarning, stacklevel=2)
            return
        if leaked:
            warnings.warn(
                f"PipelinedExactEngine.__del__: worker processes "
                f"(pids {leaked}) did not join within {_JOIN_S}s and "
                f"were terminated — call close() explicitly or use "
                f"the engine as a context manager",
                ResourceWarning, stacklevel=2)

    def _ensure_pool(self) -> None:
        if self.n_workers == 0 or self._pool is not None:
            return
        slot_bytes = self.segment_rows * _SLOT_ROW_BYTES
        fd, path = tempfile.mkstemp(prefix="repro-ring-", suffix=".bin")
        try:
            os.ftruncate(fd, slot_bytes * self.ring_depth)
            self._ring = mmap.mmap(fd, slot_bytes * self.ring_depth)
        finally:
            os.close(fd)
        self._ring_path = path
        self._views = _slot_views(self._ring, self.segment_rows,
                                  self.ring_depth)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._result_q = ctx.Queue()
        self._task_qs = []
        self._pool = []
        self._worker_cpus = (plan_worker_cpus(self.n_workers)
                             if self.affinity else None)
        for wid in range(self.n_workers):
            task_q = ctx.Queue()
            cpus = (self._worker_cpus[wid]
                    if self._worker_cpus is not None else None)
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self.n_workers, path, self.segment_rows,
                      self.ring_depth, self.cache_config, self.policy,
                      task_q, self._result_q, cpus),
                daemon=True,
            )
            proc.start()
            self._task_qs.append(task_q)
            self._pool.append(proc)
        self._seq = 0
        self._acks = {}
        self._dones = {}

    def close(self) -> List[int]:
        """Stop the worker pool and release the segment ring. The
        engine stays usable — the next run respawns the pool.
        Returns the PIDs of workers that missed the join grace period
        and had to be terminated (empty on a clean shutdown)."""
        leaked: List[int] = []
        if self._pool is not None:
            for task_q in self._task_qs:
                try:
                    task_q.put(("stop",))
                except Exception:
                    pass
            deadline = time.monotonic() + _JOIN_S
            for proc in self._pool:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    leaked.append(proc.pid)
                    proc.terminate()
                    proc.join(timeout=_JOIN_S)
            for q in self._task_qs + [self._result_q]:
                q.cancel_join_thread()
                q.close()
            self._pool = None
            self._task_qs = []
            self._result_q = None
        if self._ring is not None:
            self._views = None
            try:
                self._ring.close()
            except BufferError:
                # A traceback frame may still hold views into the ring;
                # the map dies with them (the file is unlinked below).
                pass
            self._ring = None
        if self._ring_path is not None:
            try:
                os.unlink(self._ring_path)
            except OSError:
                pass
            self._ring_path = None
        return leaked

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool (empty in inline mode) — lets tests
        assert the pool persists across nests."""
        if self._pool is None:
            return []
        return [proc.pid for proc in self._pool]

    def reset(self) -> None:
        self.sim = CacheSim(self.cache_config, policy=self.policy)
        self.last_stats = None
        self.last_pipeline_stats = None

    # ----------------------------------------------------- message I/O
    def _broadcast(self, msg: Tuple) -> None:
        for task_q in self._task_qs:
            task_q.put(msg)

    def _handle(self, msg: Tuple) -> None:
        kind = msg[0]
        if kind == "ack":
            self._acks[msg[2]] = self._acks.get(msg[2], 0) + 1
        elif kind == "done":
            self._dones.setdefault(msg[2], {})[msg[1]] = msg[3:]
        elif kind == "error":
            raise SimulationError(
                f"pipeline worker {msg[1]} failed:\n{msg[2]}")

    def _drain(self) -> None:
        while True:
            try:
                self._handle(self._result_q.get_nowait())
            except queue_mod.Empty:
                return

    def _wait(self, ready: Callable[[], bool]) -> float:
        """Block until ``ready()``; returns seconds stalled.

        Polling uses adaptive exponential backoff: sub-millisecond
        reaction while acks are flowing, sleeps capped at the old
        fixed poll interval when the queue runs dry (which still
        bounds how late a dead worker is noticed)."""
        start = time.perf_counter()
        self._drain()
        self._backoff.reset()
        while not ready():
            try:
                self._handle(
                    self._result_q.get(timeout=self._backoff.timeout()))
                self._backoff.reset()
            except queue_mod.Empty:
                dead = [p.pid for p in self._pool if not p.is_alive()]
                if dead:
                    raise SimulationError(
                        f"pipeline workers died: pids {dead}") from None
        return time.perf_counter() - start

    def _segment_acked(self, seq: int) -> bool:
        return self._acks.get(seq, 0) >= self.n_workers

    # ------------------------------------------------------- producing
    def _submit_segment(self, c_addr, c_size, c_write, shard,
                        stats: Dict[str, float]) -> None:
        """Write expanded columns into ring slots (re-chunking to slot
        capacity) and announce them to every worker.

        With autotune on, the chunk size follows the AIMD controller
        (clamped to the mmapped slot capacity) and multi-worker
        chunks are stably sorted by shard so each worker consumes a
        contiguous span (``"sseg"``) instead of rescanning the full
        slot for its mask — the sort is one O(rows) uint8 radix pass
        in the producer that deletes an O(rows) scan from *every*
        worker. Stable sort preserves per-shard (hence per-set)
        program order, so results stay byte-identical."""
        ctrl = self._controller
        total = int(c_addr.size)
        lo = 0
        while lo < total:
            cap = ctrl.rows if ctrl is not None else self.segment_rows
            hi = min(lo + cap, total)
            rows = hi - lo
            seq = self._seq
            slot = seq % self.ring_depth
            stalled = False
            if seq >= self.ring_depth:
                waited = self._wait(
                    lambda s=seq: self._segment_acked(s - self.ring_depth))
                stats["stall_s"] += waited
                stalled = waited > 1e-3
                self._acks.pop(seq - self.ring_depth, None)
            in_flight = sum(
                1 for s in range(max(0, seq - self.ring_depth), seq)
                if not self._segment_acked(s))
            stats["depth_sum"] += in_flight
            stats["depth_max"] = max(stats["depth_max"], in_flight)
            cols = self._views[slot]
            if shard is not None and self.autotune:
                order = np.argsort(shard[lo:hi], kind="stable")
                cols["addr"][:rows] = c_addr[lo:hi][order]
                cols["size"][:rows] = c_size[lo:hi][order]
                cols["is_write"][:rows] = c_write[lo:hi][order]
                offsets = tuple(np.searchsorted(
                    shard[lo:hi][order],
                    np.arange(self.n_workers + 1)).tolist())
                self._broadcast(("sseg", slot, seq, offsets))
            else:
                cols["addr"][:rows] = c_addr[lo:hi]
                cols["size"][:rows] = c_size[lo:hi]
                cols["is_write"][:rows] = c_write[lo:hi]
                if shard is not None:
                    cols["shard"][:rows] = shard[lo:hi]
                self._broadcast(("seg", slot, rows, seq))
            self._seq += 1
            stats["segments"] += 1
            if ctrl is not None:
                ctrl.observe(in_flight / self.ring_depth, stalled)
            self._drain()
            lo = hi

    def _produce_nest(self, segments: Iterator[BatchTrace],
                      bypass: Dict[str, bool], sim_inline,
                      stats: Dict[str, float]) -> None:
        """Stream one nest's segments: bypassed stores through the
        parent WCB, the rest expanded + sharded into the ring (pool
        mode) or simulated in place (inline mode)."""
        cfg = self.cache_config
        for segment in segments:
            if not len(segment):
                continue
            if self.segment_tap is not None:
                self.segment_tap(segment)
            start = time.perf_counter()
            stats["rows"] += len(segment)
            byp_col = _bypass_column(segment, bypass)
            addr, size, is_write = (segment.addr, segment.size,
                                    segment.is_write)
            if byp_col is not None:
                keep = ~byp_col
                self.sim.access_batch(
                    addr[byp_col], size[byp_col], is_write[byp_col],
                    np.ones(int(byp_col.sum()), dtype=bool))
                addr, size, is_write = (addr[keep], size[keep],
                                        is_write[keep])
            if not addr.size:
                stats["producer_s"] += time.perf_counter() - start
                continue
            if sim_inline is not None:
                sim_inline.access_batch(addr, size.astype(np.int64),
                                        is_write)
                stats["expanded_rows"] += int(addr.size)
                stats["segments"] += 1
                stats["producer_s"] += time.perf_counter() - start
                continue
            c_addr, c_size, c_write, _ = expand_to_sectors(
                addr.astype(np.int64), size.astype(np.int64),
                is_write, None, cfg.granule_bytes)
            stats["expanded_rows"] += int(c_addr.size)
            shard = None
            if self.n_workers > 1:
                line = c_addr // cfg.line_bytes
                shard = ((line % cfg.n_sets)
                         % self.n_workers).astype(np.uint8)
            stats["producer_s"] += time.perf_counter() - start
            self._submit_segment(c_addr, c_size, c_write, shard, stats)

    # ---------------------------------------------------------- public
    def _segments_of(self, source: SegmentSource) -> Iterator[BatchTrace]:
        if isinstance(source, KernelModel):
            return source.segments(self.segment_rows)
        if isinstance(source, StoredTrace):
            return source.iter_chunks(self.segment_rows)
        if isinstance(source, BatchTrace):
            return iter_row_slices(source, self.segment_rows)
        return iter(source)

    def run_nest(self, streams: Iterable[StreamDecl],
                 source: SegmentSource,
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 flush_at_end: bool = True) -> TrafficCounters:
        """Execute one loop nest, pipelining generation against
        simulation. ``source`` may be a :class:`KernelModel` (segments
        stream straight from the emitter), a :class:`StoredTrace`
        (chunks stream from disk), a materialized :class:`BatchTrace`
        (row-sliced), or any iterable of :class:`BatchTrace`
        segments."""
        if not flush_at_end:
            raise SimulationError(
                "pipelined simulation requires flush_at_end=True "
                "(shards are only independent between flushed nests)")
        return self._run_pipeline([(streams, source, None)])[0]

    def run_kernel(self, kernel: KernelModel,
                   prefetch: SoftwarePrefetch = SoftwarePrefetch()
                   ) -> TrafficCounters:
        """Convenience: ``run_nest(kernel.streams(), kernel)``."""
        return self.run_nest(kernel.streams(), kernel, prefetch)

    def run_many(self, kernels: Sequence[KernelModel],
                 prefetch: SoftwarePrefetch = SoftwarePrefetch()
                 ) -> List[TrafficCounters]:
        """Run several kernels through the persistent pool, keeping it
        saturated: generation of kernel *k+1* overlaps simulation of
        kernel *k* (per-worker queues are ordered, so nest boundaries
        need no barrier). With ``checkpoint_dir`` set, each completed
        kernel's totals are checkpointed (keyed by kernel fingerprint,
        cache geometry, policy, and bypass resolution) and a re-run
        skips them — a crashed multi-kernel suite resumes where it
        died."""
        return self._run_pipeline(
            [(kernel.streams(), kernel, kernel) for kernel in kernels],
            prefetch)

    # ------------------------------------------------------- internals
    def _ckpt_name(self, kernel: KernelModel,
                   bypass: Dict[str, bool]) -> str:
        payload = json.dumps(
            [kernel_fingerprint(kernel), sorted(bypass.items())],
            separators=(",", ":"))
        return "kernel-" + hashlib.sha256(
            payload.encode()).hexdigest()[:16]

    def _checkpoints(self) -> Optional[_Checkpoints]:
        if self.checkpoint_dir is None:
            return None
        cfg = self.cache_config
        run_key = hashlib.sha256(json.dumps(
            [cfg.capacity_bytes, cfg.line_bytes, cfg.granule_bytes,
             cfg.associativity, self.policy],
            separators=(",", ":")).encode()).hexdigest()[:20]
        return _Checkpoints(self.checkpoint_dir, run_key)

    def _run_pipeline(self, nests,
                      prefetch: SoftwarePrefetch = SoftwarePrefetch()
                      ) -> List[TrafficCounters]:
        """Pipelined execution of ``[(streams, source, kernel), ...]``
        (``kernel`` non-None enables checkpointing for that entry)."""
        ckpt = self._checkpoints()
        self.kernels_resumed = 0
        wall_start = time.perf_counter()
        stats = {"segments": 0, "rows": 0, "expanded_rows": 0,
                 "producer_s": 0.0, "stall_s": 0.0,
                 "depth_sum": 0.0, "depth_max": 0,
                 "hits": 0, "misses": 0, "busy": 0.0}
        results: List[Optional[TrafficCounters]] = [None] * len(nests)
        #: nest_id -> (result index, parent-WCB counters, ckpt name).
        active: Dict[int, Tuple[int, TrafficCounters, Optional[str]]] = {}
        worker_busy = [0.0] * max(1, self.n_workers)
        inline = self.n_workers == 0
        if self.autotune and not inline:
            # Fresh controller per run, seeded with the previous
            # run's converged size so a persistent pool keeps its
            # learned operating point across kernels.
            initial = (self._controller.rows
                       if self._controller is not None
                       else max(self.autotune_config.min_rows,
                                self.segment_rows // 8))
            self._controller = SegmentSizeController(
                self.segment_rows, initial, self.autotune_config)
        else:
            self._controller = None
        try:
            if not inline:
                self._ensure_pool()
            for idx, (streams, source, kernel) in enumerate(nests):
                bypass = _resolve_bypass(streams, prefetch)
                name = None
                if ckpt is not None and kernel is not None:
                    name = self._ckpt_name(kernel, bypass)
                    saved = ckpt.load(name)
                    if saved is not None:
                        results[idx] = TrafficCounters(
                            read_bytes=saved[0], write_bytes=saved[1])
                        stats["hits"] += saved[2]
                        stats["misses"] += saved[3]
                        self.kernels_resumed += 1
                        continue
                nest_id = self._nest_id
                self._nest_id += 1
                sim_inline = None
                if inline:
                    sim_inline = CacheSim(self.cache_config,
                                          policy=self.policy)
                else:
                    self._broadcast(("begin",))
                self._produce_nest(self._segments_of(source), bypass,
                                   sim_inline, stats)
                start = time.perf_counter()
                self.sim.flush()  # drain this nest's parent WCB
                wcb = self.sim.reset_traffic()
                stats["producer_s"] += time.perf_counter() - start
                active[nest_id] = (idx, wcb, name)
                if inline:
                    start = time.perf_counter()
                    sim_inline.flush()
                    self._dones[nest_id] = {0: (
                        sim_inline.traffic.read_bytes,
                        sim_inline.traffic.write_bytes,
                        sim_inline.stats_hits, sim_inline.stats_misses,
                        time.perf_counter() - start,
                        stats["expanded_rows"])}
                else:
                    self._broadcast(("end", nest_id))
                    self._drain()
                # Fold nests the workers already finished so their
                # checkpoints land as early as possible.
                self._fold_finished(active, results, worker_busy,
                                    stats, ckpt)
            if not inline and active:
                pending = set(active)
                stats["stall_s"] += self._wait(lambda: all(
                    len(self._dones.get(nid, {})) >= self.n_workers
                    for nid in pending))
            self._fold_finished(active, results, worker_busy, stats,
                                ckpt)
        except Exception:
            # Workers may hold unconsumed messages for this aborted
            # run; a fresh pool is the only clean state.
            self.close()
            raise
        wall = time.perf_counter() - wall_start
        n_lanes = max(1, self.n_workers)
        self.last_stats = {"hits": int(stats["hits"]),
                           "misses": int(stats["misses"])}
        self.last_pipeline_stats = {
            "mode": "inline" if inline else "pool",
            "n_workers": self.n_workers,
            "segment_rows": self.segment_rows,
            "ring_depth": self.ring_depth,
            "segments": int(stats["segments"]),
            "rows": int(stats["rows"]),
            "expanded_rows": int(stats["expanded_rows"]),
            "wall_s": wall,
            "producer_s": stats["producer_s"],
            "producer_stall_s": stats["stall_s"],
            "worker_busy_s": list(worker_busy),
            "utilization": (stats["busy"] / (n_lanes * wall)
                            if wall > 0 else 0.0),
            "mean_queue_depth": (stats["depth_sum"] / stats["segments"]
                                 if stats["segments"] else 0.0),
            "max_queue_depth": int(stats["depth_max"]),
            "autotune": bool(self.autotune),
            "affinity": bool(self.affinity),
            "worker_cpus": self._worker_cpus,
        }
        ctrl = self._controller
        if ctrl is not None:
            self.last_pipeline_stats.update({
                "target_occupancy": ctrl.target,
                "final_segment_rows": ctrl.rows,
                "mean_ring_occupancy": (
                    stats["depth_sum"]
                    / (stats["segments"] * self.ring_depth)
                    if stats["segments"] else 0.0),
                "tuning_trace": [list(t) for t in ctrl.trace],
            })
        return [r if r is not None else TrafficCounters()
                for r in results]

    def _fold_finished(self, active, results, worker_busy, stats,
                       ckpt) -> None:
        """Fold every fully-reported nest's worker counters into its
        total, checkpoint it, and fire the shard hook."""
        expected = max(1, self.n_workers)
        for nest_id in sorted(list(active)):
            done = self._dones.get(nest_id)
            if done is None or len(done) < expected:
                continue
            idx, wcb, name = active.pop(nest_id)
            del self._dones[nest_id]
            total = TrafficCounters(read_bytes=wcb.read_bytes,
                                    write_bytes=wcb.write_bytes)
            nest_hits = 0
            nest_misses = 0
            for wid in sorted(done):
                r, w, h, m, busy, _rows = done[wid]
                total.read_bytes += r
                total.write_bytes += w
                nest_hits += h
                nest_misses += m
                stats["busy"] += busy
                if wid < len(worker_busy):
                    worker_busy[wid] += busy
            stats["hits"] += nest_hits
            stats["misses"] += nest_misses
            results[idx] = total
            if ckpt is not None and name is not None:
                ckpt.save(name, (total.read_bytes, total.write_bytes,
                                 nest_hits, nest_misses))
            if self.after_shard_hook is not None:
                for wid in sorted(done):
                    self.after_shard_hook(wid)
