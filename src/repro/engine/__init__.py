"""Kernel execution engines: analytic traffic laws, exact cache-level
simulation, and the node executor. See DESIGN.md §3."""

from .analytic import (
    CacheContext,
    cache_fit_fraction,
    combine,
    reused_read,
    sequential_read,
    sequential_write,
    strided_access,
)
from .exact import ExactEngine
from .executor import ExecutionRecord, Executor
from .loopnest import AffineAccess, LoopNest
from .stream import Access, StreamDecl, interleave, resolve_policies
from .trace import KernelModel

__all__ = [
    "Access",
    "AffineAccess",
    "CacheContext",
    "LoopNest",
    "ExactEngine",
    "ExecutionRecord",
    "Executor",
    "KernelModel",
    "StreamDecl",
    "cache_fit_fraction",
    "combine",
    "interleave",
    "resolve_policies",
    "reused_read",
    "sequential_read",
    "sequential_write",
    "strided_access",
]
