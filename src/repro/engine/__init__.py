"""Kernel execution engines: analytic traffic laws, exact cache-level
simulation, and the node executor. See DESIGN.md §3."""

from .analytic import (
    CacheContext,
    cache_fit_fraction,
    combine,
    reused_read,
    sequential_read,
    sequential_write,
    strided_access,
)
from .envconfig import (
    default_chunk_rows,
    default_segment_rows,
    env_n_shards,
)
from .exact import ExactEngine, ShardedExactEngine
from .executor import ExecutionRecord, Executor
from .loopnest import AffineAccess, LoopNest
from .pipeline import PipelinedExactEngine
from .stream import Access, StreamDecl, interleave, resolve_policies
from .trace import KernelModel
from .tracecache import TraceCache, cached_exact_trace
from .tracestore import StoredTrace, TraceStore, kernel_fingerprint

__all__ = [
    "Access",
    "AffineAccess",
    "CacheContext",
    "LoopNest",
    "ExactEngine",
    "ExecutionRecord",
    "Executor",
    "KernelModel",
    "PipelinedExactEngine",
    "ShardedExactEngine",
    "StoredTrace",
    "StreamDecl",
    "TraceCache",
    "TraceStore",
    "cached_exact_trace",
    "default_chunk_rows",
    "default_segment_rows",
    "env_n_shards",
    "kernel_fingerprint",
    "cache_fit_fraction",
    "combine",
    "interleave",
    "resolve_policies",
    "reused_read",
    "sequential_read",
    "sequential_write",
    "strided_access",
]
