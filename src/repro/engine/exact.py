"""Exact engine: drive the sectored cache simulator with a full trace.

Used to *validate* the analytic traffic laws on small problem sizes
(cross-validation tests), and available to users who want ground-truth
traffic for custom access patterns. Policies (store bypass vs
write-allocate) are resolved once per loop nest from the declared
streams — reference kernels are steady-state loops, so the policy the
hardware converges to is constant over the nest.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..machine.cache import CacheSim, TrafficCounters
from ..machine.config import CacheConfig
from ..machine.prefetch import SoftwarePrefetch
from ..machine.store import StorePolicy
from .stream import Access, StreamDecl, resolve_policies


class ExactEngine:
    """Run program-ordered access traces through :class:`CacheSim`."""

    def __init__(self, cache: CacheConfig,
                 capacity_override: Optional[int] = None):
        if capacity_override is not None:
            cache = CacheConfig(
                capacity_bytes=_round_capacity(capacity_override, cache),
                line_bytes=cache.line_bytes,
                granule_bytes=cache.granule_bytes,
                associativity=cache.associativity,
            )
        self.cache_config = cache
        self.sim = CacheSim(cache)

    # ------------------------------------------------------------------
    def run_nest(self, streams: Iterable[StreamDecl],
                 accesses: Iterable[Access],
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 flush_at_end: bool = True) -> TrafficCounters:
        """Execute one loop nest and return its memory traffic.

        ``flush_at_end`` drains dirty data so that deferred write-backs
        are charged to the nest that produced them (the nest counters on
        real hardware eventually see those bytes; the analytic laws
        charge them immediately).
        """
        streams = list(streams)
        policies: Dict[str, StorePolicy] = resolve_policies(streams, prefetch)
        bypass = {name: policy is StorePolicy.BYPASS
                  for name, policy in policies.items()}
        before = (self.sim.traffic.read_bytes, self.sim.traffic.write_bytes)
        for acc in accesses:
            self.sim.access(acc.addr, acc.size, acc.is_write,
                            bypass=bypass.get(acc.stream, False)
                            if acc.is_write else False)
            # Software dcbtst prefetch additionally pulls the store
            # target into cache; the WRITE_ALLOCATE path already models
            # the resulting read, so nothing extra is needed here.
        if flush_at_end:
            self.sim.flush()
        after = self.sim.traffic
        return TrafficCounters(
            read_bytes=after.read_bytes - before[0],
            write_bytes=after.write_bytes - before[1],
        )

    def reset(self) -> None:
        """Drop all cache state and traffic counters."""
        self.sim = CacheSim(self.cache_config)


def _round_capacity(capacity: int, cache: CacheConfig) -> int:
    """Round a capacity override to a valid set-associative geometry."""
    unit = cache.line_bytes * cache.associativity
    rounded = max(unit, (capacity // unit) * unit)
    return rounded
