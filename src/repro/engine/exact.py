"""Exact engine: drive the sectored cache simulator with a full trace.

Used to *validate* the analytic traffic laws (cross-validation tests),
and available to users who want ground-truth traffic for custom access
patterns. Policies (store bypass vs write-allocate) are resolved once
per loop nest from the declared streams — reference kernels are
steady-state loops, so the policy the hardware converges to is constant
over the nest.

Three speed tiers, all bit-identical in traffic (see DESIGN.md §6):

* scalar — :class:`ExactEngine` fed an ``Access`` iterable; one Python
  call per access (the oracle);
* batch — :class:`ExactEngine` fed a :class:`BatchTrace`; columnar
  sector expansion and run-coalesced simulation via
  :meth:`CacheSim.access_batch`;
* sharded — :class:`ShardedExactEngine`; the sector-expanded trace is
  partitioned by set index across worker processes, each simulating its
  slice of sets. Replacement state is per-set and a stable partition
  preserves per-set program order exactly, so summing the per-shard
  :class:`TrafficCounters` reproduces the single-process result.

Both engines additionally accept a
:class:`~repro.engine.tracestore.StoredTrace` — a persistent on-disk
trace — and stream it chunk-by-chunk, so trace size no longer bounds
simulation: ``ExactEngine`` feeds bounded-size column slices through
``access_batch`` (state carries across chunks, so the result is
bit-identical to the one-shot batch call), and ``ShardedExactEngine``
hands each worker the *path* of the shared entry to mmap read-only
instead of pickling columns, checkpointing each completed set-shard so
an interrupted billion-access run resumes instead of restarting (see
DESIGN.md §6.2).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..machine.cache import CacheSim, TrafficCounters, expand_to_sectors
from ..machine.config import CacheConfig
from ..machine.prefetch import SoftwarePrefetch
from ..machine.store import StorePolicy
from .envconfig import default_chunk_rows, env_n_shards, positive_int
from .stream import BatchTrace, StreamDecl, TraceLike, resolve_policies
from .tracestore import StoredTrace

#: What the engines accept as a trace, disk tier included.
AnyTrace = Union[TraceLike, StoredTrace]


def _resolve_bypass(streams, prefetch) -> Dict[str, bool]:
    policies = resolve_policies(list(streams), prefetch)
    return {name: policy is StorePolicy.BYPASS
            for name, policy in policies.items()}


def _bypass_column(trace: BatchTrace,
                   bypass: Dict[str, bool]) -> Optional[np.ndarray]:
    """Per-row bypass flags for a batch trace; ``None`` when no stream
    bypasses (lets the simulator skip the gather entirely)."""
    per_stream = np.array(
        [bypass.get(name, False) for name in trace.streams], dtype=bool)
    if not per_stream.any():
        return None
    return per_stream[trace.stream_id] & trace.is_write


class ExactEngine:
    """Run program-ordered access traces through :class:`CacheSim`.

    ``run_nest`` accepts either an iterable of :class:`Access` objects
    (scalar oracle path) or a :class:`BatchTrace` (columnar fast path);
    both produce identical traffic.
    """

    def __init__(self, cache: CacheConfig,
                 capacity_override: Optional[int] = None):
        if capacity_override is not None:
            cache = CacheConfig(
                capacity_bytes=_round_capacity(capacity_override, cache),
                line_bytes=cache.line_bytes,
                granule_bytes=cache.granule_bytes,
                associativity=cache.associativity,
            )
        self.cache_config = cache
        self.sim = CacheSim(cache)

    # ------------------------------------------------------------------
    def run_nest(self, streams: Iterable[StreamDecl],
                 accesses: AnyTrace,
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 flush_at_end: bool = True,
                 chunk_rows: Optional[int] = None) -> TrafficCounters:
        """Execute one loop nest and return its memory traffic.

        ``flush_at_end`` drains dirty data so that deferred write-backs
        are charged to the nest that produced them (the nest counters on
        real hardware eventually see those bytes; the analytic laws
        charge them immediately). A :class:`StoredTrace` is streamed in
        ``chunk_rows``-row slices (default: ``REPRO_CHUNK_ROWS`` or the
        built-in) — simulator state carries across ``access_batch``
        calls, so the traffic is bit-identical to the in-RAM batch path
        while peak RSS stays bounded by a few chunks.
        """
        chunk_rows = (default_chunk_rows() if chunk_rows is None
                      else positive_int(chunk_rows, "chunk_rows"))
        bypass = _resolve_bypass(streams, prefetch)
        before = (self.sim.traffic.read_bytes, self.sim.traffic.write_bytes)
        if isinstance(accesses, StoredTrace):
            for chunk in accesses.iter_chunks(chunk_rows):
                if len(chunk):
                    self.sim.access_batch(
                        chunk.addr, chunk.size, chunk.is_write,
                        _bypass_column(chunk, bypass))
        elif isinstance(accesses, BatchTrace):
            if len(accesses):
                self.sim.access_batch(
                    accesses.addr, accesses.size, accesses.is_write,
                    _bypass_column(accesses, bypass))
        else:
            for acc in accesses:
                self.sim.access(acc.addr, acc.size, acc.is_write,
                                bypass=bypass.get(acc.stream, False)
                                if acc.is_write else False)
                # Software dcbtst prefetch additionally pulls the store
                # target into cache; the WRITE_ALLOCATE path already
                # models the resulting read, so nothing extra is needed.
        if flush_at_end:
            self.sim.flush()
        after = self.sim.traffic
        return TrafficCounters(
            read_bytes=after.read_bytes - before[0],
            write_bytes=after.write_bytes - before[1],
        )

    def reset(self) -> None:
        """Drop all cache state and traffic counters."""
        self.sim = CacheSim(self.cache_config)


# ----------------------------------------------------------------------
# set-sharded parallel simulation
# ----------------------------------------------------------------------
def _simulate_shard(config: CacheConfig, policy: str,
                    addr: np.ndarray, size: np.ndarray,
                    is_write: np.ndarray) -> Tuple[int, int, int, int]:
    """Worker: simulate one shard's subsequence of the trace and flush.

    Each worker builds a full-geometry simulator; only the sets in its
    shard ever receive accesses, so memory cost is bounded by the
    shard's resident lines.
    """
    sim = CacheSim(config, policy=policy)
    sim.access_batch(addr, size, is_write)
    sim.flush()
    return (sim.traffic.read_bytes, sim.traffic.write_bytes,
            sim.stats_hits, sim.stats_misses)


def _simulate_stored_shard(entry_path: str, shard: int, n_shards: int,
                           config: CacheConfig, policy: str,
                           bypass_flags: Tuple[bool, ...],
                           chunk_rows: int) -> Tuple[int, int, int, int]:
    """Worker: stream one set-shard's subsequence from the shared
    on-disk trace.

    The worker mmaps the entry's columns read-only (``verify="meta"``
    — the parent full-verified the entry when it opened it), drops
    bypassed stores (the parent's write-combining buffer owns those),
    sector-expands each chunk, and simulates the rows whose set lands
    in this shard. Chunking does not change results — simulator state
    carries across ``access_batch`` calls — so this is bit-identical
    to the in-RAM sharded path while sharing the trace between
    workers through the page cache instead of pickled columns.
    """
    trace = StoredTrace.open(entry_path, verify="meta")
    sim = CacheSim(config, policy=policy)
    per_stream = np.array(bypass_flags, dtype=bool)
    drop_bypassed = bool(per_stream.any())
    try:
        for chunk in trace.iter_chunks(chunk_rows):
            addr = np.ascontiguousarray(chunk.addr, np.int64)
            size = np.ascontiguousarray(chunk.size, np.int64)
            is_write = np.ascontiguousarray(chunk.is_write, bool)
            if drop_bypassed:
                keep = ~(per_stream[chunk.stream_id] & is_write)
                addr, size, is_write = \
                    addr[keep], size[keep], is_write[keep]
            if not addr.size:
                continue
            c_addr, c_size, c_write, _ = expand_to_sectors(
                addr, size, is_write, None, config.granule_bytes)
            line = c_addr // config.line_bytes
            mask = (line % config.n_sets) % n_shards == shard
            if mask.any():
                sim.access_batch(c_addr[mask], c_size[mask], c_write[mask])
    finally:
        trace.close()
    sim.flush()
    return (sim.traffic.read_bytes, sim.traffic.write_bytes,
            sim.stats_hits, sim.stats_misses)


class _Checkpoints:
    """Atomic per-shard checkpoint files for one resumable run.

    Layout: ``<dir>/<run_key>/shard-<i>.json`` (plus ``wcb.json`` for
    the parent's write-combining pass). Files are written via
    temp + ``os.replace`` so a kill mid-write leaves either the old
    state or the new one, never a torn file; any unreadable or
    mismatched checkpoint is ignored (that shard is recomputed).
    """

    FIELDS = ("read_bytes", "write_bytes", "hits", "misses")

    def __init__(self, root, run_key: str):
        self.dir = Path(root) / run_key
        self.run_key = run_key
        self.dir.mkdir(parents=True, exist_ok=True)

    def load(self, name: str) -> Optional[Tuple[int, int, int, int]]:
        path = self.dir / f"{name}.json"
        try:
            data = json.loads(path.read_text())
            if data.get("run_key") != self.run_key:
                return None
            values = tuple(data[f] for f in self.FIELDS)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not all(isinstance(v, int) and v >= 0 for v in values):
            return None
        return values  # type: ignore[return-value]

    def save(self, name: str, values: Tuple[int, int, int, int]) -> None:
        payload = {"run_key": self.run_key}
        payload.update(zip(self.FIELDS, (int(v) for v in values)))
        tmp = self.dir / f".{name}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.dir / f"{name}.json")


class ShardedExactEngine:
    """Exact simulation parallelized across L3-slice shard processes.

    Correctness argument: replacement and residency state of a
    set-associative cache is independent per set, and every sector-size
    chunk of an access maps to exactly one set. Partitioning the
    sector-expanded trace by ``set_index % n_shards`` with a *stable*
    partition preserves each set's access subsequence in program order,
    so every shard simulates its sets exactly as the single-process
    engine would, and the per-shard traffic/hit/miss counters sum to
    the single-process totals. Bypassed stores never touch cache sets
    (they go through the write-combining buffer, a global FIFO whose
    order a set partition would *not* preserve) — they are therefore
    simulated in the parent, exactly.

    Because each nest ends in a flush (write-backs charged to the nest
    that dirtied the data), shards are independent per nest;
    ``flush_at_end=False`` is rejected.
    """

    def __init__(self, cache: CacheConfig, n_shards: Optional[int] = None,
                 capacity_override: Optional[int] = None,
                 policy: str = "lru",
                 checkpoint_dir=None):
        if capacity_override is not None:
            cache = CacheConfig(
                capacity_bytes=_round_capacity(capacity_override, cache),
                line_bytes=cache.line_bytes,
                granule_bytes=cache.granule_bytes,
                associativity=cache.associativity,
            )
        self.cache_config = cache
        self.policy = policy
        if n_shards is None:
            # Explicit constructor value wins, then REPRO_N_SHARDS,
            # then one shard per core (capped at 8 — the point of
            # diminishing returns for per-shard pool overhead; the env
            # var and constructor lift that cap).
            n_shards = env_n_shards()
            if n_shards is None:
                n_shards = max(1, min(8, os.cpu_count() or 1))
        else:
            positive_int(n_shards, "n_shards")
        self.n_shards = max(1, min(int(n_shards), cache.n_sets))
        # The write-combining buffer lives in the parent simulator.
        self.sim = CacheSim(cache, policy=policy)
        self.last_stats: Optional[Dict[str, int]] = None
        #: Directory for per-set-shard checkpoints of StoredTrace runs
        #: (None disables resumability).
        self.checkpoint_dir = checkpoint_dir
        #: Test/fault-injection hook: called with the shard index after
        #: each shard's result is checkpointed and accumulated.
        self.after_shard_hook: Optional[Callable[[int], None]] = None
        #: How many shards the last StoredTrace run restored from
        #: checkpoints instead of recomputing.
        self.shards_resumed = 0

    def run_nest(self, streams: Iterable[StreamDecl],
                 accesses: AnyTrace,
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 flush_at_end: bool = True,
                 chunk_rows: Optional[int] = None) -> TrafficCounters:
        """Execute one loop nest sharded across worker processes."""
        chunk_rows = (default_chunk_rows() if chunk_rows is None
                      else positive_int(chunk_rows, "chunk_rows"))
        if not isinstance(accesses, (BatchTrace, StoredTrace)):
            raise SimulationError(
                "ShardedExactEngine requires a BatchTrace or StoredTrace; "
                "build one via kernel.exact_trace(), "
                "BatchTrace.from_accesses(), or TraceStore.get_or_create()")
        if not flush_at_end:
            raise SimulationError(
                "sharded simulation requires flush_at_end=True (shards "
                "are only independent between flushed nests)")
        if isinstance(accesses, StoredTrace):
            return self._run_stored(streams, accesses, prefetch, chunk_rows)
        trace = accesses
        bypass = _resolve_bypass(streams, prefetch)
        total = TrafficCounters()
        hits = 0
        misses = 0
        if len(trace) == 0:
            self.last_stats = {"hits": 0, "misses": 0}
            return total

        byp_col = _bypass_column(trace, bypass)
        addr, size, is_write = trace.addr, trace.size, trace.is_write
        if byp_col is not None:
            keep = ~byp_col
            self.sim.access_batch(addr[byp_col], size[byp_col],
                                  is_write[byp_col],
                                  np.ones(int(byp_col.sum()), dtype=bool))
            addr, size, is_write = addr[keep], size[keep], is_write[keep]
        self.sim.flush()  # drain the parent WCB
        total.add(self.sim.reset_traffic())

        if addr.size:
            c_addr, c_size, c_write, _ = expand_to_sectors(
                addr.astype(np.int64), size.astype(np.int64),
                is_write, None, self.cache_config.granule_bytes)
            line = c_addr // self.cache_config.line_bytes
            shard_of = (line % self.cache_config.n_sets) % self.n_shards
            parts = []
            for shard in range(self.n_shards):
                mask = shard_of == shard  # boolean mask: stable partition
                if mask.any():
                    parts.append((c_addr[mask], c_size[mask], c_write[mask]))
            for r, w, h, m in self._map_shards(parts):
                total.read_bytes += r
                total.write_bytes += w
                hits += h
                misses += m
        self.last_stats = {"hits": hits, "misses": misses}
        return total

    # ------------------------------------------------------------------
    # streamed-from-disk sharding with per-shard checkpoints
    # ------------------------------------------------------------------
    def _run_key(self, trace: StoredTrace,
                 per_stream: np.ndarray) -> str:
        """Identity of one resumable run: trace content + cache
        geometry + policy + shard count + store-bypass resolution.
        Checkpoints only apply to the exact run they were cut from."""
        cfg = self.cache_config
        payload = json.dumps(
            [trace.content_digest, cfg.capacity_bytes, cfg.line_bytes,
             cfg.granule_bytes, cfg.associativity, self.policy,
             self.n_shards, per_stream.astype(int).tolist()],
            separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:20]

    def _run_stored(self, streams: Iterable[StreamDecl],
                    trace: StoredTrace, prefetch: SoftwarePrefetch,
                    chunk_rows: int) -> TrafficCounters:
        bypass = _resolve_bypass(streams, prefetch)
        per_stream = np.array(
            [bypass.get(name, False) for name in trace.streams], dtype=bool)
        ckpt = None
        if self.checkpoint_dir is not None:
            ckpt = _Checkpoints(self.checkpoint_dir,
                                self._run_key(trace, per_stream))
        total = TrafficCounters()
        hits = 0
        misses = 0
        if len(trace) == 0:
            self.last_stats = {"hits": 0, "misses": 0}
            return total

        # Parent pass: bypassed stores through the global write-
        # combining buffer (a FIFO a set partition would not preserve).
        if per_stream.any():
            wcb = ckpt.load("wcb") if ckpt else None
            if wcb is None:
                for chunk in trace.iter_chunks(chunk_rows):
                    col = per_stream[chunk.stream_id] & chunk.is_write
                    idx = np.flatnonzero(col)
                    if idx.size:
                        self.sim.access_batch(
                            chunk.addr[idx], chunk.size[idx],
                            chunk.is_write[idx],
                            np.ones(idx.size, dtype=bool))
                self.sim.flush()
                counters = self.sim.reset_traffic()
                wcb = (counters.read_bytes, counters.write_bytes, 0, 0)
                if ckpt:
                    ckpt.save("wcb", wcb)
            total.read_bytes += wcb[0]
            total.write_bytes += wcb[1]

        # Set-shards: resume completed ones from checkpoints, stream
        # the rest from the shared on-disk entry in worker processes.
        results: Dict[int, Tuple[int, int, int, int]] = {}
        pending: List[int] = []
        for shard in range(self.n_shards):
            done = ckpt.load(f"shard-{shard}") if ckpt else None
            if done is not None:
                results[shard] = done
            else:
                pending.append(shard)
        self.shards_resumed = self.n_shards - len(pending)
        for shard, values in self._map_stored_shards(
                trace, pending, per_stream, chunk_rows):
            results[shard] = values
            if ckpt:
                ckpt.save(f"shard-{shard}", values)
            if self.after_shard_hook is not None:
                self.after_shard_hook(shard)
        for shard in range(self.n_shards):
            r, w, h, m = results[shard]
            total.read_bytes += r
            total.write_bytes += w
            hits += h
            misses += m
        self.last_stats = {"hits": hits, "misses": misses}
        return total

    def _map_stored_shards(self, trace: StoredTrace, pending: List[int],
                           per_stream: np.ndarray, chunk_rows: int):
        if not pending:
            return
        args = [(str(trace.path), shard, self.n_shards, self.cache_config,
                 self.policy, tuple(bool(b) for b in per_stream),
                 chunk_rows) for shard in pending]
        if len(pending) == 1:
            yield pending[0], _simulate_stored_shard(*args[0])
            return
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        workers = min(len(pending), max(1, os.cpu_count() or 1))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = {
                shard: pool.submit(_simulate_stored_shard, *arg)
                for shard, arg in zip(pending, args)
            }
            for shard, future in futures.items():
                yield shard, future.result()

    def _map_shards(self, parts: List[Tuple[np.ndarray, ...]]):
        if len(parts) <= 1:
            for a, s, w in parts:
                yield _simulate_shard(self.cache_config, self.policy, a, s, w)
            return
        # fork keeps the shard columns copy-on-write on POSIX; spawn is
        # the portable fallback (repro is importable in children via the
        # inherited PYTHONPATH/installed package).
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with ProcessPoolExecutor(max_workers=len(parts),
                                 mp_context=ctx) as pool:
            futures = [
                pool.submit(_simulate_shard, self.cache_config, self.policy,
                            a, s, w)
                for a, s, w in parts
            ]
            for future in futures:
                yield future.result()

    def reset(self) -> None:
        self.sim = CacheSim(self.cache_config, policy=self.policy)
        self.last_stats = None


def _round_capacity(capacity: int, cache: CacheConfig) -> int:
    """Round a capacity override to a valid set-associative geometry."""
    unit = cache.line_bytes * cache.associativity
    rounded = max(unit, (capacity // unit) * unit)
    return rounded
