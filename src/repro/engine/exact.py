"""Exact engine: drive the sectored cache simulator with a full trace.

Used to *validate* the analytic traffic laws (cross-validation tests),
and available to users who want ground-truth traffic for custom access
patterns. Policies (store bypass vs write-allocate) are resolved once
per loop nest from the declared streams — reference kernels are
steady-state loops, so the policy the hardware converges to is constant
over the nest.

Three speed tiers, all bit-identical in traffic (see DESIGN.md §6):

* scalar — :class:`ExactEngine` fed an ``Access`` iterable; one Python
  call per access (the oracle);
* batch — :class:`ExactEngine` fed a :class:`BatchTrace`; columnar
  sector expansion and run-coalesced simulation via
  :meth:`CacheSim.access_batch`;
* sharded — :class:`ShardedExactEngine`; the sector-expanded trace is
  partitioned by set index across worker processes, each simulating its
  slice of sets. Replacement state is per-set and a stable partition
  preserves per-set program order exactly, so summing the per-shard
  :class:`TrafficCounters` reproduces the single-process result.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..machine.cache import CacheSim, TrafficCounters, expand_to_sectors
from ..machine.config import CacheConfig
from ..machine.prefetch import SoftwarePrefetch
from ..machine.store import StorePolicy
from .stream import BatchTrace, StreamDecl, TraceLike, resolve_policies


def _resolve_bypass(streams, prefetch) -> Dict[str, bool]:
    policies = resolve_policies(list(streams), prefetch)
    return {name: policy is StorePolicy.BYPASS
            for name, policy in policies.items()}


def _bypass_column(trace: BatchTrace,
                   bypass: Dict[str, bool]) -> Optional[np.ndarray]:
    """Per-row bypass flags for a batch trace; ``None`` when no stream
    bypasses (lets the simulator skip the gather entirely)."""
    per_stream = np.array(
        [bypass.get(name, False) for name in trace.streams], dtype=bool)
    if not per_stream.any():
        return None
    return per_stream[trace.stream_id] & trace.is_write


class ExactEngine:
    """Run program-ordered access traces through :class:`CacheSim`.

    ``run_nest`` accepts either an iterable of :class:`Access` objects
    (scalar oracle path) or a :class:`BatchTrace` (columnar fast path);
    both produce identical traffic.
    """

    def __init__(self, cache: CacheConfig,
                 capacity_override: Optional[int] = None):
        if capacity_override is not None:
            cache = CacheConfig(
                capacity_bytes=_round_capacity(capacity_override, cache),
                line_bytes=cache.line_bytes,
                granule_bytes=cache.granule_bytes,
                associativity=cache.associativity,
            )
        self.cache_config = cache
        self.sim = CacheSim(cache)

    # ------------------------------------------------------------------
    def run_nest(self, streams: Iterable[StreamDecl],
                 accesses: TraceLike,
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 flush_at_end: bool = True) -> TrafficCounters:
        """Execute one loop nest and return its memory traffic.

        ``flush_at_end`` drains dirty data so that deferred write-backs
        are charged to the nest that produced them (the nest counters on
        real hardware eventually see those bytes; the analytic laws
        charge them immediately).
        """
        bypass = _resolve_bypass(streams, prefetch)
        before = (self.sim.traffic.read_bytes, self.sim.traffic.write_bytes)
        if isinstance(accesses, BatchTrace):
            if len(accesses):
                self.sim.access_batch(
                    accesses.addr, accesses.size, accesses.is_write,
                    _bypass_column(accesses, bypass))
        else:
            for acc in accesses:
                self.sim.access(acc.addr, acc.size, acc.is_write,
                                bypass=bypass.get(acc.stream, False)
                                if acc.is_write else False)
                # Software dcbtst prefetch additionally pulls the store
                # target into cache; the WRITE_ALLOCATE path already
                # models the resulting read, so nothing extra is needed.
        if flush_at_end:
            self.sim.flush()
        after = self.sim.traffic
        return TrafficCounters(
            read_bytes=after.read_bytes - before[0],
            write_bytes=after.write_bytes - before[1],
        )

    def reset(self) -> None:
        """Drop all cache state and traffic counters."""
        self.sim = CacheSim(self.cache_config)


# ----------------------------------------------------------------------
# set-sharded parallel simulation
# ----------------------------------------------------------------------
def _simulate_shard(config: CacheConfig, policy: str,
                    addr: np.ndarray, size: np.ndarray,
                    is_write: np.ndarray) -> Tuple[int, int, int, int]:
    """Worker: simulate one shard's subsequence of the trace and flush.

    Each worker builds a full-geometry simulator; only the sets in its
    shard ever receive accesses, so memory cost is bounded by the
    shard's resident lines.
    """
    sim = CacheSim(config, policy=policy)
    sim.access_batch(addr, size, is_write)
    sim.flush()
    return (sim.traffic.read_bytes, sim.traffic.write_bytes,
            sim.stats_hits, sim.stats_misses)


class ShardedExactEngine:
    """Exact simulation parallelized across L3-slice shard processes.

    Correctness argument: replacement and residency state of a
    set-associative cache is independent per set, and every sector-size
    chunk of an access maps to exactly one set. Partitioning the
    sector-expanded trace by ``set_index % n_shards`` with a *stable*
    partition preserves each set's access subsequence in program order,
    so every shard simulates its sets exactly as the single-process
    engine would, and the per-shard traffic/hit/miss counters sum to
    the single-process totals. Bypassed stores never touch cache sets
    (they go through the write-combining buffer, a global FIFO whose
    order a set partition would *not* preserve) — they are therefore
    simulated in the parent, exactly.

    Because each nest ends in a flush (write-backs charged to the nest
    that dirtied the data), shards are independent per nest;
    ``flush_at_end=False`` is rejected.
    """

    def __init__(self, cache: CacheConfig, n_shards: Optional[int] = None,
                 capacity_override: Optional[int] = None,
                 policy: str = "lru"):
        if capacity_override is not None:
            cache = CacheConfig(
                capacity_bytes=_round_capacity(capacity_override, cache),
                line_bytes=cache.line_bytes,
                granule_bytes=cache.granule_bytes,
                associativity=cache.associativity,
            )
        self.cache_config = cache
        self.policy = policy
        if n_shards is None:
            n_shards = max(1, min(8, os.cpu_count() or 1))
        self.n_shards = max(1, min(n_shards, cache.n_sets))
        # The write-combining buffer lives in the parent simulator.
        self.sim = CacheSim(cache, policy=policy)
        self.last_stats: Optional[Dict[str, int]] = None

    def run_nest(self, streams: Iterable[StreamDecl],
                 accesses: TraceLike,
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 flush_at_end: bool = True) -> TrafficCounters:
        """Execute one loop nest sharded across worker processes."""
        if not isinstance(accesses, BatchTrace):
            raise SimulationError(
                "ShardedExactEngine requires a BatchTrace; build one via "
                "kernel.exact_trace() or BatchTrace.from_accesses()")
        if not flush_at_end:
            raise SimulationError(
                "sharded simulation requires flush_at_end=True (shards "
                "are only independent between flushed nests)")
        trace = accesses
        bypass = _resolve_bypass(streams, prefetch)
        total = TrafficCounters()
        hits = 0
        misses = 0
        if len(trace) == 0:
            self.last_stats = {"hits": 0, "misses": 0}
            return total

        byp_col = _bypass_column(trace, bypass)
        addr, size, is_write = trace.addr, trace.size, trace.is_write
        if byp_col is not None:
            keep = ~byp_col
            self.sim.access_batch(addr[byp_col], size[byp_col],
                                  is_write[byp_col],
                                  np.ones(int(byp_col.sum()), dtype=bool))
            addr, size, is_write = addr[keep], size[keep], is_write[keep]
        self.sim.flush()  # drain the parent WCB
        total.add(self.sim.reset_traffic())

        if addr.size:
            c_addr, c_size, c_write, _ = expand_to_sectors(
                addr.astype(np.int64), size.astype(np.int64),
                is_write, None, self.cache_config.granule_bytes)
            line = c_addr // self.cache_config.line_bytes
            shard_of = (line % self.cache_config.n_sets) % self.n_shards
            parts = []
            for shard in range(self.n_shards):
                mask = shard_of == shard  # boolean mask: stable partition
                if mask.any():
                    parts.append((c_addr[mask], c_size[mask], c_write[mask]))
            for r, w, h, m in self._map_shards(parts):
                total.read_bytes += r
                total.write_bytes += w
                hits += h
                misses += m
        self.last_stats = {"hits": hits, "misses": misses}
        return total

    def _map_shards(self, parts: List[Tuple[np.ndarray, ...]]):
        if len(parts) <= 1:
            for a, s, w in parts:
                yield _simulate_shard(self.cache_config, self.policy, a, s, w)
            return
        # fork keeps the shard columns copy-on-write on POSIX; spawn is
        # the portable fallback (repro is importable in children via the
        # inherited PYTHONPATH/installed package).
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with ProcessPoolExecutor(max_workers=len(parts),
                                 mp_context=ctx) as pool:
            futures = [
                pool.submit(_simulate_shard, self.cache_config, self.policy,
                            a, s, w)
                for a, s, w in parts
            ]
            for future in futures:
                yield future.result()

    def reset(self) -> None:
        self.sim = CacheSim(self.cache_config, policy=self.policy)
        self.last_stats = None


def _round_capacity(capacity: int, cache: CacheConfig) -> int:
    """Round a capacity override to a valid set-associative geometry."""
    unit = cache.line_bytes * cache.associativity
    rounded = max(unit, (capacity // unit) * unit)
    return rounded
