"""Size-bounded LRU memoization of kernel batch traces.

Cross-validation and benchmarking repeatedly simulate the *same*
kernel instance under several engines (scalar vs batch vs sharded) or
several cache configurations; regenerating a multi-million-row
:class:`~repro.engine.stream.BatchTrace` each time wastes more time
than the simulation itself for the vectorized emitters. This cache
keys on the kernel's identity + ``name`` (kernel names encode the
problem shape, e.g. ``"gemm-n256"``). Traces are **independent of the
cache configuration** — they are pure address streams; only the
simulator interprets them against a geometry — so one cached trace
serves every configuration the engines sweep over.

The cache is bounded both in entries and in total column bytes;
oversized traces are returned uncached rather than evicting the whole
working set.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

from .stream import BatchTrace
from .trace import KernelModel

#: Default bounds: a handful of kernel instances, capped well below
#: the memory a single large trace costs to simulate anyway.
DEFAULT_MAX_ENTRIES = 12
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class TraceCache:
    """LRU cache of :meth:`KernelModel.exact_trace` results."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, BatchTrace]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(kernel: KernelModel) -> Tuple:
        cls = type(kernel)
        return (cls.__module__, cls.__qualname__, kernel.name)

    def get(self, kernel: KernelModel) -> BatchTrace:
        """Return the kernel's batch trace, generating it on miss.

        Callers must treat the returned trace as immutable — it is
        shared between all users of the same kernel instance shape.
        """
        key = self._key(kernel)
        with self._lock:
            trace = self._entries.get(key)
            if trace is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return trace
            self.misses += 1
        trace = kernel.exact_trace()
        if trace.nbytes > self.max_bytes:
            return trace  # too large to be worth caching
        with self._lock:
            if key not in self._entries:
                self._entries[key] = trace
                self._bytes += trace.nbytes
                while (len(self._entries) > self.max_entries
                       or self._bytes > self.max_bytes):
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= evicted.nbytes
        return trace

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
            }


#: Process-wide cache used by :func:`cached_exact_trace`.
GLOBAL_TRACE_CACHE = TraceCache()


def cached_exact_trace(kernel: KernelModel) -> BatchTrace:
    """Memoized :meth:`KernelModel.exact_trace` via the global cache."""
    return GLOBAL_TRACE_CACHE.get(kernel)
