"""Size-bounded LRU memoization of kernel batch traces, with an
optional disk tier.

Cross-validation and benchmarking repeatedly simulate the *same*
kernel instance under several engines (scalar vs batch vs sharded) or
several cache configurations; regenerating a multi-million-row
:class:`~repro.engine.stream.BatchTrace` each time wastes more time
than the simulation itself for the vectorized emitters. Traces are
**independent of the cache configuration** — they are pure address
streams; only the simulator interprets them against a geometry — so
one cached trace serves every configuration the engines sweep over.

Keys are content fingerprints (kernel class + name + shape/seed
parameters + emitter version, :func:`~repro.engine.tracestore.
kernel_fingerprint`), so two kernel instances alias only when their
traces are provably identical — same-named kernels with different
shapes never collide.

Tiering: RAM hit → disk hit (mmap-load from the
:class:`~repro.engine.tracestore.TraceStore`, zero copy) → generate,
then persist to disk (when a store is attached) and promote into RAM.
The RAM tier is bounded both in entries and in total column bytes;
oversized traces are returned uncached rather than evicting the whole
working set. The global cache attaches a disk tier automatically when
``REPRO_TRACE_DIR`` is set.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .stream import BatchTrace
from .trace import KernelModel
from .tracestore import TRACE_DIR_ENV, TraceStore, kernel_fingerprint

#: Default bounds: a handful of kernel instances, capped well below
#: the memory a single large trace costs to simulate anyway.
DEFAULT_MAX_ENTRIES = 12
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Sentinel: resolve the disk tier lazily from ``REPRO_TRACE_DIR``.
FROM_ENV = "env"


class TraceCache:
    """LRU cache of :meth:`KernelModel.exact_trace` results.

    ``store`` attaches a disk tier: a :class:`TraceStore`, ``None``
    (RAM only), or :data:`FROM_ENV` to consult ``REPRO_TRACE_DIR`` on
    every miss (the global cache's mode, so tests and CLI runs can
    flip the knob without rebuilding the cache).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 store=None):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._store = store
        self._env_stores: Dict[str, TraceStore] = {}
        self._entries: "OrderedDict[Tuple, BatchTrace]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    @staticmethod
    def _key(kernel: KernelModel) -> Tuple:
        # Content fingerprint, not (module, qualname, name): two
        # same-named kernels with different shape/seed parameters
        # must never alias (regression-tested in test_tracestore.py).
        return (kernel.name, kernel_fingerprint(kernel))

    def _disk(self) -> Optional[TraceStore]:
        store = self._store
        if store is None or isinstance(store, TraceStore):
            return store
        root = os.environ.get(TRACE_DIR_ENV)
        if not root:
            return None
        cached = self._env_stores.get(root)
        if cached is None:
            cached = self._env_stores[root] = TraceStore(root)
        return cached

    def get(self, kernel: KernelModel) -> BatchTrace:
        """Return the kernel's batch trace, generating it on miss.

        Callers must treat the returned trace as immutable — it is
        shared between all users of the same kernel instance shape
        (and, via the disk tier, between processes).
        """
        key = self._key(kernel)
        with self._lock:
            trace = self._entries.get(key)
            if trace is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return trace
            self.misses += 1
        store = self._disk()
        trace = None
        if store is not None:
            was_stored = store.contains(kernel)
            entry = store.get_or_create(kernel)
            if was_stored:
                with self._lock:
                    self.disk_hits += 1
            trace = entry.load()  # mmap-backed, zero copy
        if trace is None:
            trace = kernel.exact_trace()
        if trace.nbytes > self.max_bytes:
            return trace  # too large to be worth caching in RAM
        with self._lock:
            if key not in self._entries:
                self._entries[key] = trace
                self._bytes += trace.nbytes
                while (len(self._entries) > self.max_entries
                       or self._bytes > self.max_bytes):
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= evicted.nbytes
        return trace

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
            }


#: Process-wide cache used by :func:`cached_exact_trace`; gains a disk
#: tier whenever ``REPRO_TRACE_DIR`` is set in the environment.
GLOBAL_TRACE_CACHE = TraceCache(store=FROM_ENV)


def cached_exact_trace(kernel: KernelModel) -> BatchTrace:
    """Memoized :meth:`KernelModel.exact_trace` via the global cache."""
    return GLOBAL_TRACE_CACHE.get(kernel)
