"""Fast analytic traffic laws (line-granularity reasoning).

The figures in the paper sweep problem sizes far beyond what an exact
per-access simulation can cover in reasonable time, so each kernel's
memory traffic is computed from closed-form laws built out of the
primitives in this module. The primitives encode exactly the reasoning
the paper applies in §II-§IV:

* sequential streams move ``ceil(bytes/64)·64`` bytes;
* a store stream pays an extra read-per-write unless it bypasses the
  cache (:class:`~repro.machine.store.StorePolicy`);
* a strided stream whose working set no longer fits in the available
  cache fetches one full 64 B granule per element (the ×4 amplification
  of Eq. 7 for 16 B elements);
* a reused working set that spills past the core's local L3 slice into
  re-appropriated remote slices incurs gradual extra traffic
  (:meth:`~repro.machine.hierarchy.L3Topology.spill_extra_read_fraction`).

Every law is validated against the exact engine on small sizes in
``tests/test_engine_crossval.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..machine.cache import TrafficCounters
from ..machine.config import CacheConfig
from ..machine.store import StorePolicy
from ..units import round_up


@dataclasses.dataclass(frozen=True)
class CacheContext:
    """Cache resources visible to the core running the kernel."""

    #: Bytes of L3 effectively available to this core (local share plus
    #: any re-appropriated idle slices).
    capacity_bytes: int
    #: Memory transaction granule (64 B on POWER9).
    granule: int = 64
    #: Cache line size (128 B on POWER9).
    line_bytes: int = 128
    #: Extra read traffic fraction from remote-slice spill (see
    #: L3Topology.spill_extra_read_fraction), applied to reused data.
    spill_extra_fraction: float = 0.0

    @classmethod
    def from_cache_config(cls, cfg: CacheConfig,
                          capacity: Optional[int] = None,
                          spill: float = 0.0) -> "CacheContext":
        return cls(
            capacity_bytes=capacity if capacity is not None else cfg.capacity_bytes,
            granule=cfg.granule_bytes,
            line_bytes=cfg.line_bytes,
            spill_extra_fraction=spill,
        )


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def sequential_read(nbytes: int, ctx: CacheContext) -> TrafficCounters:
    """Cold sequential read of ``nbytes`` distinct bytes."""
    return TrafficCounters(read_bytes=round_up(nbytes, ctx.granule))


def sequential_write(nbytes: int, ctx: CacheContext,
                     policy: StorePolicy) -> TrafficCounters:
    """Sequential store of ``nbytes`` distinct bytes.

    Under WRITE_ALLOCATE the hardware performs a read-for-ownership of
    every granule before dirtying it — the "read per write" the paper
    measures for GEMM's C matrix; under BYPASS the stores stream to
    memory with no read.
    """
    rounded = round_up(nbytes, ctx.granule)
    read = rounded if policy is StorePolicy.WRITE_ALLOCATE else 0
    return TrafficCounters(read_bytes=read, write_bytes=rounded)


def strided_access(n_accesses: int, elem_bytes: int, ctx: CacheContext,
                   working_set_bytes: int, footprint_bytes: int,
                   is_write: bool = False,
                   policy: StorePolicy = StorePolicy.WRITE_ALLOCATE,
                   ) -> TrafficCounters:
    """Traffic of a strided site with stride larger than one granule.

    ``working_set_bytes`` is the amount of cache that must be held
    simultaneously for strided lines to be *reused* before eviction
    (Eq. 7's left-hand side); ``footprint_bytes`` the distinct bytes
    the site touches.

    * Working set fits: each distinct granule is fetched once — traffic
      equals the footprint rounded to whole granules per line touched.
    * Working set does not fit: every access fetches a whole granule
      (the ×(granule/elem) amplification).

    A smooth transition proportional to the cache-fit fraction is used
    around the boundary, matching the gradual ramps in Figs 7a/7b.
    """
    cold = round_up(footprint_bytes, ctx.granule)
    # Granules touched per access when nothing can be reused:
    per_access = round_up(elem_bytes, ctx.granule)
    amplified = n_accesses * per_access
    fit = cache_fit_fraction(working_set_bytes, ctx.capacity_bytes)
    read_like = int(round(fit * cold + (1.0 - fit) * amplified))
    if not is_write:
        return TrafficCounters(read_bytes=read_like)
    write = round_up(footprint_bytes, ctx.granule)
    if policy is StorePolicy.BYPASS:
        # Strided bypassed stores still emit one granule per access when
        # the stride exceeds the granule (no gathering possible).
        return TrafficCounters(write_bytes=read_like)
    return TrafficCounters(read_bytes=read_like, write_bytes=write)


def reused_read(footprint_bytes: int, passes: float,
                ctx: CacheContext) -> TrafficCounters:
    """``passes`` sequential passes over a working set of given size.

    If the working set fits the available cache only the first pass
    touches memory (plus spill-induced extra traffic when parts of it
    live in re-appropriated remote slices); otherwise every pass
    re-streams the whole footprint. ``passes`` may be fractional (a
    kernel that stops mid-pass, e.g. capped GEMV with M not a multiple
    of P) and must be >= 1.
    """
    if passes < 1:
        passes = 1.0
    cold = round_up(footprint_bytes, ctx.granule)
    fit = cache_fit_fraction(footprint_bytes, ctx.capacity_bytes)
    per_extra_pass = (1.0 - fit) * cold
    spill = ctx.spill_extra_fraction * cold if passes > 1 else 0.0
    total = int(round(cold + (passes - 1) * (per_extra_pass + spill)))
    return TrafficCounters(read_bytes=total)


def cache_fit_fraction(working_set: int, capacity: int) -> float:
    """Fraction of a working set that survives in cache between reuses.

    1.0 when it fits comfortably, 0.0 when it is much larger than the
    capacity, with a linear roll-off in between (set-conflict effects
    begin before full capacity; complete thrash slightly after). The
    roll-off window [0.85·C, 1.3·C] is a calibration choice validated
    against the exact LRU simulator.
    """
    if capacity <= 0:
        return 0.0
    lo = 0.85 * capacity
    hi = 1.30 * capacity
    if working_set <= lo:
        return 1.0
    if working_set >= hi:
        return 0.0
    return float((hi - working_set) / (hi - lo))


def combine(*parts: TrafficCounters) -> TrafficCounters:
    """Sum several traffic contributions."""
    total = TrafficCounters()
    for p in parts:
        total.add(p)
    return total
