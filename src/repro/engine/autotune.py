"""Self-tuning execution layer for the pipelined exact engine.

The pipelined engine already measures everything a feedback loop
needs — ring occupancy at every submit, producer stall time, worker
busy time — but until now only exported the numbers as ungated
``info_`` bench metrics.  This module closes the loop:

* :class:`SegmentSizeController` — an AIMD law that grows the
  producer's segment row count while the ring runs below a target
  occupancy (workers are starving: hand them bigger batches so the
  producer's per-segment overhead amortizes better) and backs off
  multiplicatively once the producer both overshoots the setpoint and
  actually stalls on backpressure.  Segment boundaries are invisible
  to the cache model, so any tuning trajectory yields byte-identical
  ``TrafficCounters`` (tested by hypothesis differentials).

* :class:`AdaptiveBackoff` — exponential poll backoff for the
  producer's result-queue wait, replacing the fixed 0.2 s timeout
  poll: near-instant reaction when messages are flowing, capped
  sleeps when the pipeline is drained.

Both are pure-control-plane: they change *when* and *how much* work
moves, never *what* is simulated.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from .envconfig import (
    default_autotune,
    default_target_occupancy,
    positive_int,
    unit_fraction,
)

#: Never tune below this many rows per segment: tiny segments make the
#: per-segment fixed costs (queue round-trips, numpy dispatch) dominate.
MIN_SEGMENT_ROWS = 1 << 16

#: Additive-increase fraction of the slot capacity per step.
_GROW_NUM, _GROW_DEN = 1, 8
#: Multiplicative-decrease factor applied on congestion (stall while
#: above the occupancy setpoint).
_SHRINK_NUM, _SHRINK_DEN = 3, 4

#: Poll backoff bounds for :class:`AdaptiveBackoff` (seconds).
_BACKOFF_MIN_S = 0.0005
_BACKOFF_MAX_S = 0.2


@dataclasses.dataclass(frozen=True)
class AutotuneConfig:
    """Knobs of the feedback controller.

    ``target_occupancy`` is the ring-occupancy setpoint in (0, 1]:
    the fraction of ring slots the controller tries to keep in
    flight.  Below it the producer grows segments; above it — but
    only when the producer actually stalled — it shrinks them.
    ``min_rows`` floors the segment size; the ceiling is always the
    mmapped slot capacity, which is fixed at pool creation.
    """

    target_occupancy: Optional[float] = None
    min_rows: int = MIN_SEGMENT_ROWS

    def __post_init__(self):
        if self.target_occupancy is not None:
            unit_fraction(self.target_occupancy, "target_occupancy")
        positive_int(self.min_rows, "min_rows")

    def resolved_target(self) -> float:
        if self.target_occupancy is not None:
            return float(self.target_occupancy)
        return default_target_occupancy()


def resolve_autotune(autotune: Optional[bool]) -> bool:
    """Explicit flag, or the ``REPRO_AUTOTUNE`` default when None."""
    if autotune is None:
        return default_autotune()
    return bool(autotune)


class SegmentSizeController:
    """AIMD segment-row controller steered by ring occupancy.

    The producer consults :meth:`observe` once per submitted slot
    with the occupancy it saw *before* submitting (in-flight slots /
    ring depth) and whether it had to stall for an ack to free the
    slot.  :attr:`rows` is then the row budget for the next segment.

    The law is deliberately conservative in the shrink direction:
    occupancy above the setpoint is the *desired* state of a healthy
    pipeline (workers always have queued work), so the controller
    only backs off when high occupancy coincides with a producer
    stall — the signature of workers being the bottleneck and the
    ring wasting memory on oversized slots.
    """

    def __init__(self, slot_rows: int, initial_rows: int,
                 config: Optional[AutotuneConfig] = None):
        self.slot_rows = positive_int(slot_rows, "slot_rows")
        config = config or AutotuneConfig()
        self.min_rows = min(config.min_rows, self.slot_rows)
        self.target = config.resolved_target()
        self.rows = max(self.min_rows,
                        min(positive_int(initial_rows, "initial_rows"),
                            self.slot_rows))
        self._step = max(1, self.slot_rows * _GROW_NUM // _GROW_DEN)
        #: ``(seq, rows, occupancy)`` per decision — the tuning trace.
        self.trace: List[Tuple[int, int, float]] = []
        self._seq = 0

    def observe(self, occupancy: float, stalled: bool) -> int:
        """Feed one submit's observation; returns the next row budget."""
        if occupancy < self.target:
            self.rows = min(self.slot_rows, self.rows + self._step)
        elif stalled:
            self.rows = max(self.min_rows,
                            self.rows * _SHRINK_NUM // _SHRINK_DEN)
        self._seq += 1
        self.trace.append((self._seq, self.rows, round(occupancy, 4)))
        return self.rows


class AdaptiveBackoff:
    """Exponential poll backoff for blocking-queue waits.

    ``timeout()`` yields the next wait; ``reset()`` is called whenever
    a message actually arrived, snapping back to the minimum so a
    busy pipeline polls at sub-millisecond latency while an idle one
    converges to the capped sleep (which still bounds dead-worker
    detection latency).
    """

    def __init__(self, min_s: float = _BACKOFF_MIN_S,
                 max_s: float = _BACKOFF_MAX_S):
        if not 0 < min_s <= max_s:
            raise ValueError("need 0 < min_s <= max_s")
        self.min_s = min_s
        self.max_s = max_s
        self._current = min_s

    def timeout(self) -> float:
        """Current wait; doubles (capped) for the next empty poll."""
        out = self._current
        self._current = min(self.max_s, self._current * 2.0)
        return out

    def reset(self) -> None:
        self._current = self.min_s
