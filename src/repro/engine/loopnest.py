"""Affine loop-nest DSL: model *your* kernel the way the paper models
its kernels.

Sections II and IV of the paper derive expected memory traffic by hand
from loop nests: find each access site's stride, decide whether stores
bypass, find the working set that must stay cached between reuses
(Eq. 7), and amplify strided reads to whole 64 B granules when it does
not fit. :class:`LoopNest` automates exactly that derivation for any
affine nest::

    # C[i][j] += A[i][k] * B[k][j]  (the paper's Listing 3)
    gemm = LoopNest(
        name="my-gemm",
        bounds=(n, n, n),                    # i, j, k — outermost first
        accesses=[
            AffineAccess("A", coeffs=(n, 0, 1)),
            AffineAccess("B", coeffs=(0, 1, n)),
            AffineAccess("C", coeffs=(n, 1, 0), is_write=True),
        ],
        flops_per_iteration=2.0,
    )
    gemm.traffic(ctx)        # analytic law
    gemm.exact_accesses()    # ground-truth trace for the exact engine

The analytic law reproduces the paper's manual analyses:

* per-site stride = innermost non-zero coefficient → prefetcher input
  and store-bypass policy (via :func:`~repro.engine.stream.resolve_policies`);
* the innermost *reuse level* (a loop the site's address does not grow
  through, or grows by less than a granule) defines the working set
  that must stay cached for reuse to be free — the Eq. 7 construction;
* when that working set exceeds the cache, the site re-fetches per
  reuse, with strided sites paying a whole granule per access.

The law is validated against the exact cache simulator for GEMM-,
transpose-, stencil- and reduction-shaped nests in
``tests/test_engine_loopnest.py``.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..machine.cache import TrafficCounters
from ..machine.prefetch import SoftwarePrefetch
from ..machine.store import StorePolicy
from ..units import ceil_div, round_up
from .analytic import CacheContext, cache_fit_fraction
from .envconfig import resolve_segment_rows
from .stream import Access, BatchTrace, StreamDecl, resolve_policies
from .trace import KernelModel


@dataclasses.dataclass(frozen=True)
class AffineAccess:
    """One access site: address = base + Σ coeffs[i]·index[i] (elements)."""

    array: str
    coeffs: Tuple[int, ...]
    is_write: bool = False
    offset: int = 0
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        if self.elem_bytes <= 0:
            raise ConfigurationError("element size must be positive")

    # ------------------------------------------------------------------
    def span_elems(self, bounds: Sequence[int],
                   levels: Optional[Sequence[int]] = None) -> int:
        """Address span (elements) over the given loop levels."""
        levels = range(len(bounds)) if levels is None else levels
        span = 0
        for lvl in levels:
            span += abs(self.coeffs[lvl]) * (bounds[lvl] - 1)
        # Sites merged from stencil neighbours carry an offset range.
        span += getattr(self, "_offset_span", 0)
        return span + 1

    def innermost_stride_elems(self) -> int:
        """Address step per innermost-loop iteration (elements)."""
        return self.coeffs[-1]

    def reuse_levels(self, bounds: Sequence[int],
                     granule: int) -> List[int]:
        """Loop levels across which this site *reuses* data, innermost
        first. A level reuses when the per-iteration address step is
        smaller than a granule (zero → full footprint reuse; small →
        the same granule is re-touched by consecutive iterations)."""
        out = []
        for lvl in range(len(bounds) - 1, -1, -1):
            if bounds[lvl] > 1 and \
                    abs(self.coeffs[lvl]) * self.elem_bytes < granule:
                out.append(lvl)
        return out


class LoopNest(KernelModel):
    """A perfectly-nested affine loop nest as a kernel model."""

    def __init__(self, name: str, bounds: Sequence[int],
                 accesses: Sequence[AffineAccess],
                 flops_per_iteration: float = 0.0,
                 layout_gap: int = 256):
        if not bounds or any(b <= 0 for b in bounds):
            raise ConfigurationError("bounds must be positive")
        if not accesses:
            raise ConfigurationError("a loop nest needs >= 1 access site")
        for acc in accesses:
            if len(acc.coeffs) != len(bounds):
                raise ConfigurationError(
                    f"site {acc.array!r} has {len(acc.coeffs)} coeffs "
                    f"for {len(bounds)} loops")
        self.name = name
        self.bounds = tuple(bounds)
        self.accesses = list(accesses)
        self.flops_per_iteration = flops_per_iteration
        self._bases = self._layout(layout_gap)

    # ------------------------------------------------------------------
    def _layout(self, gap: int) -> dict:
        """Line-aligned base address per distinct array."""
        bases = {}
        addr = 0
        for acc in self.accesses:
            if acc.array in bases:
                continue
            bases[acc.array] = addr
            size = acc.span_elems(self.bounds) * acc.elem_bytes
            addr += size + gap
            addr = -(-addr // 128) * 128
        return bases

    @property
    def n_iterations(self) -> int:
        total = 1
        for b in self.bounds:
            total *= b
        return total

    # ------------------------------------------------------------------
    def streams(self) -> List[StreamDecl]:
        decls = []
        per_iter = len(self.accesses)
        for acc in self.accesses:
            decls.append(StreamDecl(
                name=acc.array,
                is_write=acc.is_write,
                n_accesses=self.n_iterations,
                elem_bytes=acc.elem_bytes,
                stride_bytes=acc.innermost_stride_elems() * acc.elem_bytes,
                footprint_bytes=acc.span_elems(self.bounds) * acc.elem_bytes,
                base=self._bases[acc.array] + acc.offset * acc.elem_bytes,
                interarrival=per_iter if acc.is_write else 1,
            ))
        return decls

    # ------------------------------------------------------------------
    def exact_accesses(self) -> Iterator[Access]:
        for idx in itertools.product(*(range(b) for b in self.bounds)):
            for acc in self.accesses:
                elem = acc.offset
                for coeff, i in zip(acc.coeffs, idx):
                    elem += coeff * i
                yield Access(
                    acc.array,
                    self._bases[acc.array] + elem * acc.elem_bytes,
                    acc.elem_bytes,
                    acc.is_write,
                )

    def _range_trace(self, t0: int, t1: int) -> BatchTrace:
        """Vectorized trace of flattened iterations ``t0 <= t < t1``:
        per-level index grids, one interleaved site stream per
        access."""
        total = self.n_iterations
        flat = np.arange(t0, t1, dtype=np.int64)
        idx_grids = []
        period = total
        for bound in self.bounds:
            period //= bound
            idx_grids.append((flat // period) % bound)
        sites = []
        for acc in self.accesses:
            elem = np.full(flat.size, acc.offset, dtype=np.int64)
            for coeff, grid in zip(acc.coeffs, idx_grids):
                if coeff:
                    elem += coeff * grid
            addr = self._bases[acc.array] + elem * acc.elem_bytes
            sites.append((acc.array, addr, acc.elem_bytes, acc.is_write))
        return BatchTrace.interleaved(sites)

    def exact_trace(self) -> BatchTrace:
        return self._range_trace(0, self.n_iterations)

    def segments(self, target_rows: Optional[int] = None):
        """Bounded emitter over whole loop-body iterations (one row
        per access site per iteration)."""
        target_rows = resolve_segment_rows(target_rows)
        per_iter = len(self.accesses)
        step = max(1, target_rows // per_iter)
        total = self.n_iterations
        for t0 in range(0, total, step):
            yield self._range_trace(t0, min(t0 + step, total))

    # ------------------------------------------------------------------
    # the generic traffic law
    # ------------------------------------------------------------------
    def _inner_working_set(self, level: int, granule: int,
                           line_bytes: int) -> int:
        """Bytes of cache occupied by one iteration of loop ``level``
        (everything the inner loops touch) — the quantity whose fit
        decides whether reuse across ``level`` is free. This is Eq. 7
        generalised: strided sites occupy a whole cache line per
        in-flight element (tag-slot pressure), sequential sites their
        streamed bytes."""
        inner = list(range(level + 1, len(self.bounds)))
        total = 0
        for acc in self.accesses:
            stride = abs(acc.innermost_stride_elems()) * acc.elem_bytes
            span = acc.span_elems(self.bounds, inner) * acc.elem_bytes
            if stride >= granule:
                # Distinct lines touched by the inner loops: bounded
                # both by the number of differently-addressed accesses
                # and by the address span itself.
                touches = 1
                for lvl in inner:
                    if acc.coeffs[lvl] != 0:
                        touches *= self.bounds[lvl]
                lines = min(touches, ceil_div(span, line_bytes))
                total += lines * line_bytes
            else:
                total += round_up(span, granule)
        return total

    def _cold_bytes(self, acc: AffineAccess, granule: int) -> int:
        """Minimum traffic: every distinct granule fetched once."""
        footprint = acc.span_elems(self.bounds) * acc.elem_bytes
        return round_up(footprint, granule)

    def _site_read_like_bytes(self, acc: AffineAccess,
                              ctx: CacheContext) -> int:
        """Traffic to *supply* this site (reads, or RFO for writes).

        Start from the no-cache cost (one granule per access for
        strided sites, the streamed bytes otherwise), then walk the
        site's reuse levels innermost-out: each level whose inner
        working set fits the cache divides the cost by that level's
        reuse factor. The floor is the cold footprint.
        """
        granule = ctx.granule
        cold = self._cold_bytes(acc, granule)
        stride = abs(acc.innermost_stride_elems()) * acc.elem_bytes
        if stride >= granule:
            cost = float(self.n_iterations * granule)
        else:
            cost = float(self.n_iterations * acc.elem_bytes)
        for lvl in acc.reuse_levels(self.bounds, granule):
            ws = self._inner_working_set(lvl, granule, ctx.line_bytes)
            fit = cache_fit_fraction(ws, ctx.capacity_bytes)
            step = abs(acc.coeffs[lvl]) * acc.elem_bytes
            reuse = self.bounds[lvl] if step == 0 else \
                max(1, granule // step)
            spill = (ctx.spill_extra_fraction * (reuse - 1) / reuse
                     if reuse > 1 else 0.0)
            cost = cost * ((1.0 - fit) + fit * (1.0 / reuse + spill))
        return max(cold, int(round(cost)))

    def _merged_sites(self) -> List[AffineAccess]:
        """Merge sites that touch the same array with the same strides
        (stencil neighbours: offsets within a line share fetches)."""
        groups: dict = {}
        for acc in self.accesses:
            key = (acc.array, acc.coeffs, acc.is_write, acc.elem_bytes)
            groups.setdefault(key, []).append(acc)
        merged = []
        for (array, coeffs, is_write, elem), sites in groups.items():
            offsets = [s.offset for s in sites]
            site = AffineAccess(array=array, coeffs=coeffs,
                                is_write=is_write, offset=min(offsets),
                                elem_bytes=elem)
            # The merged site spans the whole offset range; span_elems
            # consults this annotation when computing footprints.
            object.__setattr__(site, "_offset_span",
                               max(offsets) - min(offsets))
            merged.append(site)
        return merged

    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        read = 0
        write = 0
        for acc in self._merged_sites():
            if acc.is_write:
                footprint = self._cold_bytes(acc, ctx.granule)
                write += footprint
                if policies[acc.array] is StorePolicy.WRITE_ALLOCATE:
                    read += self._site_read_like_bytes(acc, ctx)
            else:
                read += self._site_read_like_bytes(acc, ctx)
        return TrafficCounters(read_bytes=read, write_bytes=write)

    # ------------------------------------------------------------------
    def flops(self) -> float:
        return self.flops_per_iteration * self.n_iterations

    def footprint_bytes(self) -> int:
        seen: dict = {}
        for acc in self._merged_sites():
            span = acc.span_elems(self.bounds) * acc.elem_bytes
            seen[acc.array] = max(seen.get(acc.array, 0), span)
        return sum(seen.values())
