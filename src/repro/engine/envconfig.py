"""Environment-variable knobs for the exact engines.

The streaming engines have three sizing knobs that used to be module
constants: the disk-store chunk size (rows per ``iter_chunks`` slice),
the segment size of the pipelined engine (rows per producer block),
and the shard count of :class:`~repro.engine.exact.ShardedExactEngine`.
All three are now configurable per process via environment variables —
``REPRO_CHUNK_ROWS``, ``REPRO_SEGMENT_ROWS``, ``REPRO_N_SHARDS`` (plus
``REPRO_RING_DEPTH`` for the pipeline ring) — validated *at parse
time* with a :class:`~repro.errors.SimulationError` naming the
offending variable, so a typo'd override fails the run immediately
instead of producing a confusing downstream numpy error.

None of these knobs may change simulation *results*: chunk/segment
boundaries are invisible to the cache model (tested), and the shard
count only partitions work. They trade RSS and parallelism against
overhead.

The sampling observer (``repro.papi.sampling``) adds three more:
``REPRO_SAMPLE_PERIOD`` (mean accesses per sample),
``REPRO_SAMPLE_SKID`` (fixed record skid in accesses) and
``REPRO_SAMPLE_JITTER`` (random extra skid bound). These *do* change
sampled estimates — that is their point — but never the exact
engines' results.

The self-tuning execution layer (``repro.engine.autotune``) adds
``REPRO_AUTOTUNE`` (enable the feedback controller + worker affinity),
``REPRO_TARGET_OCCUPANCY`` (ring-occupancy setpoint in (0, 1]) and
``REPRO_AFFINITY`` (``auto``/``on``/``off`` worker CPU pinning).
Like the sizing knobs these are timing-only: the controller resizes
segments and the pinner moves workers, but traffic counters stay
byte-identical (tested).
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import SimulationError

#: Rows per mmapped slice when streaming a stored trace from disk.
CHUNK_ROWS_ENV = "REPRO_CHUNK_ROWS"
#: Rows per trace segment emitted by ``KernelModel.segments()``.
SEGMENT_ROWS_ENV = "REPRO_SEGMENT_ROWS"
#: Default shard count for ``ShardedExactEngine`` (lifts the old
#: ``min(8, cpu_count)`` cap; still clamped to ``cache.n_sets``).
N_SHARDS_ENV = "REPRO_N_SHARDS"
#: Slots in the pipelined engine's shared-memory segment ring.
RING_DEPTH_ENV = "REPRO_RING_DEPTH"
#: Mean sample period (accesses per sample) of the sampling observer.
SAMPLE_PERIOD_ENV = "REPRO_SAMPLE_PERIOD"
#: Fixed skid (in accesses) of the sampling observer's record position.
SAMPLE_SKID_ENV = "REPRO_SAMPLE_SKID"
#: Extra random skid bound (in accesses) on top of the fixed skid.
SAMPLE_JITTER_ENV = "REPRO_SAMPLE_JITTER"
#: Enable the pipelined engine's self-tuning controller by default.
AUTOTUNE_ENV = "REPRO_AUTOTUNE"
#: Ring-occupancy setpoint the segment-size controller steers toward.
TARGET_OCCUPANCY_ENV = "REPRO_TARGET_OCCUPANCY"
#: Worker CPU pinning: ``auto`` (with autotune), ``on``, or ``off``.
AFFINITY_ENV = "REPRO_AFFINITY"

DEFAULT_CHUNK_ROWS = 1 << 19
DEFAULT_SEGMENT_ROWS = 1 << 20
DEFAULT_RING_DEPTH = 4
DEFAULT_SAMPLE_PERIOD = 64
DEFAULT_TARGET_OCCUPANCY = 0.75


def positive_int(value, name: str) -> int:
    """Validate ``value`` as a positive integer; clear error otherwise."""
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        raise SimulationError(
            f"{name} must be a positive integer, got {value!r}"
        ) from None
    if parsed <= 0:
        raise SimulationError(
            f"{name} must be a positive integer, got {value!r}")
    return parsed


def nonnegative_int(value, name: str) -> int:
    """Validate ``value`` as an integer >= 0; clear error otherwise."""
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        raise SimulationError(
            f"{name} must be a non-negative integer, got {value!r}"
        ) from None
    if parsed < 0:
        raise SimulationError(
            f"{name} must be a non-negative integer, got {value!r}")
    return parsed


def _env_positive_int(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None or raw == "":
        return default
    return positive_int(raw, f"environment variable {env}")


def _env_nonnegative_int(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None or raw == "":
        return default
    return nonnegative_int(raw, f"environment variable {env}")


def default_chunk_rows() -> int:
    """Rows per disk-store chunk (``REPRO_CHUNK_ROWS`` or built-in)."""
    return _env_positive_int(CHUNK_ROWS_ENV, DEFAULT_CHUNK_ROWS)


def default_segment_rows() -> int:
    """Rows per trace segment (``REPRO_SEGMENT_ROWS`` or built-in)."""
    return _env_positive_int(SEGMENT_ROWS_ENV, DEFAULT_SEGMENT_ROWS)


def resolve_segment_rows(target_rows: Optional[int]) -> int:
    """Explicit segment size, or the env/built-in default when None."""
    if target_rows is None:
        return default_segment_rows()
    return positive_int(target_rows, "target_rows")


def default_ring_depth() -> int:
    """Segment-ring slots (``REPRO_RING_DEPTH`` or built-in)."""
    return _env_positive_int(RING_DEPTH_ENV, DEFAULT_RING_DEPTH)


def default_sample_period() -> int:
    """Mean accesses per sample (``REPRO_SAMPLE_PERIOD`` or built-in)."""
    return _env_positive_int(SAMPLE_PERIOD_ENV, DEFAULT_SAMPLE_PERIOD)


def default_sample_skid() -> int:
    """Fixed record skid in accesses (``REPRO_SAMPLE_SKID`` or 0)."""
    return _env_nonnegative_int(SAMPLE_SKID_ENV, 0)


def default_sample_skid_jitter() -> int:
    """Random extra skid bound (``REPRO_SAMPLE_JITTER`` or 0)."""
    return _env_nonnegative_int(SAMPLE_JITTER_ENV, 0)


def unit_fraction(value, name: str) -> float:
    """Validate ``value`` as a float in (0, 1]; clear error otherwise."""
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        raise SimulationError(
            f"{name} must be a float in (0, 1], got {value!r}"
        ) from None
    if not 0.0 < parsed <= 1.0:
        raise SimulationError(
            f"{name} must be a float in (0, 1], got {value!r}")
    return parsed


_FLAG_TRUE = frozenset({"1", "true", "yes", "on"})
_FLAG_FALSE = frozenset({"0", "false", "no", "off"})


def env_flag(env: str, default: bool = False) -> bool:
    """Boolean env knob; accepts 1/0, true/false, yes/no, on/off."""
    raw = os.environ.get(env)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in _FLAG_TRUE:
        return True
    if lowered in _FLAG_FALSE:
        return False
    raise SimulationError(
        f"environment variable {env} must be a boolean flag "
        f"(1/0, true/false, yes/no, on/off), got {raw!r}")


def default_autotune() -> bool:
    """Self-tuning default (``REPRO_AUTOTUNE`` or off)."""
    return env_flag(AUTOTUNE_ENV, False)


def default_target_occupancy() -> float:
    """Ring-occupancy setpoint (``REPRO_TARGET_OCCUPANCY`` or 0.75)."""
    raw = os.environ.get(TARGET_OCCUPANCY_ENV)
    if raw is None or raw == "":
        return DEFAULT_TARGET_OCCUPANCY
    return unit_fraction(
        raw, f"environment variable {TARGET_OCCUPANCY_ENV}")


def affinity_mode() -> str:
    """Worker-pinning mode (``REPRO_AFFINITY``): auto, on, or off."""
    raw = os.environ.get(AFFINITY_ENV)
    if raw is None or raw == "":
        return "auto"
    lowered = raw.strip().lower()
    if lowered not in ("auto", "on", "off"):
        raise SimulationError(
            f"environment variable {AFFINITY_ENV} must be one of "
            f"auto/on/off, got {raw!r}")
    return lowered


def env_n_shards() -> Optional[int]:
    """Shard-count override from ``REPRO_N_SHARDS`` (None when unset)."""
    raw = os.environ.get(N_SHARDS_ENV)
    if raw is None or raw == "":
        return None
    return positive_int(raw, f"environment variable {N_SHARDS_ENV}")
