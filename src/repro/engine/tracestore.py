"""Disk-backed columnar trace store: persistent, memory-mapped
:class:`~repro.engine.stream.BatchTrace` entries.

The batch engine made simulation ~35x faster than the scalar oracle,
which moved the bottleneck to the traces themselves: a Gemm N=512
trace is ~4 GB of columns, regenerated on every process start and far
beyond what the in-process LRU of :mod:`repro.engine.tracecache` can
hold. This module persists traces on disk so billion-access
cross-validation runs (a) generate each trace once, (b) stream it
through the simulator chunk-by-chunk without materializing it in RAM,
and (c) share it read-only between shard worker processes through the
page cache instead of pickling columns.

Layout — one directory per entry under the store root::

    <root>/<kernel-name>-<digest12>/
        manifest.json    # kernel identity, streams, rows, column meta
        addr.bin         # int64[rows]   little-endian raw columns
        size.bin         # int32[rows]
        stream_id.bin    # int16[rows]
        is_write.bin     # bool (uint8 0/1) [rows]

Entries are keyed by a *content fingerprint*: kernel class
(module + qualname), kernel name, the kernel's shape/seed parameters
(:meth:`KernelModel.trace_key`), and :data:`EMITTER_VERSION` (bumped
whenever any vectorized emitter changes). Two same-named kernels with
different shape parameters therefore never alias.

Durability and integrity:

* writes are atomic — columns stream into a temp directory that is
  fsynced and ``os.rename``-ed into place, so readers only ever see
  complete entries and a concurrent writer losing the rename race
  simply adopts the winner's entry;
* every column carries length, dtype, and a CRC32 in the manifest;
  opening an entry validates structure and file sizes always, and the
  checksums too unless ``verify="meta"`` is requested (workers re-open
  entries the parent already verified);
* eviction is LRU-by-bytes over entries (``gc``), with last-use
  tracked via the manifest's mtime (``os.utime`` on access).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import mmap
import os
import shutil
import tempfile
import time
import uuid
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import TraceCorruptionError, TraceStoreError
from .envconfig import (
    CHUNK_ROWS_ENV,
    DEFAULT_CHUNK_ROWS,
    default_chunk_rows,
)
from .stream import BatchTrace
from .trace import KernelModel

#: Version of the kernel trace emitters. Bump on any change to the
#: *bytes* an ``exact_trace``/``segments`` implementation produces:
#: the fingerprint includes it, so stale entries become unreachable
#: (and collectable by ``gc``) instead of silently wrong. Segment
#: boundary changes alone do not require a bump — checksums stream
#: over the concatenated columns.
EMITTER_VERSION = 1

#: On-disk layout version (manifest schema + column encoding).
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Environment variable selecting the default store root; also the
#: switch that attaches a disk tier to the global trace cache.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Environment variable overriding open-time verification depth
#: ("full" = structure + checksums, "meta" = structure only).
TRACE_VERIFY_ENV = "REPRO_TRACE_VERIFY"

# The default rows per streamed chunk (~4 MB of addr column) lives in
# envconfig (DEFAULT_CHUNK_ROWS, overridable via REPRO_CHUNK_ROWS) and
# is re-exported here for backwards compatibility.
_ = (CHUNK_ROWS_ENV, DEFAULT_CHUNK_ROWS)

#: The four columns of a BatchTrace, in manifest order.
COLUMN_DTYPES = (
    ("addr", np.dtype("<i8")),
    ("size", np.dtype("<i4")),
    ("stream_id", np.dtype("<i2")),
    ("is_write", np.dtype("|b1")),
)


# ----------------------------------------------------------------------
# kernel fingerprinting
# ----------------------------------------------------------------------
def _canonical(value):
    """JSON-able canonical form of a trace-key value (stable across
    processes; arrays are content-hashed, not repr-ed)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
        return ["ndarray", str(value.dtype), list(value.shape),
                digest.hexdigest()]
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if hasattr(value, "trace_key"):
        return _canonical(value.trace_key())
    if hasattr(value, "__dict__"):
        return {k: _canonical(v) for k, v in sorted(value.__dict__.items())
                if not k.startswith("_")}
    return [type(value).__name__, repr(value)]


def kernel_fingerprint(kernel: KernelModel) -> str:
    """Hex digest identifying the *content* of a kernel's exact trace:
    class identity + name + shape/seed parameters + emitter version."""
    cls = type(kernel)
    payload = json.dumps(
        [cls.__module__, cls.__qualname__, kernel.name,
         _canonical(kernel.trace_key()), EMITTER_VERSION],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _safe_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c in "-_.") else "_"
                   for c in name)[:48] or "trace"


def entry_key(kernel: KernelModel) -> str:
    """Directory name of a kernel's store entry."""
    return f"{_safe_name(kernel.name)}-{kernel_fingerprint(kernel)[:12]}"


# ----------------------------------------------------------------------
# stored entries
# ----------------------------------------------------------------------
def _require(cond: bool, path: Path, detail: str) -> None:
    if not cond:
        raise TraceCorruptionError(f"{path}: {detail}")


class StoredTrace:
    """One validated on-disk trace entry.

    Provides two access styles:

    * :meth:`load` — the whole trace as a zero-copy mmap-backed
      :class:`BatchTrace` (random access; pages fault in on demand);
    * :meth:`iter_chunks` — bounded-RSS streaming: row-slices of the
      mmapped columns, with already-consumed pages dropped back to the
      OS (``madvise(DONTNEED)``) between chunks so peak RSS stays at
      a few chunks regardless of trace size.
    """

    def __init__(self, path: Path, manifest: Dict):
        self.path = Path(path)
        self.manifest = manifest
        self.streams: Tuple[str, ...] = tuple(manifest["streams"])
        self.rows: int = int(manifest["rows"])
        self._maps: Optional[List[Tuple[np.ndarray, mmap.mmap]]] = None

    # -- opening / validation ------------------------------------------
    @classmethod
    def open(cls, path, verify: str = "full") -> "StoredTrace":
        """Open and validate an entry directory.

        ``verify="full"`` additionally checks every column's CRC32
        (the default; set ``REPRO_TRACE_VERIFY=meta`` or pass
        ``verify="meta"`` to trust previously verified entries).
        Raises :class:`TraceCorruptionError` on any mismatch — a
        corrupt entry is never returned as data.
        """
        path = Path(path)
        mpath = path / MANIFEST_NAME
        if not mpath.is_file():
            raise TraceStoreError(f"{path}: no manifest — not a trace entry")
        try:
            manifest = json.loads(mpath.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceCorruptionError(
                f"{mpath}: unreadable manifest ({exc})") from None
        cls._validate(path, manifest, verify=verify)
        return cls(path, manifest)

    @staticmethod
    def _validate(path: Path, manifest: Dict, verify: str) -> None:
        _require(isinstance(manifest, dict), path, "manifest is not an object")
        _require(manifest.get("format_version") == FORMAT_VERSION, path,
                 f"format_version {manifest.get('format_version')!r} "
                 f"!= {FORMAT_VERSION}")
        _require(manifest.get("emitter_version") == EMITTER_VERSION, path,
                 f"stale emitter_version "
                 f"{manifest.get('emitter_version')!r}")
        rows = manifest.get("rows")
        _require(isinstance(rows, int) and rows >= 0, path,
                 f"bad row count {rows!r}")
        streams = manifest.get("streams")
        _require(isinstance(streams, list) and
                 all(isinstance(s, str) for s in streams), path,
                 "bad streams list")
        columns = manifest.get("columns")
        _require(isinstance(columns, dict), path, "missing columns object")
        for name, dtype in COLUMN_DTYPES:
            meta = columns.get(name)
            _require(isinstance(meta, dict), path, f"column {name}: no meta")
            _require(meta.get("dtype") == dtype.str, path,
                     f"column {name}: dtype {meta.get('dtype')!r} "
                     f"!= {dtype.str}")
            _require(meta.get("rows") == rows, path,
                     f"column {name}: {meta.get('rows')!r} rows, "
                     f"manifest says {rows}")
            fpath = path / f"{name}.bin"
            _require(fpath.is_file(), path, f"column {name}: file missing")
            expect = rows * dtype.itemsize
            actual = fpath.stat().st_size
            _require(actual == expect, path,
                     f"column {name}: {actual} bytes on disk, "
                     f"expected {expect}")
            if verify == "full":
                crc = _crc_file(fpath)
                _require(crc == meta.get("crc32"), path,
                         f"column {name}: CRC32 {crc:#010x} != manifest "
                         f"{meta.get('crc32')!r} (bit corruption)")

    def verify(self) -> None:
        """Re-run full validation (including checksums) in place."""
        self._validate(self.path, self.manifest, verify="full")

    # -- sizes ----------------------------------------------------------
    def __len__(self) -> int:
        return self.rows

    @property
    def nbytes(self) -> int:
        return sum(self.rows * dtype.itemsize for _, dtype in COLUMN_DTYPES)

    @property
    def content_digest(self) -> str:
        """Cheap content identity derived from the manifest (column
        CRCs + shape); used to key simulation checkpoints."""
        cols = self.manifest["columns"]
        payload = json.dumps(
            [self.rows, list(self.streams),
             [[n, cols[n]["crc32"]] for n, _ in COLUMN_DTYPES]],
            separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- data access ----------------------------------------------------
    def _mapped(self) -> List[Tuple[np.ndarray, mmap.mmap]]:
        if self._maps is None:
            maps = []
            for name, dtype in COLUMN_DTYPES:
                with open(self.path / f"{name}.bin", "rb") as fh:
                    if self.rows == 0:
                        maps.append((np.empty(0, dtype), None))
                        continue
                    mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                arr = np.frombuffer(mm, dtype=dtype)
                maps.append((arr, mm))
            self._maps = maps
        return self._maps

    def load(self) -> BatchTrace:
        """The whole trace as a read-only mmap-backed BatchTrace
        (zero-copy; invariants were validated at persist time)."""
        cols = [arr for arr, _ in self._mapped()]
        return BatchTrace.trusted(self.streams, stream_id=cols[2],
                                  addr=cols[0], size=cols[1],
                                  is_write=cols[3])

    def iter_chunks(self, chunk_rows: Optional[int] = None,
                    ) -> Iterator[BatchTrace]:
        """Stream the trace as row-slices of ``chunk_rows`` rows
        (default: ``REPRO_CHUNK_ROWS`` or :data:`DEFAULT_CHUNK_ROWS`).

        Chunks are views into the read-only maps; consumed pages are
        released with ``madvise(DONTNEED)`` so resident set size stays
        bounded by a few chunks however large the trace is. A chunk is
        only valid until the next iteration step.
        """
        if chunk_rows is None:
            chunk_rows = default_chunk_rows()
        elif chunk_rows <= 0:
            raise TraceStoreError("chunk_rows must be positive")
        maps = self._mapped()
        cols = [arr for arr, _ in maps]
        page = mmap.PAGESIZE
        for start in range(0, self.rows, chunk_rows):
            stop = min(start + chunk_rows, self.rows)
            yield BatchTrace.trusted(
                self.streams,
                stream_id=cols[2][start:stop],
                addr=cols[0][start:stop],
                size=cols[1][start:stop],
                is_write=cols[3][start:stop],
            )
            for (_, dtype), (_, mm) in zip(COLUMN_DTYPES, maps):
                if mm is None or not hasattr(mm, "madvise"):
                    continue
                done = (stop * dtype.itemsize) // page * page
                if done:
                    mm.madvise(mmap.MADV_DONTNEED, 0, done)

    def segments(self, target_rows: Optional[int] = None,
                 ) -> Iterator[BatchTrace]:
        """Bounded-memory segment emitter (the :class:`KernelModel`
        ``segments`` protocol): stored traces duck-type as segment
        sources for the pipelined engine."""
        return self.iter_chunks(target_rows)

    def close(self) -> None:
        """Drop the column maps (best effort: a map with live NumPy
        views stays open until those views die — closing under them
        would invalidate their memory)."""
        if self._maps is not None:
            maps, self._maps = self._maps, None
            for _, mm in maps:
                if mm is not None:
                    try:
                        mm.close()
                    except BufferError:
                        pass


def _crc_file(path: Path, bufsize: int = 1 << 22) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(bufsize)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


# ----------------------------------------------------------------------
# streaming writer
# ----------------------------------------------------------------------
class TraceStoreWriter:
    """Stream BatchTrace blocks into a new entry, then commit
    atomically.

    Columns accumulate in a temp directory next to the final location
    (same filesystem, so the final ``os.rename`` is atomic); CRC32s
    are computed as bytes stream through, so commit never re-reads the
    data. If another process commits the same entry first, ``commit``
    discards the temp directory and returns the winner's entry.
    """

    def __init__(self, store: "TraceStore", key: str, kernel_meta: Dict):
        self.store = store
        self.key = key
        self.kernel_meta = kernel_meta
        self.final_dir = store.root / key
        self.tmp_dir = store.root / f".tmp-{key}-{uuid.uuid4().hex[:8]}"
        self.tmp_dir.mkdir(parents=True)
        self._files = {
            name: open(self.tmp_dir / f"{name}.bin", "wb")
            for name, _ in COLUMN_DTYPES
        }
        self._crcs = {name: 0 for name, _ in COLUMN_DTYPES}
        self.rows = 0
        self.streams: Optional[Tuple[str, ...]] = None
        self._done = False

    def append(self, block: BatchTrace) -> None:
        if self._done:
            raise TraceStoreError("writer already committed/aborted")
        if self.streams is None:
            self.streams = tuple(block.streams)
        elif tuple(block.streams) != self.streams:
            raise TraceStoreError(
                f"inconsistent streams across blocks: "
                f"{block.streams} != {self.streams}")
        columns = {
            "addr": block.addr, "size": block.size,
            "stream_id": block.stream_id, "is_write": block.is_write,
        }
        for name, dtype in COLUMN_DTYPES:
            data = np.ascontiguousarray(columns[name], dtype).tobytes()
            self._files[name].write(data)
            self._crcs[name] = zlib.crc32(data, self._crcs[name])
        self.rows += len(block)

    def commit(self) -> StoredTrace:
        if self._done:
            raise TraceStoreError("writer already committed/aborted")
        manifest = {
            "format_version": FORMAT_VERSION,
            "emitter_version": EMITTER_VERSION,
            "kernel": self.kernel_meta,
            "streams": list(self.streams or ()),
            "rows": self.rows,
            "created": time.time(),
            "columns": {
                name: {"dtype": dtype.str, "rows": self.rows,
                       "crc32": self._crcs[name]}
                for name, dtype in COLUMN_DTYPES
            },
        }
        for fh in self._files.values():
            fh.flush()
            os.fsync(fh.fileno())
            fh.close()
        mpath = self.tmp_dir / MANIFEST_NAME
        with open(mpath, "w") as fh:
            json.dump(manifest, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        self._done = True
        try:
            os.rename(self.tmp_dir, self.final_dir)
        except OSError:
            # Lost the race to a concurrent writer of the same entry:
            # adopt the committed winner, drop our copy.
            shutil.rmtree(self.tmp_dir, ignore_errors=True)
            if not (self.final_dir / MANIFEST_NAME).is_file():
                raise
        return StoredTrace.open(self.final_dir, verify="meta")

    def abort(self) -> None:
        if not self._done:
            self._done = True
            for fh in self._files.values():
                fh.close()
            shutil.rmtree(self.tmp_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
@dataclasses.dataclass
class EntryInfo:
    """One entry as listed by :meth:`TraceStore.entries`."""

    key: str
    path: Path
    nbytes: int
    rows: int
    kernel: Dict
    last_used: float


def default_root() -> Path:
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-trace-store"


class TraceStore:
    """Persistent store of kernel batch traces under one root
    directory; safe for concurrent use by multiple processes."""

    def __init__(self, root=None, verify: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root) if root is not None else default_root()
        self.root.mkdir(parents=True, exist_ok=True)
        if verify is None:
            verify = os.environ.get(TRACE_VERIFY_ENV, "full")
        if verify not in ("full", "meta"):
            raise TraceStoreError(
                f"verify must be 'full' or 'meta', got {verify!r}")
        self.verify = verify
        #: When set, every ``put``/``get_or_create`` triggers an LRU
        #: sweep down to this budget (the just-written entry included
        #: in the accounting but never evicted).
        self.max_bytes = max_bytes

    # -- keys -----------------------------------------------------------
    def key_for(self, kernel: KernelModel) -> str:
        return entry_key(kernel)

    def path_for(self, kernel: KernelModel) -> Path:
        return self.root / self.key_for(kernel)

    def contains(self, kernel: KernelModel) -> bool:
        return (self.path_for(kernel) / MANIFEST_NAME).is_file()

    # -- read path ------------------------------------------------------
    def get(self, kernel: KernelModel,
            verify: Optional[str] = None) -> Optional[StoredTrace]:
        """The kernel's stored trace, or ``None`` on miss.

        Corrupt entries raise :class:`TraceCorruptionError`; callers
        that prefer regeneration over failure use
        :meth:`get_or_create`, which quarantines and rebuilds them.
        """
        path = self.path_for(kernel)
        if not (path / MANIFEST_NAME).is_file():
            return None
        entry = StoredTrace.open(path, verify=verify or self.verify)
        self._touch(path)
        return entry

    def open_key(self, key: str,
                 verify: Optional[str] = None) -> StoredTrace:
        """Open an entry by directory key (CLI / worker path)."""
        entry = StoredTrace.open(self.root / key,
                                 verify=verify or self.verify)
        self._touch(self.root / key)
        return entry

    # -- write path -----------------------------------------------------
    def writer(self, kernel: KernelModel) -> TraceStoreWriter:
        return TraceStoreWriter(self, self.key_for(kernel), {
            "module": type(kernel).__module__,
            "qualname": type(kernel).__qualname__,
            "name": kernel.name,
            "fingerprint": kernel_fingerprint(kernel),
        })

    def put(self, kernel: KernelModel,
            blocks: Iterable[BatchTrace]) -> StoredTrace:
        """Persist a trace from BatchTrace blocks (atomic)."""
        writer = self.writer(kernel)
        try:
            for block in blocks:
                writer.append(block)
            entry = writer.commit()
        except BaseException:
            writer.abort()
            raise
        self._auto_gc(keep=entry.path.name)
        return entry

    def get_or_create(self, kernel: KernelModel) -> StoredTrace:
        """The kernel's stored trace, generating and persisting it
        through the kernel's bounded-memory block emitter on miss.
        A corrupt entry is quarantined (deleted) and regenerated."""
        try:
            entry = self.get(kernel)
        except TraceCorruptionError:
            self.remove(self.key_for(kernel))
            entry = None
        if entry is not None:
            return entry
        return self.put(kernel, kernel.segments())

    # -- maintenance ----------------------------------------------------
    def entries(self) -> List[EntryInfo]:
        out = []
        for path in sorted(self.root.iterdir()):
            mpath = path / MANIFEST_NAME
            if path.name.startswith(".tmp-") or not mpath.is_file():
                continue
            try:
                manifest = json.loads(mpath.read_text())
                rows = int(manifest["rows"])
                nbytes = sum(rows * dtype.itemsize
                             for _, dtype in COLUMN_DTYPES)
                out.append(EntryInfo(
                    key=path.name, path=path, nbytes=nbytes, rows=rows,
                    kernel=manifest.get("kernel", {}),
                    last_used=mpath.stat().st_mtime,
                ))
            except (TraceStoreError, ValueError, KeyError, OSError):
                continue
        return out

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.entries())

    def remove(self, key: str) -> bool:
        path = self.root / key
        if not path.is_dir() or os.path.sep in key or key.startswith("."):
            return False
        shutil.rmtree(path, ignore_errors=True)
        return not path.exists()

    def gc(self, max_bytes: int, keep: Optional[str] = None) -> List[str]:
        """Evict least-recently-used entries until the store holds at
        most ``max_bytes``; returns the evicted keys. ``keep`` names
        one entry exempt from eviction (a caller's fresh write)."""
        entries = sorted(self.entries(), key=lambda e: e.last_used)
        total = sum(e.nbytes for e in entries)
        evicted = []
        for entry in entries:
            if total <= max_bytes:
                break
            if entry.key == keep:
                continue
            if self.remove(entry.key):
                total -= entry.nbytes
                evicted.append(entry.key)
        # Stale temp dirs from crashed writers are garbage too.
        for path in self.root.glob(".tmp-*"):
            age = time.time() - path.stat().st_mtime
            if age > 3600:
                shutil.rmtree(path, ignore_errors=True)
        return evicted

    def verify_all(self) -> Dict[str, Optional[str]]:
        """Full-checksum every entry; maps key -> error (None = ok).

        Scans directories rather than :meth:`entries` so an entry
        whose manifest no longer even parses is still reported as
        corrupt instead of silently skipped.
        """
        report: Dict[str, Optional[str]] = {}
        for path in sorted(self.root.iterdir()):
            if path.name.startswith(".tmp-") or not path.is_dir():
                continue
            try:
                StoredTrace.open(path, verify="full")
                report[path.name] = None
            except TraceStoreError as exc:
                report[path.name] = str(exc)
        return report

    # -- internals ------------------------------------------------------
    def _auto_gc(self, keep: Optional[str]) -> None:
        if self.max_bytes is not None:
            self.gc(self.max_bytes, keep=keep)

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path / MANIFEST_NAME)
        except OSError:
            pass
