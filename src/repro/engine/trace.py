"""Kernel model interface consumed by both engines and the executor.

A :class:`KernelModel` bundles the three descriptions of one
computational kernel that the reproduction needs:

1. *numerics* — the actual result, computed with NumPy (``compute``),
   used by correctness tests;
2. *stream declarations* — what the prefetcher/store policy sees;
3. *traffic law* — analytic memory traffic per execution on one core,
   plus (for small sizes) an exact program-ordered access trace.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

from ..machine.cache import TrafficCounters
from ..machine.prefetch import SoftwarePrefetch
from .analytic import CacheContext
from .envconfig import resolve_segment_rows
from .stream import Access, BatchTrace, StreamDecl, iter_row_slices


class KernelModel(abc.ABC):
    """One kernel instance (fixed problem size) on one core."""

    #: Human-readable kernel name (e.g. ``"gemm"``, ``"s1cf-ln2"``).
    name: str = "kernel"

    # ---------------------------------------------------------- numerics
    def compute(self):  # pragma: no cover - optional per kernel
        """Run the actual numerical kernel (NumPy); returns its result."""
        raise NotImplementedError(f"{self.name} has no numeric implementation")

    # ------------------------------------------------------------ streams
    @abc.abstractmethod
    def streams(self) -> List[StreamDecl]:
        """Access-site declarations of the kernel's loop nest(s)."""

    # ------------------------------------------------------------ traffic
    @abc.abstractmethod
    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        """Analytic memory traffic of one execution on one core."""

    def exact_accesses(self) -> Iterator[Access]:
        """Program-ordered accesses (exact engine); small sizes only."""
        raise NotImplementedError(
            f"{self.name} does not provide an exact trace"
        )

    def exact_trace(self) -> BatchTrace:
        """Columnar program-ordered trace (batch/sharded engines).

        Kernels override this with a vectorized emitter; the default
        materializes :meth:`exact_accesses`, so any kernel with a
        scalar trace works with the batch engine out of the box.
        """
        return BatchTrace.from_accesses(
            self.exact_accesses(),
            streams=[s.name for s in self.streams()],
        )

    def segments(self, target_rows: Optional[int] = None
                 ) -> Iterator[BatchTrace]:
        """Program-ordered trace as bounded-memory column segments.

        The streaming contract every kernel family implements:
        concatenating the segments row-wise must equal
        :meth:`exact_trace` exactly (same rows, same bytes), every
        segment carries the same ``streams`` tuple, and each segment
        is at most ~``target_rows`` rows (kernels may round to a
        natural emission unit, e.g. whole GEMM outer iterations).
        The pipelined engine and the disk store consume traces through
        this method so billion-access traces never materialize in RAM
        at once.

        ``target_rows`` defaults to ``REPRO_SEGMENT_ROWS`` (or the
        built-in 1 Mi rows). The default implementation slices the
        materialized :meth:`exact_trace`; kernel families with huge
        traces override it with a true bounded-memory emitter.
        """
        target_rows = resolve_segment_rows(target_rows)
        yield from iter_row_slices(self.exact_trace(), target_rows)

    def exact_trace_blocks(self) -> Iterator[BatchTrace]:
        """Back-compat alias of :meth:`segments` (the protocol it grew
        into): program-ordered trace as a sequence of column blocks,
        concatenating byte-identically to :meth:`exact_trace`."""
        yield from self.segments()

    def trace_key(self):
        """Content identity of this kernel's exact trace.

        Used (hashed) to key trace caches and the on-disk store: two
        kernels with equal ``(type, trace_key())`` must emit identical
        traces. The default captures every public instance attribute —
        shape parameters, seeds, nested dataclasses, arrays — which is
        correct for all the dataclass-style kernels in this repo;
        kernels whose trace depends on less than their full state may
        override it to share entries.
        """
        state = getattr(self, "__dict__", None)
        if state:
            return {k: v for k, v in state.items()
                    if not k.startswith("_")}
        return self.name

    # -------------------------------------------------------------- work
    @abc.abstractmethod
    def flops(self) -> float:
        """Floating-point operations of one execution."""

    def bandwidth_efficiency(self, prefetch: SoftwarePrefetch = SoftwarePrefetch()
                             ) -> float:
        """Fraction of the memory-bandwidth share this kernel sustains.

        Latency-bound access patterns (large strides) run well below
        peak; software prefetch (``-fprefetch-loop-arrays``) recovers
        much of it — the "significant improvement in performance due to
        more effective prefetching" of Fig 7b. Default: fully streaming.
        """
        return 1.0

    def footprint_bytes(self) -> int:
        """Distinct bytes touched (defaults to the union of streams)."""
        seen = {}
        for s in self.streams():
            prev = seen.get(s.name, 0)
            seen[s.name] = max(prev, s.footprint_bytes)
        return sum(seen.values())

    # ---------------------------------------------------------- metadata
    def describe(self) -> str:
        return f"{self.name} (footprint {self.footprint_bytes()} B)"

    def expected_traffic(self, granule: int = 64) -> Optional[TrafficCounters]:
        """The *paper's* expected traffic (dashed lines in the figures):
        element counts × element size, independent of caching nuance.
        Kernels override this; None when the paper gives no expectation.
        """
        return None
