"""Declarative access-stream descriptions shared by both engines.

A kernel is described as a set of :class:`StreamDecl` objects — one per
array access site in the loop nest — plus (for the exact engine) a
program-ordered generator of individual accesses. The declarations
carry exactly the information the store-bypass policy and the stream
prefetcher act on: direction, stride, and volume.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ConfigurationError
from ..machine.prefetch import SoftwarePrefetch, StreamDetector
from ..machine.store import StoreContext, resolve_store_policy


class Access(NamedTuple):
    """One memory access in program order (exact engine input)."""

    stream: str
    addr: int
    size: int
    is_write: bool


#: One access site for :meth:`BatchTrace.interleaved`:
#: ``(stream name, start addresses, access size, is_write)``.
Site = Tuple[str, np.ndarray, int, bool]


@dataclasses.dataclass
class BatchTrace:
    """Columnar program-ordered access trace (batch engine input).

    Semantically equivalent to a sequence of :class:`Access` objects —
    row ``i`` is the ``i``-th access — but stored as NumPy columns so
    the exact engine can sector-expand and simulate it vectorized.
    ``stream_id`` indexes into ``streams``; duplicate names in
    ``streams`` are allowed (several access sites of the same array)
    and resolve to the same store policy.
    """

    streams: Tuple[str, ...]
    stream_id: np.ndarray
    addr: np.ndarray
    size: np.ndarray
    is_write: np.ndarray

    def __post_init__(self) -> None:
        self.stream_id = np.ascontiguousarray(self.stream_id, np.int16)
        self.addr = np.ascontiguousarray(self.addr, np.int64)
        self.size = np.ascontiguousarray(self.size, np.int32)
        self.is_write = np.ascontiguousarray(self.is_write, bool)
        n = self.addr.size
        if (self.stream_id.size != n or self.size.size != n
                or self.is_write.size != n):
            raise ConfigurationError("BatchTrace columns differ in length")
        if n and int(self.size.min()) <= 0:
            raise ConfigurationError("BatchTrace sizes must be positive")
        if self.stream_id.size and (
                int(self.stream_id.max()) >= len(self.streams)
                or int(self.stream_id.min()) < 0):
            raise ConfigurationError("BatchTrace stream_id out of range")

    def __len__(self) -> int:
        return int(self.addr.size)

    @classmethod
    def trusted(cls, streams: Tuple[str, ...], stream_id: np.ndarray,
                addr: np.ndarray, size: np.ndarray,
                is_write: np.ndarray) -> "BatchTrace":
        """Wrap pre-validated columns without the ``__post_init__``
        scans (which read every element — prohibitive for mmapped
        billion-row columns whose invariants the trace store already
        checked at persist time)."""
        trace = cls.__new__(cls)
        trace.streams = streams
        trace.stream_id = stream_id
        trace.addr = addr
        trace.size = size
        trace.is_write = is_write
        return trace

    @property
    def nbytes(self) -> int:
        return (self.stream_id.nbytes + self.addr.nbytes
                + self.size.nbytes + self.is_write.nbytes)

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access],
                      streams: Sequence[str] = ()) -> "BatchTrace":
        """Materialize a scalar access generator into columns.

        ``streams`` pre-declares stream names (and their id order);
        names encountered beyond it are appended.
        """
        names: List[str] = list(streams)
        ids = {name: i for i, name in enumerate(names)}
        sid, addr, size, w = [], [], [], []
        for acc in accesses:
            i = ids.get(acc.stream)
            if i is None:
                i = ids[acc.stream] = len(names)
                names.append(acc.stream)
            sid.append(i)
            addr.append(acc.addr)
            size.append(acc.size)
            w.append(acc.is_write)
        return cls(
            streams=tuple(names),
            stream_id=np.array(sid, np.int16),
            addr=np.array(addr, np.int64),
            size=np.array(size, np.int32),
            is_write=np.array(w, bool),
        )

    @classmethod
    def interleaved(cls, sites: Sequence[Site]) -> "BatchTrace":
        """Round-robin interleave of equal-length access sites — the
        columnar counterpart of :func:`interleave` for the common case
        of one access per site per loop iteration."""
        k = len(sites)
        length = int(np.asarray(sites[0][1]).size)
        for _, addrs, _, _ in sites:
            if np.asarray(addrs).size != length:
                raise ConfigurationError(
                    "interleaved sites must have equal lengths")
        total = length * k
        addr = np.empty(total, np.int64)
        sid = np.empty(total, np.int16)
        size = np.empty(total, np.int32)
        w = np.empty(total, bool)
        for i, (_, addrs, elem, is_write) in enumerate(sites):
            addr[i::k] = addrs
            sid[i::k] = i
            size[i::k] = elem
            w[i::k] = is_write
        return cls(tuple(s[0] for s in sites), sid, addr, size, w)

    def to_accesses(self) -> Iterator[Access]:
        """Row-wise view as scalar :class:`Access` objects (oracle side
        of the differential tests)."""
        names = self.streams
        for i in range(self.addr.size):
            yield Access(names[self.stream_id[i]], int(self.addr[i]),
                         int(self.size[i]), bool(self.is_write[i]))

    def rows(self, start: int, stop: int) -> "BatchTrace":
        """Row-slice ``[start, stop)`` sharing the column memory.

        The slice keeps the full ``streams`` tuple so segment
        boundaries never change stream-id meaning; validation is
        skipped because the parent's columns already passed it.
        """
        return BatchTrace.trusted(
            self.streams,
            self.stream_id[start:stop],
            self.addr[start:stop],
            self.size[start:stop],
            self.is_write[start:stop],
        )


def iter_row_slices(trace: "BatchTrace",
                    target_rows: int) -> Iterator["BatchTrace"]:
    """Split a materialized trace into row-slices of ``target_rows``.

    Concatenating the slices equals ``trace`` exactly; the slices are
    views, not copies. Used by the default ``KernelModel.segments()``.
    """
    if target_rows <= 0:
        raise ConfigurationError("target_rows must be positive")
    n = len(trace)
    for start in range(0, n, target_rows):
        yield trace.rows(start, min(start + target_rows, n))


#: What the exact engine accepts as a trace.
TraceLike = Union[BatchTrace, Iterable[Access]]


@dataclasses.dataclass(frozen=True)
class StreamDecl:
    """One access site of a loop nest.

    ``stride_bytes`` is the distance between the start addresses of
    consecutive accesses of this site (0 means repeated access to the
    same location, ``elem_bytes`` means perfectly sequential).
    ``footprint_bytes`` is the number of *distinct* bytes the site
    touches over the whole nest.
    """

    name: str
    is_write: bool
    n_accesses: int
    elem_bytes: int
    stride_bytes: int
    footprint_bytes: int
    base: int = 0
    #: Other memory accesses between consecutive accesses of this site
    #: (1 = every loop iteration touches it back-to-back). Store
    #: density gates the streaming-store bypass.
    interarrival: int = 1

    def __post_init__(self) -> None:
        if self.n_accesses < 0 or self.elem_bytes <= 0:
            raise ConfigurationError(f"bad stream declaration: {self}")
        if self.footprint_bytes < 0:
            raise ConfigurationError("footprint cannot be negative")

    @property
    def sequential(self) -> bool:
        """Unit-stride (element-contiguous) access?"""
        return abs(self.stride_bytes) == self.elem_bytes

    @property
    def strided(self) -> bool:
        """Non-unit, non-repeated stride?"""
        return abs(self.stride_bytes) > self.elem_bytes

    @property
    def volume_bytes(self) -> int:
        return self.n_accesses * self.elem_bytes


def resolve_policies(streams: Iterable[StreamDecl],
                     prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                     detector: StreamDetector = None) -> dict:
    """Resolve the store policy for every write stream in a loop nest.

    The stream detector is primed with every declared stream (hardware
    detects both load and store streams); then each write stream's
    policy is resolved against the global "any strided stream active"
    state, per :mod:`repro.machine.store`.
    """
    streams = list(streams)
    detector = detector or StreamDetector()
    for s in streams:
        detector.observe_regular(s.name, s.stride_bytes, s.n_accesses, s.base)
    policies = {}
    for s in streams:
        if not s.is_write:
            continue
        ctx = StoreContext(
            sequential=s.sequential,
            strided_stream_active=detector.any_strided_detected(s.elem_bytes),
            interarrival=s.interarrival,
            prefetch=prefetch,
        )
        policies[s.name] = resolve_store_policy(ctx)
    return policies


def interleave(*iterators: Iterator[Access]) -> Iterator[Access]:
    """Round-robin interleave of several access iterators (models the
    in-order issue of a loop body touching several arrays)."""
    active: List[Iterator[Access]] = list(iterators)
    while active:
        still = []
        for it in active:
            try:
                yield next(it)
            except StopIteration:
                continue
            still.append(it)
        active = still
