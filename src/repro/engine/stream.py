"""Declarative access-stream descriptions shared by both engines.

A kernel is described as a set of :class:`StreamDecl` objects — one per
array access site in the loop nest — plus (for the exact engine) a
program-ordered generator of individual accesses. The declarations
carry exactly the information the store-bypass policy and the stream
prefetcher act on: direction, stride, and volume.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, NamedTuple

from ..errors import ConfigurationError
from ..machine.prefetch import SoftwarePrefetch, StreamDetector
from ..machine.store import StoreContext, resolve_store_policy


class Access(NamedTuple):
    """One memory access in program order (exact engine input)."""

    stream: str
    addr: int
    size: int
    is_write: bool


@dataclasses.dataclass(frozen=True)
class StreamDecl:
    """One access site of a loop nest.

    ``stride_bytes`` is the distance between the start addresses of
    consecutive accesses of this site (0 means repeated access to the
    same location, ``elem_bytes`` means perfectly sequential).
    ``footprint_bytes`` is the number of *distinct* bytes the site
    touches over the whole nest.
    """

    name: str
    is_write: bool
    n_accesses: int
    elem_bytes: int
    stride_bytes: int
    footprint_bytes: int
    base: int = 0
    #: Other memory accesses between consecutive accesses of this site
    #: (1 = every loop iteration touches it back-to-back). Store
    #: density gates the streaming-store bypass.
    interarrival: int = 1

    def __post_init__(self) -> None:
        if self.n_accesses < 0 or self.elem_bytes <= 0:
            raise ConfigurationError(f"bad stream declaration: {self}")
        if self.footprint_bytes < 0:
            raise ConfigurationError("footprint cannot be negative")

    @property
    def sequential(self) -> bool:
        """Unit-stride (element-contiguous) access?"""
        return abs(self.stride_bytes) == self.elem_bytes

    @property
    def strided(self) -> bool:
        """Non-unit, non-repeated stride?"""
        return abs(self.stride_bytes) > self.elem_bytes

    @property
    def volume_bytes(self) -> int:
        return self.n_accesses * self.elem_bytes


def resolve_policies(streams: Iterable[StreamDecl],
                     prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                     detector: StreamDetector = None) -> dict:
    """Resolve the store policy for every write stream in a loop nest.

    The stream detector is primed with every declared stream (hardware
    detects both load and store streams); then each write stream's
    policy is resolved against the global "any strided stream active"
    state, per :mod:`repro.machine.store`.
    """
    streams = list(streams)
    detector = detector or StreamDetector()
    for s in streams:
        detector.observe_regular(s.name, s.stride_bytes, s.n_accesses, s.base)
    policies = {}
    for s in streams:
        if not s.is_write:
            continue
        ctx = StoreContext(
            sequential=s.sequential,
            strided_stream_active=detector.any_strided_detected(s.elem_bytes),
            interarrival=s.interarrival,
            prefetch=prefetch,
        )
        policies[s.name] = resolve_store_policy(ctx)
    return policies


def interleave(*iterators: Iterator[Access]) -> Iterator[Access]:
    """Round-robin interleave of several access iterators (models the
    in-order issue of a loop body touching several arrays)."""
    active: List[Iterator[Access]] = list(iterators)
    while active:
        still = []
        for it in active:
            try:
                yield next(it)
            except StopIteration:
                continue
            still.append(it)
        active = still
