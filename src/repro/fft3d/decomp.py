"""Pencil decomposition of the N³ array over an r × c processor grid.

Following the paper's 3D-FFT ([11], [12]): the global complex array
``A ∈ C^{N×N×N}`` is decomposed so each MPI rank holds a local block of
shape ``(N/r, N/c, N)`` — PLANES × ROWS × COLS in the listings'
nomenclature. This module handles the slab bookkeeping: scatter a
global array into per-rank local blocks and gather it back, plus the
local-shape arithmetic shared by the resort kernels and the FFT
driver.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..mpi.grid import ProcessorGrid


@dataclasses.dataclass(frozen=True)
class LocalBlock:
    """Dimensions of one rank's block (Listing nomenclature)."""

    planes: int  # N / r
    rows: int    # N / c
    cols: int    # N

    @property
    def elements(self) -> int:
        return self.planes * self.rows * self.cols

    @property
    def nbytes(self) -> int:
        return self.elements * 16  # double complex

    @property
    def shape(self):
        return (self.planes, self.rows, self.cols)


def local_block(n: int, grid: ProcessorGrid) -> LocalBlock:
    """Local block dimensions for a global N³ problem on ``grid``."""
    planes, rows, cols = grid.local_shape(n)
    return LocalBlock(planes=planes, rows=rows, cols=cols)


def scatter(global_array: np.ndarray, grid: ProcessorGrid) -> List[np.ndarray]:
    """Split a global (N, N, N) array into per-rank local blocks.

    Rank (row, col) of the grid owns
    ``global[row·N/r:(row+1)·N/r, col·N/c:(col+1)·N/c, :]``.
    """
    n = global_array.shape[0]
    if global_array.shape != (n, n, n):
        raise ConfigurationError(
            f"expected a cubic array, got shape {global_array.shape}")
    blk = local_block(n, grid)
    out = []
    for rank in range(grid.size):
        r, c = grid.coords_of(rank)
        out.append(np.ascontiguousarray(
            global_array[r * blk.planes:(r + 1) * blk.planes,
                         c * blk.rows:(c + 1) * blk.rows, :]))
    return out


def gather(blocks: List[np.ndarray], grid: ProcessorGrid) -> np.ndarray:
    """Inverse of :func:`scatter`."""
    if len(blocks) != grid.size:
        raise ConfigurationError(
            f"need {grid.size} blocks, got {len(blocks)}")
    planes, rows, cols = blocks[0].shape
    n = cols
    if planes * grid.rows != n or rows * grid.cols != n:
        raise ConfigurationError("block shapes inconsistent with grid")
    out = np.empty((n, n, n), dtype=blocks[0].dtype)
    for rank, block in enumerate(blocks):
        r, c = grid.coords_of(rank)
        out[r * planes:(r + 1) * planes, c * rows:(c + 1) * rows, :] = block
    return out
