"""The 3D-FFT mini-app: instrumented execution on a simulated cluster.

:class:`FFT3DApp` runs the paper's distributed 3D-FFT at production
scale (N up to 2016 and beyond) on a :class:`~repro.mpi.Cluster`,
driving every rank's hardware — resort traffic into the nest counters,
cuFFT batches through the GPUs (H2D read bursts / power spikes / D2H
write bursts), and All2Alls through the InfiniBand ports. It exposes
the run as profiler :class:`~repro.measure.timeline.Step` objects so
:class:`~repro.measure.timeline.MultiComponentProfiler` can regenerate
Fig 11, and per-rank traffic summaries for Fig 10.

No N³ array is allocated: production sizes are accounted analytically
through the same traffic laws the exact engine validates at small
sizes, while the numerics of the algorithm are verified separately in
:mod:`repro.fft3d.fft`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..engine.executor import Executor
from ..errors import ConfigurationError
from ..gpu.cufft import CufftPlan1D
from ..machine.cache import TrafficCounters
from ..machine.config import MachineConfig, SUMMIT
from ..measure.timeline import Step
from ..mpi.comm import Cluster, SimComm
from ..mpi.grid import ProcessorGrid
from ..noise import NoiseConfig
from .decomp import LocalBlock, local_block
from .fft import BACKWARD_PHASES, FORWARD_PHASES, PhaseSpec
from .resort import ROUTINES


@dataclasses.dataclass
class RankTraffic:
    """Per-rank nest traffic attributed to one phase (Fig 10 rows)."""

    phase: str
    rank: int
    read_bytes: int
    write_bytes: int
    seconds: float

    @property
    def reads_per_write(self) -> float:
        return (self.read_bytes / self.write_bytes
                if self.write_bytes else float("inf"))

    @property
    def bandwidth(self) -> float:
        total = self.read_bytes + self.write_bytes
        return total / self.seconds if self.seconds > 0 else 0.0


class FFT3DApp:
    """One forward 3D-FFT across a simulated cluster."""

    def __init__(self, n: int, grid: ProcessorGrid,
                 machine: MachineConfig = SUMMIT,
                 use_gpu: bool = True, seed: Optional[int] = None,
                 noise: Optional[NoiseConfig] = None,
                 compiler_flags: str = "",
                 direction: str = "forward"):
        if direction not in ("forward", "backward", "roundtrip"):
            raise ConfigurationError(
                "direction must be forward, backward, or roundtrip")
        self.direction = direction
        ranks_per_node = machine.n_sockets
        if grid.size % ranks_per_node:
            raise ConfigurationError(
                f"grid size {grid.size} not divisible by "
                f"{ranks_per_node} ranks per node")
        n_nodes = grid.size // ranks_per_node
        self.n = n
        self.grid = grid
        self.use_gpu = use_gpu and machine.gpus_per_socket > 0
        self.cluster = Cluster(machine, n_nodes, seed=seed, noise=noise)
        self.comm = SimComm(self.cluster)
        self.block: LocalBlock = local_block(n, grid)
        from ..kernels.compiler import compile_kernel

        self.compiler = compile_kernel(compiler_flags)
        self.seed = seed
        self._executors = [Executor(node) for node in self.cluster.nodes]
        #: Per-phase, per-rank traffic records (filled while running).
        self.records: List[RankTraffic] = []

    # ------------------------------------------------------------------
    @property
    def phases(self) -> List[PhaseSpec]:
        if self.direction == "forward":
            return list(FORWARD_PHASES)
        if self.direction == "backward":
            return list(BACKWARD_PHASES)
        return list(FORWARD_PHASES) + list(BACKWARD_PHASES)

    def _executor_of(self, rank: int) -> Executor:
        return self._executors[self.comm.placements[rank].node_index]

    def _sub_block(self, slices: int) -> LocalBlock:
        """A 1/slices slice of the local block (planes dimension)."""
        planes = max(1, self.block.planes // slices)
        return LocalBlock(planes=planes, rows=self.block.rows,
                          cols=self.block.cols)

    # ------------------------------------------------------------------
    # phase implementations (each runs ALL ranks concurrently: traffic
    # is recorded per rank, then every clock advances together once)
    # ------------------------------------------------------------------
    def _run_resort_slice(self, spec: PhaseSpec, sub: LocalBlock) -> None:
        kernel_cls = ROUTINES[spec.routine]
        duration = 0.0
        before: Dict[int, TrafficCounters] = {}
        for rank in range(self.comm.size):
            placement = self.comm.placements[rank]
            kernel = kernel_cls(sub, seed=self.seed)
            record = self._executor_of(rank).run(
                kernel, socket_id=placement.socket_id, n_cores=1,
                prefetch=self.compiler.prefetch, noisy=True,
                assume_socket_busy=True, advance_clock=False,
            )
            duration = max(duration, record.runtime_per_rep)
            before[rank] = record.recorded_traffic
        self.cluster.advance_all(duration)
        for rank, traffic in before.items():
            self.records.append(RankTraffic(
                phase=spec.name, rank=rank,
                read_bytes=traffic.read_bytes,
                write_bytes=traffic.write_bytes,
                seconds=duration,
            ))

    def _run_fft_slice(self, spec: PhaseSpec, sub: LocalBlock) -> List[Step]:
        """GPU path: three sub-steps (H2D, kernel, D2H); CPU path: one."""
        pencils = sub.planes * sub.rows
        plan = CufftPlan1D(n=self.block.cols, batch=pencils)
        if self.use_gpu:
            return [
                Step(spec.name, lambda: self._gpu_h2d(plan)),
                Step(spec.name, lambda: self._gpu_exec(plan)),
                Step(spec.name, lambda: self._gpu_d2h(plan)),
            ]
        return [Step(spec.name, lambda: self._cpu_fft(plan))]

    def _each_rank_gpu(self):
        for rank in range(self.comm.size):
            placement = self.comm.placements[rank]
            node = self.cluster.nodes[placement.node_index]
            gpus = node.gpus_on_socket(placement.socket_id)
            if not gpus:
                raise ConfigurationError("GPU phase on a GPU-less socket")
            yield rank, gpus[0]

    def _gpu_h2d(self, plan: CufftPlan1D) -> None:
        duration = 0.0
        for _, gpu in self._each_rank_gpu():
            duration = max(duration, gpu.h2d(plan.bytes_in,
                                             advance_clock=False))
        self.cluster.advance_all(duration)

    def _gpu_exec(self, plan: CufftPlan1D) -> None:
        duration = 0.0
        for _, gpu in self._each_rank_gpu():
            duration = max(duration, gpu.execute(plan.flops,
                                                 advance_clock=False))
        self.cluster.advance_all(duration)

    def _gpu_d2h(self, plan: CufftPlan1D) -> None:
        duration = 0.0
        for _, gpu in self._each_rank_gpu():
            duration = max(duration, gpu.d2h(plan.bytes_out,
                                             advance_clock=False))
        self.cluster.advance_all(duration)

    def _cpu_fft(self, plan: CufftPlan1D) -> None:
        """CPU 1-D FFT batch: one streaming read + write of the batch."""
        duration = 0.0
        for rank in range(self.comm.size):
            placement = self.comm.placements[rank]
            node = self.cluster.nodes[placement.node_index]
            sock = node.socket(placement.socket_id)
            sock.record_traffic(read_bytes=plan.bytes_in,
                                write_bytes=plan.bytes_out)
            cores = len(sock.usable_cores)
            compute = plan.flops / (sock.config.core_flops * cores)
            memory = (plan.bytes_in + plan.bytes_out) / sock.config.memory_bandwidth
            duration = max(duration, compute, memory)
        self.cluster.advance_all(duration)

    def _run_all2all_slice(self, spec: PhaseSpec, fraction: float) -> None:
        """Exchange within grid rows or columns, by phase.

        Forward: all2all-1 crosses rows, all2all-2 columns. Backward
        mirrors the order, so all2all-3 crosses columns and all2all-4
        rows again."""
        row_wise = spec.name.endswith(("1", "4"))
        groups = ([self.grid.row_ranks(i) for i in range(self.grid.rows)]
                  if row_wise
                  else [self.grid.col_ranks(j) for j in range(self.grid.cols)])
        duration = 0.0
        for group in groups:
            peers = len(group)
            if peers < 2:
                continue
            per_pair = int(self.block.nbytes * fraction / peers)
            duration = max(duration, self.comm.alltoall_bytes(
                per_pair, ranks=group, advance=False))
        if duration > 0.0:
            self.cluster.advance_all(duration)

    # ------------------------------------------------------------------
    def steps(self, slices_per_phase: int = 4) -> List[Step]:
        """The whole run as profiler steps (phase × slice)."""
        if slices_per_phase < 1:
            raise ConfigurationError("slices_per_phase must be >= 1")
        sub = self._sub_block(slices_per_phase)
        out: List[Step] = []
        for spec in self.phases:
            for _ in range(slices_per_phase):
                if spec.kind == "resort":
                    out.append(Step(spec.name,
                                    lambda s=spec: self._run_resort_slice(s, sub)))
                elif spec.kind == "fft":
                    out.extend(self._run_fft_slice(spec, sub))
                elif spec.kind == "all2all":
                    out.append(Step(spec.name,
                                    lambda s=spec: self._run_all2all_slice(
                                        s, 1.0 / slices_per_phase)))
                else:  # pragma: no cover - defensive
                    raise ConfigurationError(f"unknown phase kind {spec.kind}")
        return out

    def run(self, slices_per_phase: int = 4) -> None:
        """Execute the whole pipeline without profiling."""
        for step in self.steps(slices_per_phase):
            step.run()

    # ------------------------------------------------------------------
    def resort_summary(self, phase: str) -> List[RankTraffic]:
        """All per-rank records of one resort phase (Fig 10 inputs)."""
        return [r for r in self.records if r.phase == phase]
