"""Data re-sorting routines of the distributed 3D-FFT (paper §IV).

Four routines move data between the layout the 1-D FFTs want and the
layout the All2All exchanges produce:

* ``store_1st_colwise_forward`` (S1CF) — studied in depth as three
  variants: the original two loop nests (Listings 5 and 7), and the
  combined single nest (Listing 8);
* ``store_1st_planewise_forward`` (S1PF) — same structure as S1CF;
* ``store_2nd_colwise_forward`` (S2CF, Listing 9) — effectively
  stride-free;
* ``store_2nd_planewise_forward`` (S2PF) — same structure as S2CF.

Every variant is a :class:`~repro.engine.trace.KernelModel`: NumPy
numerics (transposition — verified against ``np.transpose`` in tests),
stream declarations, the analytic traffic law, an exact trace for
small sizes, and the *paper's* expectation. The traffic behaviours the
paper teases out — cache-bypassing sequential stores, read-per-write
under strided streams, the ×4 line amplification past Eq. 7's
boundary, the effect of ``-fprefetch-loop-arrays`` — all emerge from
the shared policy/traffic primitives, not per-kernel special cases.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

import numpy as np

from ..engine.analytic import (
    CacheContext,
    combine,
    sequential_read,
    sequential_write,
    strided_access,
)
from ..engine.stream import (
    Access,
    BatchTrace,
    StreamDecl,
    resolve_policies,
)
from ..engine.trace import KernelModel
from ..errors import ConfigurationError
from ..machine.cache import TrafficCounters
from ..machine.prefetch import SoftwarePrefetch
from ..rng import substream
from ..units import DOUBLE_COMPLEX
from .decomp import LocalBlock


def _make_block_data(block: LocalBlock, seed: Optional[int]) -> np.ndarray:
    rng = substream(seed, f"resort-{block.planes}x{block.rows}x{block.cols}")
    real = rng.standard_normal(block.elements)
    imag = rng.standard_normal(block.elements)
    return (real + 1j * imag).astype(np.complex128)


@dataclasses.dataclass
class _ResortKernel(KernelModel):
    """Shared plumbing for all re-sorting kernel models."""

    block: LocalBlock
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.block.elements <= 0:
            raise ConfigurationError("empty local block")
        self.name = (f"{self.routine}-{self.block.planes}x"
                     f"{self.block.rows}x{self.block.cols}")

    routine = "resort"

    @property
    def elements(self) -> int:
        return self.block.elements

    @property
    def nbytes(self) -> int:
        return self.block.nbytes

    def flops(self) -> float:
        return 0.0  # pure data movement

    def make_input(self) -> np.ndarray:
        return _make_block_data(self.block, self.seed)


# ======================================================================
# S1CF loop nest 1 (Listing 5): in[1D] -> tmp[3D], both sequential
# ======================================================================
class S1CFLoopNest1(_ResortKernel):
    """Sequential copy — the cache-bypass showcase (Fig 6).

    No stride anywhere, so the stores to ``tmp`` bypass the cache: the
    paper *expects* two reads (in, plus read-per-write on tmp) "but we
    only observe one read". Compiling with ``-fprefetch-loop-arrays``
    inserts ``dcbtst`` and the second read appears (Fig 6b).
    """

    routine = "s1cf-ln1"

    def compute(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        data = self.make_input() if data is None else data
        return data.reshape(self.block.shape).copy()

    def streams(self) -> List[StreamDecl]:
        e = DOUBLE_COMPLEX
        return [
            StreamDecl("in", False, self.elements, e, e, self.nbytes, base=0),
            StreamDecl("tmp", True, self.elements, e, e, self.nbytes,
                       base=self.nbytes + 256, interarrival=1),
        ]

    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        return combine(
            sequential_read(self.nbytes, ctx),
            sequential_write(self.nbytes, ctx, policies["tmp"]),
        )

    def exact_accesses(self) -> Iterator[Access]:
        e = DOUBLE_COMPLEX
        tmp_base = self.nbytes + 256
        for i in range(self.elements):
            yield Access("in", i * e, e, False)
            yield Access("tmp", tmp_base + i * e, e, True)

    def exact_trace(self) -> BatchTrace:
        e = DOUBLE_COMPLEX
        idx = np.arange(self.elements, dtype=np.int64) * e
        return BatchTrace.interleaved([
            ("in", idx, e, False),
            ("tmp", self.nbytes + 256 + idx, e, True),
        ])

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Paper expectation: 2 reads (in + tmp RFO), 1 write."""
        return TrafficCounters(read_bytes=2 * self.nbytes,
                               write_bytes=self.nbytes)

    def bandwidth_efficiency(self, prefetch=SoftwarePrefetch()) -> float:
        return 0.95 if prefetch.dcbt else 0.85


# ======================================================================
# S1CF loop nest 2 (Listing 7): tmp[3D] -> out[1D], tmp strided
# ======================================================================
class S1CFLoopNest2(_ResortKernel):
    """Strided gather — the Eq. 7 amplification showcase (Fig 7).

    ``tmp`` is traversed COLS-major against its PLANES-major layout:
    stride PLANES·ROWS elements. The strided stream (a) forces ``out``
    to write-allocate (read per write) and (b) past Eq. 7's boundary
    costs a whole 64 B granule per 16 B element — up to 5 reads per
    write.
    """

    routine = "s1cf-ln2"

    def compute(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        data = self.make_input() if data is None else data
        tmp = data.reshape(self.block.shape)
        return np.ascontiguousarray(tmp.transpose(2, 0, 1)).ravel()

    # ------------------------------------------------------------------
    @property
    def stride_elems(self) -> int:
        return self.block.planes * self.block.rows

    def streams(self) -> List[StreamDecl]:
        e = DOUBLE_COMPLEX
        return [
            StreamDecl("tmp", False, self.elements, e,
                       self.stride_elems * e, self.nbytes, base=0),
            StreamDecl("out", True, self.elements, e, e, self.nbytes,
                       base=self.nbytes + 256, interarrival=1),
        ]

    def working_set_bytes(self, granule: int = 64) -> int:
        """Eq. 7's left-hand side: one granule per in-flight tmp line
        (PLANES·ROWS of them) plus the interleaved stretch of out."""
        per_stride = self.stride_elems
        return per_stride * granule + per_stride * DOUBLE_COMPLEX

    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        tmp = strided_access(
            n_accesses=self.elements, elem_bytes=DOUBLE_COMPLEX, ctx=ctx,
            working_set_bytes=self.working_set_bytes(ctx.granule),
            footprint_bytes=self.nbytes,
        )
        out = sequential_write(self.nbytes, ctx, policies["out"])
        return combine(tmp, out)

    def exact_accesses(self) -> Iterator[Access]:
        e = DOUBLE_COMPLEX
        p, r, c = self.block.shape
        out_base = self.nbytes + 256
        idx = 0
        for col in range(c):
            for plane in range(p):
                for row in range(r):
                    src = (plane * r + row) * c + col
                    yield Access("tmp", src * e, e, False)
                    yield Access("out", out_base + idx * e, e, True)
                    idx += 1

    def exact_trace(self) -> BatchTrace:
        e = DOUBLE_COMPLEX
        p, r, c = self.block.shape
        t = np.arange(self.elements, dtype=np.int64)
        # loop order (col, plane, row), innermost last
        row = t % r
        plane = (t // r) % p
        col = t // (r * p)
        src = (plane * r + row) * c + col
        return BatchTrace.interleaved([
            ("tmp", src * e, e, False),
            ("out", self.nbytes + 256 + t * e, e, True),
        ])

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Paper expectation before measuring: 2 reads (tmp + out RFO),
        1 write — the strided amplification is the *measured* excess."""
        return TrafficCounters(read_bytes=2 * self.nbytes,
                               write_bytes=self.nbytes)

    def bandwidth_efficiency(self, prefetch=SoftwarePrefetch()) -> float:
        # Large-stride gathers are latency-bound; dcbt prefetch "shows
        # a significant improvement in performance" (Fig 7b).
        return 0.80 if prefetch.dcbt else 0.30


# ======================================================================
# S1CF combined nest (Listing 8): in -> out directly, out strided
# ======================================================================
class S1CFCombined(_ResortKernel):
    """Single-nest S1CF: sequential reads, strided writes (Fig 8).

    The write stride keeps stores from bypassing (read per write), but
    out's granules are revisited within a short window (one COLS sweep)
    so no ×4 amplification occurs: exactly 2 reads and 1 write per
    element, "precisely what we observe".
    """

    routine = "s1cf"

    def compute(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        data = self.make_input() if data is None else data
        tmp = data.reshape(self.block.shape)
        return np.ascontiguousarray(tmp.transpose(2, 0, 1)).ravel()

    @property
    def stride_elems(self) -> int:
        return self.block.planes * self.block.rows

    def streams(self) -> List[StreamDecl]:
        e = DOUBLE_COMPLEX
        return [
            StreamDecl("in", False, self.elements, e, e, self.nbytes, base=0),
            StreamDecl("out", True, self.elements, e,
                       self.stride_elems * e, self.nbytes,
                       base=self.nbytes + 256, interarrival=1),
        ]

    def working_set_bytes(self, granule: int = 64) -> int:
        # One sweep of the innermost (col) loop touches COLS granules of
        # out plus COLS elements of in before out's granules are reused.
        return self.block.cols * (granule + DOUBLE_COMPLEX)

    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        inp = sequential_read(self.nbytes, ctx)
        out = strided_access(
            n_accesses=self.elements, elem_bytes=DOUBLE_COMPLEX, ctx=ctx,
            working_set_bytes=self.working_set_bytes(ctx.granule),
            footprint_bytes=self.nbytes, is_write=True,
            policy=policies["out"],
        )
        return combine(inp, out)

    def exact_accesses(self) -> Iterator[Access]:
        e = DOUBLE_COMPLEX
        p, r, c = self.block.shape
        out_base = self.nbytes + 256
        for plane in range(p):
            for row in range(r):
                for col in range(c):
                    src = (plane * r + row) * c + col
                    dst = (col * p + plane) * r + row
                    yield Access("in", src * e, e, False)
                    yield Access("out", out_base + dst * e, e, True)

    def exact_trace(self) -> BatchTrace:
        e = DOUBLE_COMPLEX
        p, r, c = self.block.shape
        t = np.arange(self.elements, dtype=np.int64)
        # loop order (plane, row, col), innermost last; src sequential
        col = t % c
        row = (t // c) % r
        plane = t // (c * r)
        dst = (col * p + plane) * r + row
        return BatchTrace.interleaved([
            ("in", t * e, e, False),
            ("out", self.nbytes + 256 + dst * e, e, True),
        ])

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Fig 8 / Fig 10 expectation: 2 reads, 1 write per element."""
        return TrafficCounters(read_bytes=2 * self.nbytes,
                               write_bytes=self.nbytes)

    def bandwidth_efficiency(self, prefetch=SoftwarePrefetch()) -> float:
        return 0.75 if prefetch.dcbt else 0.55


class S1PF(S1CFCombined):
    """store_1st_planewise_forward: "the structure and performance of
    S1PF ... are similar to those of S1CF"."""

    routine = "s1pf"


# ======================================================================
# S2CF (Listing 9): block-sequential copy, stride amortised
# ======================================================================
class S2CF(_ResortKernel):
    """Second re-sort: "not completely stride-free, but the innermost
    dimension of the traversal matches the innermost dimension of the
    ordering of in, [so] the effect of the stride is amortized" — the
    stores bypass the cache: 1 read, 1 write per element (Fig 9a).
    With ``-fprefetch-loop-arrays``, dcbtst forces the out read (9b).
    """

    routine = "s2cf"

    def __post_init__(self) -> None:
        super().__post_init__()
        # Split COLS into (Y, X) receive-block factors; Y is the number
        # of peers the preceding All2All gathered from.
        self.y_factor = self._pick_y_factor()

    def _pick_y_factor(self) -> int:
        cols = self.block.cols
        for y in (8, 4, 2):
            if cols % y == 0:
                return y
        return 1

    def compute(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        data = self.make_input() if data is None else data
        p, r, c = self.block.shape
        y = self.y_factor
        x = c // y
        arr = data.reshape(y, p, x, r)
        return np.ascontiguousarray(arr.transpose(1, 2, 0, 3)).ravel()

    @property
    def run_elems(self) -> int:
        """Length of each contiguous innermost run (ROWS)."""
        return self.block.rows

    def streams(self) -> List[StreamDecl]:
        e = DOUBLE_COMPLEX
        # in moves in contiguous runs of ROWS elements; between runs the
        # base jumps, but within runs the stride is unit — the detector
        # sees a (block-)sequential stream, so no strided stream gates
        # the store bypass.
        return [
            StreamDecl("in", False, self.elements, e, e, self.nbytes, base=0),
            StreamDecl("out", True, self.elements, e, e, self.nbytes,
                       base=self.nbytes + 256, interarrival=1),
        ]

    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        return combine(
            sequential_read(self.nbytes, ctx),
            sequential_write(self.nbytes, ctx, policies["out"]),
        )

    def exact_accesses(self) -> Iterator[Access]:
        e = DOUBLE_COMPLEX
        p, r, c = self.block.shape
        y = self.y_factor
        x = c // y
        out_base = self.nbytes + 256
        idx = 0
        for plane in range(p):
            for xx in range(x):
                for yy in range(y):
                    for row in range(r):
                        src = ((yy * p + plane) * x + xx) * r + row
                        yield Access("in", src * e, e, False)
                        yield Access("out", out_base + idx * e, e, True)
                        idx += 1

    def exact_trace(self) -> BatchTrace:
        e = DOUBLE_COMPLEX
        p, r, c = self.block.shape
        y = self.y_factor
        x = c // y
        t = np.arange(self.elements, dtype=np.int64)
        # loop order (plane, xx, yy, row), innermost last; out sequential
        row = t % r
        yy = (t // r) % y
        xx = (t // (r * y)) % x
        plane = t // (r * y * x)
        src = ((yy * p + plane) * x + xx) * r + row
        return BatchTrace.interleaved([
            ("in", src * e, e, False),
            ("out", self.nbytes + 256 + t * e, e, True),
        ])

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Fig 9a / Fig 10 expectation: 1 read, 1 write per element."""
        return TrafficCounters(read_bytes=self.nbytes,
                               write_bytes=self.nbytes)

    def bandwidth_efficiency(self, prefetch=SoftwarePrefetch()) -> float:
        # "These two re-sorting phases also realize higher bandwidth due
        # to better locality in their access patterns."
        return 0.95 if prefetch.dcbt else 0.90


class S2PF(S2CF):
    """store_2nd_planewise_forward: same structure as S2CF."""

    routine = "s2pf"


class S1CB(S1CFCombined):
    """Backward (inverse) colwise re-sort: the transpose of S1CF —
    same strided structure, same 2 R : 1 W signature."""

    routine = "s1cb"


class S1PB(S1CFCombined):
    routine = "s1pb"


class S2CB(S2CF):
    """Backward second re-sort: stride amortised, 1 R : 1 W."""

    routine = "s2cb"


class S2PB(S2CF):
    routine = "s2pb"


#: The forward routines by their paper abbreviations, plus the
#: backward (inverse-pipeline) counterparts.
ROUTINES = {
    "S1CF": S1CFCombined,
    "S1PF": S1PF,
    "S2CF": S2CF,
    "S2PF": S2PF,
    "S1CB": S1CB,
    "S1PB": S1PB,
    "S2CB": S2CB,
    "S2PB": S2PB,
}
