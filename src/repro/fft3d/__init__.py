"""Distributed 3D-FFT mini-app: pencil decomposition, re-sorting
routines (S1CF/S1PF/S2CF/S2PF), the verified distributed transform, and
the instrumented cluster application used for Figs 6-11."""

from .app import FFT3DApp, RankTraffic
from .decomp import LocalBlock, gather, local_block, scatter
from .fft import FORWARD_PHASES, Distributed3DFFT, PhaseSpec
from .resort import (
    ROUTINES,
    S1CFCombined,
    S1CFLoopNest1,
    S1CFLoopNest2,
    S1PF,
    S2CF,
    S2PF,
)

__all__ = [
    "Distributed3DFFT",
    "FFT3DApp",
    "FORWARD_PHASES",
    "LocalBlock",
    "PhaseSpec",
    "ROUTINES",
    "RankTraffic",
    "S1CFCombined",
    "S1CFLoopNest1",
    "S1CFLoopNest2",
    "S1PF",
    "S2CF",
    "S2PF",
    "gather",
    "local_block",
    "scatter",
]
