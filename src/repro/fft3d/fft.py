"""Distributed 3D-FFT (pencil decomposition over an r × c grid).

The numeric path runs the genuinely distributed algorithm — per-rank
blocks, 1-D FFT sweeps, block exchanges within row/column groups of
the grid, and re-sorts — and is verified against ``numpy.fft.fftn`` in
tests. All ranks live in one process (see :mod:`repro.mpi`), but no
rank ever touches another rank's block except through the exchange
helpers, so the data movement is the real algorithm's.

Phase structure (matches Fig 11's narrative):

====  ==============  =========================================
#     phase           hardware signature
====  ==============  =========================================
1     fft-z           H2D read burst, GPU power spike, D2H write
2     s1cf            resort, 2 reads : 1 write
3     all2all-1       InfiniBand ``port_recv_data`` jump
4     s2cf            resort, 1 read : 1 write, higher bandwidth
5     fft-y           like fft-z
6     s1pf            like s1cf
7     all2all-2       like all2all-1
8     s2pf            like s2cf
9     fft-x           like fft-z
====  ==============  =========================================
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..mpi.grid import ProcessorGrid
from .decomp import LocalBlock, local_block, scatter


@dataclasses.dataclass(frozen=True)
class PhaseSpec:
    """One phase of the distributed FFT pipeline."""

    name: str
    kind: str  # "fft" | "resort" | "all2all"
    #: For resorts: which routine ("S1CF", "S2CF", "S1PF", "S2PF").
    routine: Optional[str] = None
    #: For FFTs: transform axis label.
    axis: Optional[str] = None


#: The canonical forward pipeline.
FORWARD_PHASES: List[PhaseSpec] = [
    PhaseSpec("fft-z", "fft", axis="z"),
    PhaseSpec("s1cf", "resort", routine="S1CF"),
    PhaseSpec("all2all-1", "all2all"),
    PhaseSpec("s2cf", "resort", routine="S2CF"),
    PhaseSpec("fft-y", "fft", axis="y"),
    PhaseSpec("s1pf", "resort", routine="S1PF"),
    PhaseSpec("all2all-2", "all2all"),
    PhaseSpec("s2pf", "resort", routine="S2PF"),
    PhaseSpec("fft-x", "fft", axis="x"),
]

#: The backward (inverse) pipeline: the forward phases mirrored. Each
#: inverse re-sort is the transpose of its forward partner, so the
#: roles swap: the inverses of the stride-amortised S2*F copies stay
#: 1 read : 1 write, while the inverses of the S1*F transposes keep
#: the strided side (now on the writes) and stay 2 reads : 1 write —
#: the "store" routines' traffic identities are direction-symmetric.
BACKWARD_PHASES: List[PhaseSpec] = [
    PhaseSpec("ifft-x", "fft", axis="x"),
    PhaseSpec("s2pb", "resort", routine="S2PB"),
    PhaseSpec("all2all-3", "all2all"),
    PhaseSpec("s1pb", "resort", routine="S1PB"),
    PhaseSpec("ifft-y", "fft", axis="y"),
    PhaseSpec("s2cb", "resort", routine="S2CB"),
    PhaseSpec("all2all-4", "all2all"),
    PhaseSpec("s1cb", "resort", routine="S1CB"),
    PhaseSpec("ifft-z", "fft", axis="z"),
]


class Distributed3DFFT:
    """Pencil-decomposed 3D-FFT over a 2-D processor grid."""

    def __init__(self, n: int, grid: ProcessorGrid):
        if n <= 0:
            raise ConfigurationError("N must be positive")
        grid.local_shape(n)  # validates divisibility
        self.n = n
        self.grid = grid

    # ------------------------------------------------------------------
    @property
    def block(self) -> LocalBlock:
        return local_block(self.n, self.grid)

    @property
    def phases(self) -> List[PhaseSpec]:
        return list(FORWARD_PHASES)

    # ------------------------------------------------------------------
    # numeric distributed algorithm
    # ------------------------------------------------------------------
    def forward_blocks(self, blocks: List[np.ndarray]) -> List[np.ndarray]:
        """Distributed forward transform of per-rank blocks.

        Input: rank (r, c) holds ``A[rP:(r+1)P, cR:(c+1)R, :]`` of shape
        (P, R, N). Output: rank (r, c) holds ``Â[:, rP:(r+1)P,
        cR:(c+1)R]`` — full (transformed) x axis, y/z distributed.
        """
        grid = self.grid
        n = self.n
        p = self.block.planes   # N / r
        if len(blocks) != grid.size:
            raise ConfigurationError(
                f"need {grid.size} blocks, got {len(blocks)}")
        # ---- phase 1: 1-D FFT along z (local, full axis) -------------
        blocks = [np.fft.fft(b, axis=2) for b in blocks]
        # ---- phases 2-4: exchange within grid *rows* to make y full --
        # Rank (r0, c0) splits its (P, R, N) block along z into `cols`
        # chunks and receives the matching chunks of every row peer,
        # concatenating along y: (P, R, N) -> (P, N, N/c).
        new_blocks: List[Optional[np.ndarray]] = [None] * grid.size
        for row in range(grid.rows):
            ranks = grid.row_ranks(row)
            c = grid.cols
            z_chunk = n // c
            for j, dst in enumerate(ranks):
                pieces = [
                    blocks[src][:, :, j * z_chunk:(j + 1) * z_chunk]
                    for src in ranks
                ]
                new_blocks[dst] = np.concatenate(pieces, axis=1)
        blocks = [np.ascontiguousarray(b) for b in new_blocks]
        # ---- phase 5: 1-D FFT along y (now full) ----------------------
        blocks = [np.fft.fft(b, axis=1) for b in blocks]
        # ---- phases 6-8: exchange within grid *columns* to make x full
        # (P, N, N/c) -> (N, N/r, N/c): split along y into `rows`
        # chunks of size P... the x axis is distributed over grid rows.
        new_blocks = [None] * grid.size
        for col in range(grid.cols):
            ranks = grid.col_ranks(col)
            for j, dst in enumerate(ranks):
                pieces = [
                    blocks[src][:, j * p:(j + 1) * p, :]
                    for src in ranks
                ]
                new_blocks[dst] = np.concatenate(pieces, axis=0)
        blocks = [np.ascontiguousarray(b) for b in new_blocks]
        # ---- phase 9: 1-D FFT along x (now full) ----------------------
        return [np.fft.fft(b, axis=0) for b in blocks]

    def backward_blocks(self, blocks: List[np.ndarray]) -> List[np.ndarray]:
        """Inverse transform: exactly the forward pipeline reversed.

        Takes blocks in the forward *output* distribution (full x,
        y-range per grid row, z-range per grid column) and returns
        blocks in the original input distribution, applying normalised
        inverse 1-D FFTs along each axis.
        """
        grid = self.grid
        p = self.block.planes
        if len(blocks) != grid.size:
            raise ConfigurationError(
                f"need {grid.size} blocks, got {len(blocks)}")
        # ---- inverse of phase 9: iFFT along x ------------------------
        blocks = [np.fft.ifft(b, axis=0) for b in blocks]
        # ---- inverse of phases 6-8: redistribute x over grid rows ----
        # (N, N/r, N/c) -> (N/r, N, N/c): each rank keeps its own x
        # chunk and receives the y chunks it owned before.
        new_blocks: List[Optional[np.ndarray]] = [None] * grid.size
        for col in range(grid.cols):
            ranks = grid.col_ranks(col)
            for j, dst in enumerate(ranks):
                pieces = [
                    blocks[src][j * p:(j + 1) * p, :, :]
                    for src in ranks
                ]
                new_blocks[dst] = np.concatenate(pieces, axis=1)
        blocks = [np.ascontiguousarray(b) for b in new_blocks]
        # ---- inverse of phase 5: iFFT along y -------------------------
        blocks = [np.fft.ifft(b, axis=1) for b in blocks]
        # ---- inverse of phases 2-4: redistribute y over grid columns -
        # (N/r, N, N/c) -> (N/r, N/c, N).
        new_blocks = [None] * grid.size
        r_ = self.block.rows
        for row in range(grid.rows):
            ranks = grid.row_ranks(row)
            for j, dst in enumerate(ranks):
                pieces = [
                    blocks[src][:, j * r_:(j + 1) * r_, :]
                    for src in ranks
                ]
                new_blocks[dst] = np.concatenate(pieces, axis=2)
        blocks = [np.ascontiguousarray(b) for b in new_blocks]
        # ---- inverse of phase 1: iFFT along z -------------------------
        return [np.fft.ifft(b, axis=2) for b in blocks]

    def forward_global(self, global_array: np.ndarray) -> np.ndarray:
        """Scatter, transform, and reassemble the full Â for testing."""
        blocks = self.forward_blocks(scatter(global_array, self.grid))
        n = self.n
        p = self.block.planes
        r_ = self.block.rows
        out = np.empty((n, n, n), dtype=np.complex128)
        for rank, blk in enumerate(blocks):
            row, col = self.grid.coords_of(rank)
            # After the pipeline, rank (row, col) holds full x, the y
            # range of its grid row, and the z range of its grid column.
            out[:, row * p:(row + 1) * p, col * r_:(col + 1) * r_] = blk
        return out
