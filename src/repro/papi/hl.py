"""PAPI high-level (region) API.

Mirrors PAPI's modern ``PAPI_hl_region_begin`` / ``PAPI_hl_region_end``
interface: name a region, and the library accumulates the configured
events for every dynamic instance of it, producing the per-region
report tools like ``papi_hl_output_writer`` render. Third-party tools
in the paper's ecosystem (TAU, Score-P, Caliper) wrap exactly this
pattern around user code.

Regions may nest; counts are attributed to every open region (as in
PAPI, which reads counters at each boundary). Example::

    hl = HighLevelApi(papi, events=all_pcp_events(node.config, 0))
    with hl.region("resort"):
        ...  # run work on the simulated node
    print(hl.report())
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, List, Sequence

from ..errors import PapiInvalidArgument
from .eventset import EventSet
from .papi import Papi


@dataclasses.dataclass
class RegionStats:
    """Accumulated counts for one named region."""

    name: str
    instances: int = 0
    totals: Dict[str, int] = dataclasses.field(default_factory=dict)
    seconds: float = 0.0

    def mean(self, event: str) -> float:
        if self.instances == 0:
            return 0.0
        return self.totals.get(event, 0) / self.instances


class HighLevelApi:
    """Region-based measurement over one event list."""

    def __init__(self, papi: Papi, events: Sequence[str]):
        if not events:
            raise PapiInvalidArgument("high-level API needs >= 1 event")
        self.papi = papi
        self.events = list(events)
        self._eventset: EventSet = papi.create_eventset()
        self._eventset.add_events(self.events)
        self._open: List[_OpenRegion] = []
        self.regions: Dict[str, RegionStats] = {}

    # ------------------------------------------------------------------
    def region_begin(self, name: str) -> None:
        """PAPI_hl_region_begin."""
        if not name:
            raise PapiInvalidArgument("region needs a name")
        if not self._eventset.running:
            self._eventset.start()
        snapshot = dict(zip(self.events, self._eventset.read()))
        self._open.append(_OpenRegion(name=name, snapshot=snapshot,
                                      t0=self.papi.node.clock))

    def region_end(self, name: str) -> None:
        """PAPI_hl_region_end (must match the innermost open region)."""
        if not self._open:
            raise PapiInvalidArgument(f"no region open (ending {name!r})")
        top = self._open[-1]
        if top.name != name:
            raise PapiInvalidArgument(
                f"region mismatch: ending {name!r} but innermost open "
                f"region is {top.name!r}")
        self._open.pop()
        # Timestamp before the closing counter read so the region's
        # duration covers user work, not the read's own round trip.
        t_end = self.papi.node.clock
        now = dict(zip(self.events, self._eventset.read()))
        stats = self.regions.setdefault(name, RegionStats(name=name))
        stats.instances += 1
        stats.seconds += t_end - top.t0
        for event in self.events:
            delta = now[event] - top.snapshot[event]
            stats.totals[event] = stats.totals.get(event, 0) + delta

    @contextlib.contextmanager
    def region(self, name: str):
        """Context-manager sugar over begin/end."""
        self.region_begin(name)
        try:
            yield self
        finally:
            self.region_end(name)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop counting (all regions must be closed)."""
        if self._open:
            raise PapiInvalidArgument(
                f"regions still open: {[r.name for r in self._open]}")
        if self._eventset.running:
            self._eventset.stop()

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-region totals (papi_hl_output_writer shape)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, stats in sorted(self.regions.items()):
            entry: Dict[str, float] = {
                "instances": stats.instances,
                "seconds": stats.seconds,
            }
            entry.update({e: float(v) for e, v in stats.totals.items()})
            out[name] = entry
        return out


@dataclasses.dataclass
class _OpenRegion:
    name: str
    snapshot: Dict[str, int]
    t0: float
