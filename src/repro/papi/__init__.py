"""PAPI-like multi-component measurement library (simulated).

The public surface mirrors PAPI-C: a library instance per node
(:func:`library_init` / :class:`Papi`), a component registry, and
per-component :class:`EventSet` objects with start/read/stop/reset
semantics. See the paper's Table I/II for the event spellings.
"""

from .component import Component, ComponentRegistry, NativeEventHandle
from .components import (
    InfinibandComponent,
    NVMLComponent,
    PCPComponent,
    PerfUncoreComponent,
    SamplingComponent,
)
from .consts import (
    COMPONENT_DELIMITER,
    PAPI_EINVAL,
    PAPI_EISRUN,
    PAPI_ENOCMP,
    PAPI_ENOEVNT,
    PAPI_ENOTRUN,
    PAPI_EPERM,
    PAPI_OK,
    PAPI_RUNNING,
    PAPI_STOPPED,
    PAPI_VER_CURRENT,
    strerror,
)
from .eventset import EventSet
from .hl import HighLevelApi, RegionStats
from .papi import Papi, library_init
from .sampling import SamplingConfig, SamplingObserver, TrafficEstimate

__all__ = [
    "COMPONENT_DELIMITER",
    "Component",
    "ComponentRegistry",
    "EventSet",
    "HighLevelApi",
    "InfinibandComponent",
    "RegionStats",
    "NVMLComponent",
    "NativeEventHandle",
    "PAPI_EINVAL",
    "PAPI_EISRUN",
    "PAPI_ENOCMP",
    "PAPI_ENOEVNT",
    "PAPI_ENOTRUN",
    "PAPI_EPERM",
    "PAPI_OK",
    "PAPI_RUNNING",
    "PAPI_STOPPED",
    "PAPI_VER_CURRENT",
    "PCPComponent",
    "Papi",
    "PerfUncoreComponent",
    "SamplingComponent",
    "SamplingConfig",
    "SamplingObserver",
    "TrafficEstimate",
    "library_init",
    "strerror",
]
