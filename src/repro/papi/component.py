"""PAPI component framework.

PAPI-C's defining feature — the reason the paper can correlate memory
traffic, GPU power and network traffic "via a single API" — is its
component architecture: every hardware data source is a plug-in
exposing native events behind one uniform interface. This module
defines that interface for the simulation:

* :class:`NativeEventHandle` — one opened native event; ``read()``
  returns the raw counter value. ``instantaneous`` marks gauge-style
  events (NVML power) that report levels rather than monotonic counts.
* :class:`Component` — enumerates, parses and opens native events; may
  declare a per-access read latency charged to the node clock.
* :class:`ComponentRegistry` — name → component lookup plus resolution
  of fully-qualified event names (``cmp:::event``).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Dict, List, Tuple

from ..errors import PapiNoComponent, PapiNoEvent
from .consts import COMPONENT_DELIMITER


@dataclasses.dataclass
class NativeEventHandle:
    """An opened native event bound to its data source."""

    name: str
    reader: Callable[[], int]
    component: "Component"
    #: Gauge events (e.g. power in mW) report current level, not a
    #: monotonically increasing count; EventSet.read passes the raw
    #: value through instead of computing a start-relative delta.
    instantaneous: bool = False
    #: Measurement units, for documentation/reporting.
    units: str = ""

    def read(self) -> int:
        return int(self.reader())


class Component(abc.ABC):
    """One PAPI component (a hardware data source plug-in)."""

    #: Component name as it appears before ``:::`` in event names.
    name: str = "component"
    #: Human-readable description (papi_component_avail output).
    description: str = ""
    #: Clock cost of one counter access through this component.
    read_latency_seconds: float = 0.0

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def list_events(self) -> List[str]:
        """All native event names (fully qualified) this component offers."""

    @abc.abstractmethod
    def open_event(self, name: str) -> NativeEventHandle:
        """Open one event; raises PapiNoEvent / PapiPermissionDenied."""

    # ------------------------------------------------------------------
    def owns_event(self, name: str) -> bool:
        """Default ownership test: the ``cmp:::`` prefix matches."""
        return name.startswith(self.name + COMPONENT_DELIMITER)

    def is_available(self) -> Tuple[bool, str]:
        """(available?, reason-if-not) — papi_component_avail style."""
        return True, ""

    def read_events(self, handles: List[NativeEventHandle]) -> List[int]:
        """Read several events at once.

        Subclasses with batched transports (the PCP component fetches
        every metric in one daemon round trip) override this; the
        default reads one by one.
        """
        return [h.read() for h in handles]

    def strip_prefix(self, name: str) -> str:
        prefix = self.name + COMPONENT_DELIMITER
        return name[len(prefix):] if name.startswith(prefix) else name


class ComponentRegistry:
    """All components known to one PAPI library instance."""

    def __init__(self) -> None:
        self._components: Dict[str, Component] = {}

    def register(self, component: Component) -> None:
        if component.name in self._components:
            raise PapiNoComponent(
                f"component {component.name!r} registered twice")
        self._components[component.name] = component

    def get(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise PapiNoComponent(
                f"no component named {name!r}; available: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._components)

    def __iter__(self):
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)

    # ------------------------------------------------------------------
    def resolve_event(self, event_name: str) -> Component:
        """Find the component owning a fully-qualified event name."""
        for component in self._components.values():
            if component.owns_event(event_name):
                return component
        raise PapiNoEvent(
            f"no component recognises event {event_name!r} "
            f"(components: {self.names()})"
        )
