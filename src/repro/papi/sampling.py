"""Statistical sampling profiler (ARM SPE / Intel PEBS style).

The exact engines answer "what is the true nest traffic" by
simulating every access. Production memory profilers answer it by
*sampling*: a hardware unit tags every N-th access (ARM SPE) or
arms a precise-event counter that fires every N-th event (PEBS),
captures a record — address, access kind, latency, cache level hit —
and leaves the rest of the stream unobserved. Traffic totals are
then *estimated* by scaling per-sample observations back up by the
sampling period.

:class:`SamplingObserver` reproduces that pipeline against the same
columnar :class:`~repro.engine.stream.BatchTrace` segments the
pipelined exact engine streams (``KernelModel.segments()`` /
``StoredTrace.segments`` / the ``PipelinedExactEngine.segment_tap``
hook):

* **Replay.** The observer advances a private
  :class:`~repro.machine.cache.CacheSim` over every row. This mirrors
  hardware, where the cache state a sample describes exists for free;
  only the *records* are sampled. The replay also makes the
  observer's own exact traffic available as the reference for
  accuracy ablations (it equals the exact engine's, property-tested).
* **Two trigger channels.** An *access* channel fires every
  ``period``-th access (mean; the gap is randomized by
  ``period_jitter`` exactly the way PEBS randomizes counter reload)
  and drives the read-traffic estimator. A *store* channel fires
  every ``store_period``-th store and drives the write-traffic
  estimator — stores are rare in read-dominated nests, so sampling
  them on their own axis keeps the rare-event variance bounded.
  Without gap randomization a periodic trigger aliases with periodic
  access patterns (every GEMM store sample would land on the same
  C-sector phase) and the estimators become badly biased — see
  DESIGN.md §6.4.
* **Skid.** Real precise events are not perfectly precise: the
  recorded instruction trails the triggering one by a fixed plus
  variable number of operations. ``skid``/``skid_jitter`` shift the
  recorded access by that many accesses (seeded via
  :func:`repro.rng.substream`), including across segment boundaries.
* **Records.** Each sample captures address, stream, access kind,
  simulated hit level (nest cache / memory / write-combining buffer)
  and the derived latency class, bounded by ``max_records``.

Estimators (ratio form — the PMU counts *all* accesses for free, so
totals are scaled by observed-count / sample-count, not by summing
gaps):

* ``est_read_bytes = granule * fetch_sectors_at_samples *
  n_accesses / n_access_samples`` — a sampled access's non-resident
  sectors are exactly the demand fetches it is about to cause.
* ``est_write_bytes = granule * (clean-to-dirty transitions +
  WCB sector completions at store samples) * n_stores /
  n_store_samples`` — every clean→dirty transition causes exactly
  one eventual write-back (eviction or final flush); every completed
  write-combining sector drains as one write transaction.

Both are exact at period 1 and converge with sample rate
(monotonically in expectation — property-tested).

The replay has two implementations with bit-identical results. The
default *vectorized* path collects a whole segment's trigger rows up
front — array-drawn from the same RNG streams as the scalar path,
draw for draw — and replays the segment through a single
:meth:`~repro.machine.cache.CacheSim.access_batch_probed` call (plus
write-combining slices between bypassed-store samples, a plane that
is state-independent of the cache). The *scalar* path
(``vectorized=False``) replays slice-by-slice and probes each sample
row individually; it is kept as the differential oracle, and the
vectorized path falls back to it per segment when a row spans
``n_sets`` or more cache lines (the one geometry where in-batch
state extraction cannot mirror probe-before-row).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..engine.envconfig import (
    default_sample_period,
    default_sample_skid,
    default_sample_skid_jitter,
    nonnegative_int,
    positive_int,
)
from ..engine.stream import BatchTrace, StreamDecl, resolve_policies
from ..errors import SimulationError
from ..machine.cache import CacheSim, TrafficCounters, expand_to_sectors
from ..machine.config import CacheConfig
from ..machine.store import SoftwarePrefetch, StorePolicy
from ..rng import substream

#: Simulated hit levels attached to sample records.
LEVEL_CACHE = 0    #: all sectors resident in the nest cache
LEVEL_MEMORY = 1   #: at least one sector demand-fetched from memory
LEVEL_WCB = 2      #: bypassed store gathered in the write-combining buffer

LEVEL_NAMES = {LEVEL_CACHE: "cache", LEVEL_MEMORY: "memory",
               LEVEL_WCB: "wcb"}
#: Latency class per hit level (SPE latency buckets / PEBS data
#: source encodings collapse to the same three-way split here).
LATENCY_CLASSES = {LEVEL_CACHE: "nest-hit", LEVEL_MEMORY: "dram",
                   LEVEL_WCB: "store-buffer"}

#: Trigger channels.
CHANNEL_ACCESS = 0
CHANNEL_STORE = 1

DEFAULT_MAX_RECORDS = 1 << 16


@dataclasses.dataclass
class SamplingConfig:
    """Validated sampling parameters (env-backed defaults).

    ``None`` fields resolve against the environment knobs
    (``REPRO_SAMPLE_PERIOD``, ``REPRO_SAMPLE_SKID``,
    ``REPRO_SAMPLE_JITTER``) or derived defaults at construction
    time, with the same parse-time validation as the engine knobs.
    """

    #: Mean accesses between access-channel samples.
    period: Optional[int] = None
    #: Half-width of the uniform gap randomization (must stay below
    #: ``period``; default ``period // 4`` with a floor of 1 whenever
    #: ``period > 1``). Zero disables it — and exposes the estimators
    #: to aliasing with periodic traces.
    period_jitter: Optional[int] = None
    #: Mean *stores* between store-channel samples
    #: (default ``max(1, period // 16)``).
    store_period: Optional[int] = None
    #: Gap randomization of the store channel (default like
    #: ``period_jitter``, on ``store_period``).
    store_jitter: Optional[int] = None
    #: Fixed skid: the recorded access trails the trigger by this
    #: many accesses.
    skid: Optional[int] = None
    #: Upper bound of the uniform random skid added to the fixed one.
    skid_jitter: Optional[int] = None
    #: Root seed for the trigger/skid random streams.
    seed: Optional[int] = None
    #: Per-sample records kept before dropping (drops are counted).
    max_records: int = DEFAULT_MAX_RECORDS

    def __post_init__(self) -> None:
        self.period = (default_sample_period() if self.period is None
                       else positive_int(self.period, "period"))
        if self.period_jitter is None:
            # Never default to an unjittered period > 1: a systematic
            # trigger phase-locks with periodic traces and the
            # estimators alias (GEMM's store channel would see either
            # every or no sector-dirtying store). Observed, not
            # hypothetical — see DESIGN.md §6.4.
            self.period_jitter = (min(1, self.period - 1)
                                  if self.period < 8 else self.period // 4)
        else:
            self.period_jitter = nonnegative_int(
                self.period_jitter, "period_jitter")
        if self.period_jitter >= self.period:
            raise SimulationError(
                f"period_jitter must be smaller than period, got "
                f"{self.period_jitter} >= {self.period}")
        if self.store_period is None:
            self.store_period = max(1, self.period // 16)
        else:
            self.store_period = positive_int(
                self.store_period, "store_period")
        if self.store_jitter is None:
            self.store_jitter = (
                min(1, self.store_period - 1)
                if self.store_period < 8 else self.store_period // 4)
        else:
            self.store_jitter = nonnegative_int(
                self.store_jitter, "store_jitter")
        if self.store_jitter >= self.store_period:
            raise SimulationError(
                f"store_jitter must be smaller than store_period, got "
                f"{self.store_jitter} >= {self.store_period}")
        self.skid = (default_sample_skid() if self.skid is None
                     else nonnegative_int(self.skid, "skid"))
        self.skid_jitter = (
            default_sample_skid_jitter() if self.skid_jitter is None
            else nonnegative_int(self.skid_jitter, "skid_jitter"))
        self.max_records = nonnegative_int(self.max_records,
                                           "max_records")


@dataclasses.dataclass
class TrafficEstimate:
    """Period-scaled traffic estimate (floats: scaled counts)."""

    read_bytes: float = 0.0
    write_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes


class _Channel:
    """One sampling trigger channel on its own event axis."""

    __slots__ = ("period", "jitter", "rng", "next_at", "fired")

    def __init__(self, period: int, jitter: int,
                 rng: np.random.Generator):
        self.period = period
        self.jitter = jitter
        self.rng = rng
        # Random initial phase in [0, period), like an armed counter
        # with a random preload — a fixed phase would bias systematic
        # sampling toward one pattern alignment. Period 1 degenerates
        # to phase 0: every event sampled.
        self.next_at = int(rng.integers(0, period))
        self.fired = 0

    def triggers(self, start: int, end: int) -> List[int]:
        """Trigger positions in ``[start, end)``; advances the arm."""
        out: List[int] = []
        pos = max(self.next_at, start)
        while pos < end:
            out.append(pos)
            if self.jitter:
                pos += int(self.rng.integers(
                    self.period - self.jitter,
                    self.period + self.jitter + 1))
            else:
                pos += self.period
        self.next_at = pos
        self.fired += len(out)
        return out

    def triggers_array(self, start: int, end: int) -> np.ndarray:
        """Vectorized :meth:`triggers`: same positions, *same RNG
        draws* (one per emitted trigger, in trigger order), returned
        as an int64 array.

        With jitter the trigger count is not known up front, so gaps
        are drawn in blocks sized by the worst case: starting from
        ``pos``, ``(end - 1 - pos) // (period + jitter) + 1`` triggers
        are guaranteed to land inside ``[start, end)`` even if every
        gap draws its maximum, so exactly that many gaps are drawn per
        block — never more than the scalar loop would have.
        """
        pos = max(self.next_at, start)
        if pos >= end:
            self.next_at = pos
            return np.empty(0, dtype=np.int64)
        if not self.jitter:
            out = np.arange(pos, end, self.period, dtype=np.int64)
            pos = int(out[-1]) + self.period
        else:
            lo = self.period - self.jitter
            hi = self.period + self.jitter
            blocks: List[np.ndarray] = []
            while pos < end:
                k = (end - 1 - pos) // hi + 1
                gaps = self.rng.integers(lo, hi + 1, size=k)
                offsets = np.empty(k, dtype=np.int64)
                offsets[0] = 0
                np.cumsum(gaps[:-1], out=offsets[1:])
                blocks.append(pos + offsets)
                pos += int(gaps.sum())
            out = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        self.next_at = pos
        self.fired += int(out.size)
        return out


class SamplingObserver:
    """Consume trace segments, emitting sampled records + estimators.

    Feed it segments directly (:meth:`observe` /
    :meth:`observe_kernel`) or hang :meth:`observe` on
    ``PipelinedExactEngine.segment_tap`` to profile a pipelined run
    in flight. Call :meth:`finish` (flushes the replay) before
    reading estimates.
    """

    def __init__(self, cache: CacheConfig,
                 streams: Iterable[StreamDecl],
                 config: Optional[SamplingConfig] = None,
                 prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                 vectorized: bool = True):
        self.config = config if config is not None else SamplingConfig()
        #: Replay implementation: vectorized segment-level replay
        #: (default) or the scalar slice-per-sample oracle. Both
        #: produce bit-identical records, counters, and estimates.
        self.vectorized = bool(vectorized)
        self.sim = CacheSim(cache)
        policies = resolve_policies(list(streams), prefetch)
        self._bypass = {name: policy is StorePolicy.BYPASS
                        for name, policy in policies.items()}
        rng = substream(self.config.seed, "sampling")
        self._acc = _Channel(self.config.period,
                             self.config.period_jitter, rng)
        self._store = _Channel(self.config.store_period,
                               self.config.store_jitter, rng)
        self._skid_rng = substream(self.config.seed, "sampling", "skid")
        # Global axes: rows observed so far / stores observed so far.
        self.accesses_observed = 0
        self.stores_observed = 0
        # Skidded sample positions that spilled past the segments
        # seen so far: (absolute row, channel).
        self._pending: List[Tuple[int, int]] = []
        # Estimator accumulators.
        self.n_access_samples = 0
        self.n_store_samples = 0
        self.fetch_sectors = 0
        self.dirty_events = 0
        self.wcb_events = 0
        # Per-line fetch-sector counts at access samples (hot lines).
        self._line_fetches: Dict[int, List] = {}
        # Record columns (python lists; arrays built on demand).
        self._rec: Dict[str, List] = {
            k: [] for k in ("row", "addr", "size", "stream_id",
                            "is_write", "level", "channel")}
        self.records_dropped = 0
        self.skid_dropped = 0
        self.slices = 0
        self._bypass_cache: Tuple[int, Optional[np.ndarray]] = (-1, None)
        self.finished = False

    # ------------------------------------------------------- ingestion
    def observe(self, segment: BatchTrace) -> None:
        """Advance over one trace segment, sampling as configured."""
        if self.finished:
            raise SimulationError(
                "SamplingObserver.observe() after finish()")
        n = len(segment)
        if not n:
            return
        addr, size = segment.addr, segment.size
        is_write = segment.is_write
        byp = self._bypass_column(segment)
        base = self.accesses_observed
        store_rows = np.flatnonzero(is_write)

        if self.vectorized:
            srows, smask = self._collect_vectorized(n, base, store_rows)
            if self._span_guard(addr, size):
                # A row spanning >= n_sets cache lines can self-
                # interfere (its own early sector's eviction changing
                # a later sector's set), the one geometry where batch
                # extraction cannot mirror probe-before-row — see
                # CacheSim.access_batch_probed. Replay such segments
                # through the slice path; trigger state is unaffected
                # since both collectors make the same RNG draws.
                self._replay_slices(segment, addr, size, is_write,
                                    byp, base, srows, smask)
            else:
                self._replay_vectorized(segment, addr, size, is_write,
                                        byp, base, srows, smask)
        else:
            srows, smask = self._collect_scalar(n, base, store_rows)
            self._replay_slices(segment, addr, size, is_write, byp,
                                base, srows, smask)
        self.accesses_observed += n
        self.stores_observed += int(store_rows.size)

    def observe_kernel(self, kernel,
                       target_rows: Optional[int] = None
                       ) -> "SamplingObserver":
        """Stream a :class:`KernelModel`'s segments end to end."""
        for segment in kernel.segments(target_rows):
            self.observe(segment)
        self.finish()
        return self

    def finish(self) -> None:
        """Flush the replay; drop skidded samples past the trace end."""
        if self.finished:
            return
        self.skid_dropped += len(self._pending)
        self._pending = []
        self.sim.flush()
        self.finished = True

    # ------------------------------------------------------- internals
    def _skidded(self, trigger: int) -> int:
        cfg = self.config
        row = trigger + cfg.skid
        if cfg.skid_jitter:
            row += int(self._skid_rng.integers(0, cfg.skid_jitter + 1))
        return row

    def _bypass_column(self, segment: BatchTrace) -> Optional[np.ndarray]:
        key = id(segment.streams)
        cached_key, cached = self._bypass_cache
        if cached_key == key:
            per_stream = cached
        else:
            per_stream = np.array(
                [self._bypass.get(name, False)
                 for name in segment.streams], dtype=bool)
            self._bypass_cache = (key, per_stream)
        if per_stream is None or not per_stream.any():
            return None
        return per_stream[segment.stream_id] & segment.is_write

    # ------------------------------------------------- trigger collection
    def _collect_scalar(self, n: int, base: int,
                        store_rows: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar trigger collection: one RNG draw per trigger, one
        per skid. Returns sorted unique local sample rows and their
        OR-ed channel masks."""
        sample_rows: Dict[int, int] = {}

        def _add(abs_row: int, channel: int) -> None:
            if abs_row < base + n:
                sample_rows[abs_row - base] = (
                    sample_rows.get(abs_row - base, 0) | (1 << channel))
            else:
                self._pending.append((abs_row, channel))

        if self._pending:
            pending, self._pending = self._pending, []
            for abs_row, channel in pending:
                _add(abs_row, channel)
        for trigger in self._acc.triggers(base, base + n):
            _add(self._skidded(trigger), CHANNEL_ACCESS)
        m = int(store_rows.size)
        for trigger in self._store.triggers(self.stores_observed,
                                            self.stores_observed + m):
            row = base + int(store_rows[trigger - self.stores_observed])
            _add(self._skidded(row), CHANNEL_STORE)
        srows = np.array(sorted(sample_rows), dtype=np.int64)
        smask = np.array([sample_rows[p] for p in srows.tolist()],
                         dtype=np.uint8)
        return srows, smask

    def _collect_vectorized(self, n: int, base: int,
                            store_rows: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Array trigger collection, draw-for-draw identical to
        :meth:`_collect_scalar`: acc gaps, acc skids, store gaps,
        store skids — in that order, block-drawn."""
        end = base + n
        rows_parts: List[np.ndarray] = []
        mask_parts: List[np.ndarray] = []
        if self._pending:
            pend_rows: List[int] = []
            pend_mask: List[int] = []
            pending, self._pending = self._pending, []
            for abs_row, channel in pending:
                if abs_row < end:
                    pend_rows.append(abs_row - base)
                    pend_mask.append(1 << channel)
                else:
                    self._pending.append((abs_row, channel))
            if pend_rows:
                rows_parts.append(np.array(pend_rows, dtype=np.int64))
                mask_parts.append(np.array(pend_mask, dtype=np.uint8))
        acc = self._skidded_array(self._acc.triggers_array(base, end))
        m = int(store_rows.size)
        st = self._store.triggers_array(self.stores_observed,
                                        self.stores_observed + m)
        st = self._skidded_array(base + store_rows[st - self.stores_observed])
        for rows, channel in ((acc, CHANNEL_ACCESS), (st, CHANNEL_STORE)):
            if not rows.size:
                continue
            inside = rows < end
            over = rows[~inside]
            if over.size:
                self._pending.extend(
                    (int(r), channel) for r in over.tolist())
            kept = rows[inside]
            if kept.size:
                rows_parts.append(kept - base)
                mask_parts.append(np.full(kept.size, 1 << channel,
                                          dtype=np.uint8))
        if not rows_parts:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.uint8))
        rows_all = np.concatenate(rows_parts)
        mask_all = np.concatenate(mask_parts)
        order = np.argsort(rows_all, kind="stable")
        rows_all = rows_all[order]
        mask_all = mask_all[order]
        bnd = np.empty(rows_all.size, dtype=bool)
        bnd[0] = True
        np.not_equal(rows_all[1:], rows_all[:-1], out=bnd[1:])
        starts = np.flatnonzero(bnd)
        return rows_all[starts], np.bitwise_or.reduceat(mask_all, starts)

    def _skidded_array(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_skidded` (same draws on the skid RNG)."""
        cfg = self.config
        rows = rows + cfg.skid
        if cfg.skid_jitter and rows.size:
            rows = rows + self._skid_rng.integers(
                0, cfg.skid_jitter + 1, size=rows.size)
        return rows

    def _span_guard(self, addr: np.ndarray, size: np.ndarray) -> bool:
        """True when some row spans >= n_sets cache lines (vectorized
        extraction could diverge from probe-before-row; replay the
        segment through the scalar slice path instead)."""
        line = self.sim.line_bytes
        span = (addr + size - 1) // line - addr // line
        return int(span.max()) >= self.sim.n_sets

    # ---------------------------------------------------------- replay
    def _replay_slices(self, segment: BatchTrace, addr, size, is_write,
                       byp, base: int, srows: np.ndarray,
                       smask: np.ndarray) -> None:
        """Slice-per-sample replay: advance the replay to each sample
        row, probe it scalar-wise, continue. The differential oracle
        for the vectorized replay, and its fallback for segments the
        span guard rejects."""
        sim = self.sim
        n = len(segment)
        pos = 0
        for p, channels in zip(srows.tolist(), smask.tolist()):
            if p > pos:
                sim.access_batch(addr[pos:p], size[pos:p],
                                 is_write[pos:p],
                                 None if byp is None else byp[pos:p])
                self.slices += 1
            pos = p
            self._sample(channels, base + p, int(addr[p]),
                         int(size[p]), bool(is_write[p]),
                         bool(byp[p]) if byp is not None else False,
                         int(segment.stream_id[p]), segment.streams)
        if pos < n:
            sim.access_batch(addr[pos:], size[pos:], is_write[pos:],
                             None if byp is None else byp[pos:])
            self.slices += 1

    def _replay_vectorized(self, segment: BatchTrace, addr, size,
                           is_write, byp, base: int, srows: np.ndarray,
                           smask: np.ndarray) -> None:
        """Whole-segment replay in two state-independent planes.

        Cached plane: every non-bypassed row goes through one
        :meth:`CacheSim.access_batch_probed` call with the non-bypassed
        sample rows as the watch set — the returned per-sector
        pre-states are exactly what :meth:`CacheSim.probe` would have
        reported before each sampled row. WCB plane: bypassed stores
        are applied with :meth:`CacheSim._bypass_batch` slices between
        bypassed sample rows, each sampled with the same pre-row
        write-combining walk as the scalar path. Counters and records
        are then applied in sample-row order, reproducing
        :meth:`_sample` bit for bit.
        """
        sim = self.sim
        if not srows.size:
            sim.access_batch(addr, size, is_write, byp)
            self.slices += 1
            return
        s_byp = (byp[srows] if byp is not None
                 else np.zeros(srows.size, dtype=bool))
        nonres = np.zeros(srows.size, dtype=np.int64)
        dirty_new = np.zeros(srows.size, dtype=np.int64)
        level = np.full(srows.size, LEVEL_CACHE, dtype=np.uint8)

        # Cached plane: all non-bypassed rows, one probed batch.
        kept_samples = srows[~s_byp]
        rows_w = None
        if byp is None:
            rows_w, res_w, dirty_w = sim.access_batch_probed(
                addr, size, is_write, kept_samples)
            watch = kept_samples
            self.slices += 1
        else:
            kept_idx = np.flatnonzero(~byp)
            watch = np.searchsorted(kept_idx, kept_samples)
            if kept_idx.size:
                if kept_samples.size:
                    rows_w, res_w, dirty_w = sim.access_batch_probed(
                        addr[kept_idx], size[kept_idx],
                        is_write[kept_idx], watch)
                else:
                    sim.access_batch(addr[kept_idx], size[kept_idx],
                                     is_write[kept_idx])
                self.slices += 1
        if rows_w is not None and rows_w.size:
            starts = np.searchsorted(rows_w, watch)
            miss_k = np.add.reduceat((~res_w).astype(np.int64), starts)
            clean_k = np.add.reduceat((~dirty_w).astype(np.int64),
                                      starts)
            kpos = np.flatnonzero(~s_byp)
            nonres[kpos] = miss_k
            dirty_new[kpos] = np.where(is_write[kept_samples],
                                       clean_k, 0)
            level[kpos] = np.where(miss_k > 0, LEVEL_MEMORY,
                                   LEVEL_CACHE)
        level[s_byp] = LEVEL_WCB

        # WCB plane: bypassed stores, sliced at bypassed sample rows.
        if byp is not None:
            b_idx = np.flatnonzero(byp)
            if b_idx.size:
                granule = sim.granule
                e_addr, e_size, _, e_rows = expand_to_sectors(
                    addr[b_idx], size[b_idx], is_write[b_idx], b_idx,
                    granule)
                cursor = 0
                for i in np.flatnonzero(s_byp).tolist():
                    p = int(srows[i])
                    j = int(np.searchsorted(e_rows, p))
                    if j > cursor:
                        sim._bypass_batch(e_addr[cursor:j],
                                          e_size[cursor:j])
                        self.slices += 1
                    cursor = j
                    # Pre-row write-combining walk, as in _sample.
                    wcb_new = 0
                    a, end_a = int(addr[p]), int(addr[p]) + int(size[p])
                    while a < end_a:
                        sector_end = (a // granule + 1) * granule
                        chunk = min(end_a, sector_end) - a
                        if sim.wcb_gathered_bytes(a) + chunk >= granule:
                            wcb_new += 1
                        a = min(end_a, sector_end)
                    dirty_new[i] = wcb_new
                if cursor < e_rows.size:
                    sim._bypass_batch(e_addr[cursor:], e_size[cursor:])
                    self.slices += 1

        # Counters and records, in sample-row order.
        acc_bit = (smask & (1 << CHANNEL_ACCESS)) != 0
        st_bit = ((smask & (1 << CHANNEL_STORE)) != 0) & is_write[srows]
        self.n_access_samples += int(np.count_nonzero(acc_bit))
        self.fetch_sectors += int(nonres[acc_bit].sum())
        for i in np.flatnonzero(acc_bit & (nonres > 0)).tolist():
            p = int(srows[i])
            line_id = int(addr[p]) // sim.line_bytes
            entry = self._line_fetches.get(line_id)
            if entry is None:
                self._line_fetches[line_id] = [
                    int(nonres[i]),
                    segment.streams[int(segment.stream_id[p])]]
            else:
                entry[0] += int(nonres[i])
        self.n_store_samples += int(np.count_nonzero(st_bit))
        self.wcb_events += int(dirty_new[st_bit & s_byp].sum())
        self.dirty_events += int(dirty_new[st_bit & ~s_byp].sum())
        space = self.config.max_records - len(self._rec["row"])
        k = min(max(space, 0), int(srows.size))
        if k:
            keep = srows[:k]
            rec = self._rec
            rec["row"].extend((base + keep).tolist())
            rec["addr"].extend(addr[keep].tolist())
            rec["size"].extend(size[keep].tolist())
            rec["stream_id"].extend(segment.stream_id[keep].tolist())
            rec["is_write"].extend(is_write[keep].tolist())
            rec["level"].extend(level[:k].tolist())
            rec["channel"].extend(smask[:k].tolist())
        self.records_dropped += int(srows.size) - k

    def _sample(self, channels: int, row: int, addr: int, size: int,
                is_write: bool, bypassed: bool, stream_id: int,
                streams) -> None:
        sim = self.sim
        granule = sim.granule
        if bypassed:
            # Bypassed store: no cache interaction; a write-combining
            # sector completed by this store drains as one write
            # transaction.
            level = LEVEL_WCB
            wcb_new = 0
            a, end = addr, addr + size
            while a < end:
                sector_end = (a // granule + 1) * granule
                chunk = min(end, sector_end) - a
                if sim.wcb_gathered_bytes(a) + chunk >= granule:
                    wcb_new += 1
                a = min(end, sector_end)
            nonres = 0
            dirty_new = wcb_new
        else:
            nonres = 0
            dirty_new = 0
            for resident, dirty in sim.probe(addr, size):
                if not resident:
                    nonres += 1
                if is_write and not dirty:
                    dirty_new += 1
            level = LEVEL_MEMORY if nonres else LEVEL_CACHE
        if channels & (1 << CHANNEL_ACCESS):
            self.n_access_samples += 1
            self.fetch_sectors += nonres
            if nonres:
                line_id = addr // sim.line_bytes
                entry = self._line_fetches.get(line_id)
                if entry is None:
                    self._line_fetches[line_id] = [
                        nonres, streams[stream_id]]
                else:
                    entry[0] += nonres
        if channels & (1 << CHANNEL_STORE) and is_write:
            self.n_store_samples += 1
            if bypassed:
                self.wcb_events += dirty_new
            else:
                self.dirty_events += dirty_new
        # One record per sample, shared when both channels landed on
        # the same row.
        if len(self._rec["row"]) < self.config.max_records:
            rec = self._rec
            rec["row"].append(row)
            rec["addr"].append(addr)
            rec["size"].append(size)
            rec["stream_id"].append(stream_id)
            rec["is_write"].append(is_write)
            rec["level"].append(level)
            rec["channel"].append(channels)
        else:
            self.records_dropped += 1

    # ------------------------------------------------------- results
    def exact_traffic(self) -> TrafficCounters:
        """Ground-truth traffic of the replay (equals the exact
        engine's for the same nest — the ablation reference)."""
        return self.sim.traffic

    def estimated_traffic(self) -> TrafficEstimate:
        granule = self.sim.granule
        read = 0.0
        if self.n_access_samples:
            read = (granule * self.fetch_sectors
                    * self.accesses_observed / self.n_access_samples)
        write = 0.0
        if self.n_store_samples:
            write = (granule * (self.dirty_events + self.wcb_events)
                     * self.stores_observed / self.n_store_samples)
        return TrafficEstimate(read_bytes=read, write_bytes=write)

    def relative_errors(
            self, reference: Optional[TrafficCounters] = None
    ) -> Dict[str, float]:
        """Estimate error vs a reference (default: the exact replay)."""
        ref = reference if reference is not None else self.exact_traffic()
        est = self.estimated_traffic()

        def _rel(got: float, true: float) -> float:
            return abs(got - true) / true if true else float(got != 0)

        return {
            "read": _rel(est.read_bytes, ref.read_bytes),
            "write": _rel(est.write_bytes, ref.write_bytes),
            "total": _rel(est.total_bytes,
                          ref.read_bytes + ref.write_bytes),
        }

    def records(self) -> Dict[str, np.ndarray]:
        """Columnar sample records (copies)."""
        rec = self._rec
        return {
            "row": np.asarray(rec["row"], dtype=np.int64),
            "addr": np.asarray(rec["addr"], dtype=np.int64),
            "size": np.asarray(rec["size"], dtype=np.int64),
            "stream_id": np.asarray(rec["stream_id"], dtype=np.int16),
            "is_write": np.asarray(rec["is_write"], dtype=bool),
            "level": np.asarray(rec["level"], dtype=np.uint8),
            "channel": np.asarray(rec["channel"], dtype=np.uint8),
        }

    def hot_lines(self, top: int = 10) -> List[Dict[str, object]]:
        """Per-address heatmap: the cache lines with the largest
        estimated fetch traffic (the attribution the exact counters
        cannot provide)."""
        scale = (self.accesses_observed / self.n_access_samples
                 if self.n_access_samples else 0.0)
        granule = self.sim.granule
        ranked = sorted(self._line_fetches.items(),
                        key=lambda kv: (-kv[1][0], kv[0]))
        return [{
            "line_addr": line_id * self.sim.line_bytes,
            "stream": entry[1],
            "est_read_bytes": entry[0] * granule * scale,
            "samples": entry[0],
        } for line_id, entry in ranked[:top]]

    @property
    def n_samples(self) -> int:
        return self.n_access_samples + self.n_store_samples

    @property
    def records_kept(self) -> int:
        return len(self._rec["row"])

    def overhead(self) -> Dict[str, int]:
        """Observer-side cost counters (the "overhead" axis of the
        accuracy-vs-overhead ablation)."""
        return {
            "samples": self.n_samples,
            "access_samples": self.n_access_samples,
            "store_samples": self.n_store_samples,
            "records_kept": self.records_kept,
            "records_dropped": self.records_dropped,
            "skid_dropped": self.skid_dropped,
            "replay_slices": self.slices,
        }
