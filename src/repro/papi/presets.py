"""PAPI preset events: portable names over native events.

Real PAPI ships a preset table (``PAPI_FP_OPS``, ``PAPI_TOT_CYC``, …)
that maps portable event names onto each architecture's native events,
sometimes as *derived* combinations. The reproduction implements the
same layer: presets resolve to native events of the simulated
components, including derived presets computed from several natives
(e.g. ``PAPI_MEM_BYTES`` sums the sixteen nest channel counters — a
derived preset this package adds for convenience, marked non-standard).

Use :func:`resolve_preset` to translate, or
:class:`PresetEventSet` to measure presets directly with event-set
semantics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from ..errors import PapiNoEvent
from ..pmu.events import all_pcp_events, all_uncore_events
from .papi import Papi

#: Derivation operators for derived presets.
_SUM = "DERIVED_ADD"
_SINGLE = "NOT_DERIVED"


@dataclasses.dataclass(frozen=True)
class PresetDefinition:
    """One preset: how it derives from native events."""

    name: str
    description: str
    derivation: str
    #: Builds the native event list for (papi, cpu/socket qualifier).
    natives: Callable[[Papi, int], List[str]]
    standard: bool = True


def _core_event(what: str):
    def build(papi: Papi, cpu: int) -> List[str]:
        return [f"perf::{what}:cpu={cpu}"]

    return build


def _nest_events(papi: Papi, socket_id: int) -> List[str]:
    node = papi.node
    if node.user_privileged:
        threads = node.config.socket.n_cores * 4
        return all_uncore_events(node.config, cpu=socket_id * threads)
    return all_pcp_events(node.config, socket_id)


PRESETS: Dict[str, PresetDefinition] = {
    "PAPI_TOT_CYC": PresetDefinition(
        name="PAPI_TOT_CYC", description="Total cycles",
        derivation=_SINGLE, natives=_core_event("cycles")),
    "PAPI_TOT_INS": PresetDefinition(
        name="PAPI_TOT_INS", description="Instructions completed",
        derivation=_SINGLE, natives=_core_event("instructions")),
    "PAPI_FP_OPS": PresetDefinition(
        name="PAPI_FP_OPS", description="Floating point operations",
        derivation=_SINGLE, natives=_core_event("fp_ops")),
    "PAPI_MEM_BYTES": PresetDefinition(
        name="PAPI_MEM_BYTES",
        description="Bytes moved to/from memory (nest, all channels; "
                    "non-standard derived preset)",
        derivation=_SUM, natives=_nest_events, standard=False),
}


def available_presets(papi: Papi) -> List[str]:
    """Presets whose native events all resolve on this library."""
    out = []
    for name, preset in PRESETS.items():
        try:
            natives = preset.natives(papi, 0)
            for native in natives:
                papi.components.resolve_event(native)
            out.append(name)
        except Exception:
            continue
    return sorted(out)


def resolve_preset(papi: Papi, name: str, qualifier: int = 0
                   ) -> PresetDefinition:
    preset = PRESETS.get(name)
    if preset is None:
        raise PapiNoEvent(
            f"unknown preset {name!r}; known: {sorted(PRESETS)}")
    return preset


class PresetEventSet:
    """Measure preset events with start/read/stop semantics.

    One underlying event set per component is managed internally (PAPI
    presets historically hid the same multiplexing), so presets from
    different components can be measured together.
    """

    def __init__(self, papi: Papi, presets: Sequence[str],
                 qualifier: int = 0):
        if not presets:
            raise PapiNoEvent("need at least one preset")
        self.papi = papi
        self.qualifier = qualifier
        self._presets = [resolve_preset(papi, p) for p in presets]
        self._native_sets: Dict[str, object] = {}
        self._bindings: List[List[str]] = []
        for preset in self._presets:
            natives = preset.natives(papi, qualifier)
            self._bindings.append(natives)
            for native in natives:
                component = papi.components.resolve_event(native)
                es = self._native_sets.get(component.name)
                if es is None:
                    es = papi.create_eventset()
                    self._native_sets[component.name] = es
                if native not in es.event_names:
                    es.add_event(native)

    # ------------------------------------------------------------------
    def start(self) -> None:
        for es in self._native_sets.values():
            es.start()

    def read(self) -> Dict[str, int]:
        values: Dict[str, int] = {}
        for es in self._native_sets.values():
            values.update(es.read_dict())
        out = {}
        for preset, natives in zip(self._presets, self._bindings):
            out[preset.name] = sum(values[n] for n in natives)
        return out

    def stop(self) -> Dict[str, int]:
        result = self.read()
        for es in self._native_sets.values():
            es.stop()
        return result
