"""The PAPI library facade.

:class:`Papi` plays the role of the initialised PAPI library on one
node: it builds the component registry from the hardware that is
actually present (and reachable — the perf_event_uncore component is
registered but *unavailable* on Summit, where the user lacks nest
privileges), creates event sets, and offers the utility queries that
``papi_avail``/``papi_native_avail`` provide on the command line.

Typical use (mirrors the C call sequence)::

    papi = Papi(node, pmcd=start_pmcd_for_node(node))
    es = papi.create_eventset()
    es.add_event("pcp:::perfevent.hwcounters.nest_mba0_imc."
                 "PM_MBA0_READ_BYTES.value:cpu87")
    es.start()
    ...  # run the kernel on the simulated node
    counts = es.stop()
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PapiNoEvent
from ..machine.node import Node
from ..pcp.pmcd import PMCD
from ..pcp.session import PcpSession
from .component import Component, ComponentRegistry
from .components.infiniband import InfinibandComponent
from .components.nvml import NVMLComponent
from .components.pcp import PCPComponent
from .components.perf_core import PerfCoreComponent
from .components.perf_nest import PerfUncoreComponent
from .components.rapl import RaplComponent
from .components.sampling import SamplingComponent
from .consts import PAPI_VER_CURRENT
from .eventset import EventSet
from .sampling import SamplingObserver


class Papi:
    """One initialised PAPI library instance bound to a node."""

    def __init__(self, node: Node, pmcd: Optional[PMCD] = None,
                 sampling_observer: Optional[SamplingObserver] = None):
        self.node = node
        self.version = PAPI_VER_CURRENT
        self.components = ComponentRegistry()
        # perf_event (core-private) is available to everyone;
        # perf_event_uncore exists everywhere but its availability
        # depends on privilege (checked at open/is_available time).
        self.components.register(PerfCoreComponent(node))
        self.components.register(PerfUncoreComponent(node))
        self.components.register(RaplComponent(node))
        if pmcd is not None:
            context = PcpSession(pmcd, node=node)
            self.components.register(PCPComponent(context, node))
        if node.gpus:
            self.components.register(NVMLComponent(node))
        if node.nics:
            self.components.register(InfinibandComponent(node))
        if sampling_observer is not None:
            self.components.register(
                SamplingComponent(sampling_observer))

    # ------------------------------------------------------------------
    def create_eventset(self) -> EventSet:
        return EventSet(self)

    def component(self, name: str) -> Component:
        return self.components.get(name)

    def component_names(self) -> List[str]:
        return self.components.names()

    # ------------------------------------------------------------------
    def list_events(self, component: Optional[str] = None) -> List[str]:
        """papi_native_avail: enumerate native events."""
        if component is not None:
            return self.components.get(component).list_events()
        events: List[str] = []
        for cmp in self.components:
            available, _ = cmp.is_available()
            if available:
                events.extend(cmp.list_events())
        return events

    def query_event(self, name: str) -> bool:
        """PAPI_query_event: does the event exist (and open)?"""
        try:
            component = self.components.resolve_event(name)
            component.open_event(name)
            return True
        except PapiNoEvent:
            return False

    def component_report(self) -> Dict[str, Dict[str, str]]:
        """papi_component_avail-style availability report."""
        report: Dict[str, Dict[str, str]] = {}
        for cmp in self.components:
            available, reason = cmp.is_available()
            report[cmp.name] = {
                "description": cmp.description,
                "available": "yes" if available else "no",
                "reason": reason,
                "num_events": str(len(cmp.list_events())),
            }
        return report


def library_init(node: Node, pmcd: Optional[PMCD] = None,
                 version: int = PAPI_VER_CURRENT) -> Papi:
    """PAPI_library_init analogue (version handshake included)."""
    if version != PAPI_VER_CURRENT:
        raise PapiNoEvent(
            f"PAPI version mismatch: caller built against {version:#x}, "
            f"library is {PAPI_VER_CURRENT:#x}"
        )
    return Papi(node, pmcd=pmcd)
