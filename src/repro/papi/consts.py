"""PAPI constants mirrored from the C library.

Only the subset exercised by the reproduction is present; values match
``papi.h`` so code written against real python-papi reads naturally.
"""

from __future__ import annotations

#: Library version handshake value (PAPI_VER_CURRENT analogue).
PAPI_VER_CURRENT = 0x07000000

PAPI_OK = 0
PAPI_EINVAL = -1
PAPI_ENOMEM = -2
PAPI_ENOEVNT = -7
PAPI_EPERM = -8
PAPI_ENOTRUN = -9
PAPI_EISRUN = -10
PAPI_ENOCMP = -20

#: Event set states (bit flags, as in papi.h).
PAPI_STOPPED = 0x01
PAPI_RUNNING = 0x02

#: Component delimiter in fully-qualified event names.
COMPONENT_DELIMITER = ":::"

ERROR_NAMES = {
    PAPI_OK: "PAPI_OK",
    PAPI_EINVAL: "PAPI_EINVAL",
    PAPI_ENOMEM: "PAPI_ENOMEM",
    PAPI_ENOEVNT: "PAPI_ENOEVNT",
    PAPI_EPERM: "PAPI_EPERM",
    PAPI_ENOTRUN: "PAPI_ENOTRUN",
    PAPI_EISRUN: "PAPI_EISRUN",
    PAPI_ENOCMP: "PAPI_ENOCMP",
}


def strerror(code: int) -> str:
    """PAPI_strerror analogue."""
    return ERROR_NAMES.get(code, f"PAPI error {code}")
