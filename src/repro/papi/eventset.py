"""PAPI event sets.

An event set groups native events that are started, read and stopped
together. As in PAPI-C, **an event set is bound to exactly one
component** — correlating sources (nest + NVML + InfiniBand, Figs
11-12) therefore takes one event set per component, all started before
the region of interest. The state machine matches the C library:

``add_event`` (stopped only) → ``start`` → ``read``/``reset`` →
``stop`` → values; ``PAPI_EISRUN``/``PAPI_ENOTRUN`` violations raise
their typed exceptions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import (
    PapiInvalidArgument,
    PapiIsRunning,
    PapiNotRunning,
)
from .component import Component, NativeEventHandle
from .consts import PAPI_RUNNING, PAPI_STOPPED

if TYPE_CHECKING:  # pragma: no cover
    from .papi import Papi


class EventSet:
    """A group of co-scheduled native events from one component."""

    def __init__(self, papi: "Papi"):
        self._papi = papi
        self._handles: List[NativeEventHandle] = []
        self._component: Optional[Component] = None
        self._state = PAPI_STOPPED
        self._start_values: List[int] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> int:
        return self._state

    @property
    def running(self) -> bool:
        return self._state == PAPI_RUNNING

    @property
    def component(self) -> Optional[Component]:
        return self._component

    @property
    def event_names(self) -> List[str]:
        return [h.name for h in self._handles]

    def __len__(self) -> int:
        return len(self._handles)

    # ------------------------------------------------------------------
    def add_event(self, name: str) -> None:
        """Add one native event by fully-qualified name.

        The first event binds the set to its component; mixing
        components in one set raises ``PAPI_EINVAL`` exactly like the C
        library's per-component event sets.
        """
        if self.running:
            raise PapiIsRunning("cannot add events while counting")
        component = self._papi.components.resolve_event(name)
        if self._component is not None and component is not self._component:
            raise PapiInvalidArgument(
                f"event set is bound to component "
                f"{self._component.name!r}; {name!r} belongs to "
                f"{component.name!r} — use one event set per component"
            )
        handle = component.open_event(name)
        self._handles.append(handle)
        self._component = component

    def add_events(self, names: List[str]) -> None:
        for name in names:
            self.add_event(name)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin counting: snapshot current raw values."""
        if self.running:
            raise PapiIsRunning("event set already started")
        if not self._handles:
            raise PapiInvalidArgument("cannot start an empty event set")
        self._start_values = self._read_raw()
        self._state = PAPI_RUNNING

    def read(self) -> List[int]:
        """Counts since start (raw level for instantaneous events)."""
        if not self.running:
            raise PapiNotRunning("event set is not counting")
        return self._relative(self._read_raw())

    def reset(self) -> None:
        """Zero the counts (re-snapshot) without stopping."""
        if not self.running:
            raise PapiNotRunning("event set is not counting")
        self._start_values = self._read_raw()

    def accum(self, values: List[int]) -> List[int]:
        """PAPI_accum: add counts since start into ``values`` and reset.

        Returns the updated list (also mutated in place, matching the
        C API's output-parameter behaviour).
        """
        if not self.running:
            raise PapiNotRunning("event set is not counting")
        if len(values) != len(self._handles):
            raise PapiInvalidArgument(
                f"accum buffer has {len(values)} slots for "
                f"{len(self._handles)} events")
        raw = self._read_raw()
        for i, count in enumerate(self._relative(raw)):
            values[i] += count
        self._start_values = raw
        return values

    def stop(self) -> List[int]:
        """Stop counting and return final counts since start."""
        if not self.running:
            raise PapiNotRunning("event set is not counting")
        values = self._relative(self._read_raw())
        self._state = PAPI_STOPPED
        return values

    def read_dict(self) -> Dict[str, int]:
        """``read`` keyed by event name (convenience)."""
        return dict(zip(self.event_names, self.read()))

    def stop_dict(self) -> Dict[str, int]:
        names = self.event_names
        return dict(zip(names, self.stop()))

    def cleanup(self) -> None:
        """Remove all events (stopped sets only)."""
        if self.running:
            raise PapiIsRunning("stop the event set before cleanup")
        self._handles.clear()
        self._component = None
        self._start_values = []

    # ------------------------------------------------------------------
    def _read_raw(self) -> List[int]:
        assert self._component is not None
        latency = self._component.read_latency_seconds
        if latency > 0.0:
            self._papi.node.advance(latency)
        return self._component.read_events(self._handles)

    def _relative(self, raw: List[int]) -> List[int]:
        out = []
        for handle, value, start in zip(self._handles, raw,
                                        self._start_values):
            out.append(value if handle.instantaneous else value - start)
        return out
