"""sampling component: SPE/PEBS-style sampled-traffic estimators.

The exact-counter components (perf_event_uncore, pcp) expose what
privileged nest counters measure; this component exposes what a
*statistical sampling* profiler estimates from the same access
stream — the production-profiler view of memory traffic. Events are
read from an attached :class:`~repro.papi.sampling.SamplingObserver`
so an event set can sit next to the exact counters in one
measurement region and the two can be compared directly::

    es = papi.create_eventset()
    es.add_event("sampling:::EST_TOTAL_BYTES")
    es.start()
    observer.observe_kernel(kernel)
    counts = es.stop()
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import PapiNoEvent
from ..component import Component, NativeEventHandle
from ..sampling import SamplingObserver


class SamplingComponent(Component):
    """Sampled-traffic estimators from a SamplingObserver."""

    name = "sampling"
    description = ("Statistical sampling profiler (SPE/PEBS-style "
                   "period-scaled traffic estimators)")
    #: Reading a software-maintained estimator is a memory load.
    read_latency_seconds = 1.0e-6

    #: Event name -> (units, reader attribute description).
    EVENTS = (
        "SAMPLES",
        "ACCESS_SAMPLES",
        "STORE_SAMPLES",
        "ACCESSES_OBSERVED",
        "STORES_OBSERVED",
        "EST_READ_BYTES",
        "EST_WRITE_BYTES",
        "EST_TOTAL_BYTES",
        "RECORDS_KEPT",
        "RECORDS_DROPPED",
        "SKID_DROPPED",
    )
    _BYTE_EVENTS = frozenset(
        {"EST_READ_BYTES", "EST_WRITE_BYTES", "EST_TOTAL_BYTES"})

    def __init__(self, observer: Optional[SamplingObserver] = None):
        self.observer = observer

    def attach(self, observer: SamplingObserver) -> None:
        """Bind (or rebind) the observer events read from."""
        self.observer = observer

    # ------------------------------------------------------------------
    def is_available(self) -> Tuple[bool, str]:
        if self.observer is None:
            return False, ("no sampling observer attached; construct "
                           "Papi(..., sampling_observer=...) or call "
                           "attach()")
        return True, ""

    def list_events(self) -> List[str]:
        return [f"{self.name}:::{event}" for event in self.EVENTS]

    def open_event(self, name: str) -> NativeEventHandle:
        bare = self.strip_prefix(name)
        if bare not in self.EVENTS:
            raise PapiNoEvent(
                f"sampling component has no event {bare!r}; "
                f"available: {list(self.EVENTS)}")
        return NativeEventHandle(
            name=name,
            reader=lambda: self._read(bare),
            component=self,
            units="bytes" if bare in self._BYTE_EVENTS else "",
        )

    # ------------------------------------------------------------------
    def _read(self, event: str) -> int:
        obs = self.observer
        if obs is None:
            return 0
        if event == "SAMPLES":
            return obs.n_samples
        if event == "ACCESS_SAMPLES":
            return obs.n_access_samples
        if event == "STORE_SAMPLES":
            return obs.n_store_samples
        if event == "ACCESSES_OBSERVED":
            return obs.accesses_observed
        if event == "STORES_OBSERVED":
            return obs.stores_observed
        if event == "RECORDS_KEPT":
            return obs.records_kept
        if event == "RECORDS_DROPPED":
            return obs.records_dropped
        if event == "SKID_DROPPED":
            return obs.skid_dropped
        est = obs.estimated_traffic()
        if event == "EST_READ_BYTES":
            return int(round(est.read_bytes))
        if event == "EST_WRITE_BYTES":
            return int(round(est.write_bytes))
        return int(round(est.total_bytes))
