"""perf_event_uncore component: direct (privileged) nest access.

This is the Tellico measurement path: "a two-socket testbed ... in
which we do have elevated privileges, so we measure nest events without
the use of PCP. We define the perf_uncore events using the Nest IMC
Memory Offsets."

Event names use the perf PMU spelling from Table I:
``power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0``. On machines where the
simulated user is unprivileged (Summit) the component reports itself
unavailable and opening events raises ``PAPI_EPERM`` — the exact
failure that forces users onto the PCP component.
"""

from __future__ import annotations

from typing import List, Tuple

from ...errors import (
    PapiNoEvent,
    PapiPermissionDenied,
    PrivilegeError,
    SimulationError,
)
from ...machine.node import Node
from ...pmu.events import all_uncore_events, socket_instance_cpu
from ...pmu.perf import open_uncore_event, parse_uncore_event
from ..component import Component, NativeEventHandle


class PerfUncoreComponent(Component):
    """Direct nest counter access through perf_event."""

    name = "perf_event_uncore"
    description = "Linux perf_event uncore PMUs (POWER9 nest IMC)"
    #: One syscall-ish read per access.
    read_latency_seconds = 2.0e-5

    def __init__(self, node: Node):
        self.node = node

    # ------------------------------------------------------------------
    def owns_event(self, name: str) -> bool:
        if super().owns_event(name):
            return True
        # PAPI also accepts bare pmu::event names for native events.
        return name.startswith("power9_nest_mba")

    def is_available(self) -> Tuple[bool, str]:
        if not self.node.user_privileged:
            return False, ("uncore PMUs require elevated privileges on "
                           f"{self.node.config.name}; use pcp::: events")
        return True, ""

    # ------------------------------------------------------------------
    def list_events(self) -> List[str]:
        """All nest events, one set per socket (via ``cpu=`` qualifier)."""
        events = []
        for socket in self.node.sockets:
            cpu = socket_instance_cpu(self.node.config, socket.socket_id)
            first_cpu_on_socket = cpu - (
                self.node.config.socket.n_cores * 4 - 1)
            events.extend(all_uncore_events(self.node.config,
                                            cpu=first_cpu_on_socket))
        return events

    def open_event(self, name: str) -> NativeEventHandle:
        bare = self.strip_prefix(name)
        try:
            parse_uncore_event(bare)
        except SimulationError as exc:
            raise PapiNoEvent(str(exc)) from exc
        try:
            handle = open_uncore_event(self.node, bare)
        except PrivilegeError as exc:
            raise PapiPermissionDenied(str(exc)) from exc
        return NativeEventHandle(
            name=name, reader=handle.read, component=self, units="bytes")
