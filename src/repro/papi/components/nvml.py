"""NVML component: GPU board power (Table II).

Event spelling matches the paper:
``nvml:::Tesla_V100-SXM2-16GB:device_0:power``.

NVML power is a *gauge* — the handle is marked ``instantaneous`` so
event-set reads return the current level in milliwatts (NVML units)
rather than a delta. In Fig 11 these samples form the power spikes
that flank the host-memory read/write bursts of each 1D-FFT phase.
"""

from __future__ import annotations

import re
from typing import List

from ...errors import PapiNoEvent
from ...machine.node import Node
from ..component import Component, NativeEventHandle
from ..consts import COMPONENT_DELIMITER

_EVENT_RE = re.compile(
    r"^(?P<gpu>[^:]+):device_(?P<device>\d+):(?P<what>power)$")


class NVMLComponent(Component):
    """PAPI component over the simulated GPUs' power telemetry."""

    name = "nvml"
    description = "NVIDIA Management Library (GPU power, mW)"
    read_latency_seconds = 2.0e-4  # NVML queries are sub-millisecond

    def __init__(self, node: Node):
        self.node = node

    # ------------------------------------------------------------------
    def list_events(self) -> List[str]:
        return [
            f"{self.name}{COMPONENT_DELIMITER}{gpu.name}:"
            f"device_{gpu.device_id}:power"
            for gpu in self.node.gpus
        ]

    def open_event(self, name: str) -> NativeEventHandle:
        body = self.strip_prefix(name)
        m = _EVENT_RE.match(body)
        if not m:
            raise PapiNoEvent(
                f"bad nvml event {name!r}; expected "
                f"nvml:::<gpu-name>:device_<n>:power"
            )
        device_id = int(m.group("device"))
        matches = [g for g in self.node.gpus
                   if g.device_id == device_id and g.name == m.group("gpu")]
        if not matches:
            raise PapiNoEvent(
                f"no GPU {m.group('gpu')!r} with device id {device_id} "
                f"on {self.node.config.name}"
            )
        gpu = matches[0]

        def reader() -> int:
            # NVML reports milliwatts.
            return int(round(gpu.power_at() * 1000.0))

        return NativeEventHandle(
            name=name, reader=reader, component=self,
            instantaneous=True, units="mW",
        )
