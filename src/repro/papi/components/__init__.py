"""Built-in PAPI components: pcp, perf_event_uncore, nvml, infiniband."""

from .infiniband import InfinibandComponent
from .nvml import NVMLComponent
from .pcp import PCPComponent
from .perf_nest import PerfUncoreComponent

__all__ = [
    "InfinibandComponent",
    "NVMLComponent",
    "PCPComponent",
    "PerfUncoreComponent",
]
