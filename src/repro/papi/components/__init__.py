"""Built-in PAPI components: pcp, perf_event_uncore, nvml,
infiniband, sampling."""

from .infiniband import InfinibandComponent
from .nvml import NVMLComponent
from .pcp import PCPComponent
from .perf_nest import PerfUncoreComponent
from .sampling import SamplingComponent

__all__ = [
    "InfinibandComponent",
    "NVMLComponent",
    "PCPComponent",
    "PerfUncoreComponent",
    "SamplingComponent",
]
