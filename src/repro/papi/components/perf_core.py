"""perf_event component: core-private counters (no privilege needed).

The counterpoint to the nest events: cycle/instruction/FLOP counters
are private to the core a thread runs on, so the kernel exposes them
to ordinary users — this is why, on Summit, ordinary PAPI users can
measure *compute* but need PCP for *memory traffic*. Pairing this
component's FLOP counts with the PCP component's byte counts yields
measured arithmetic intensity, the quantity behind the paper's
reference [9].

Event spelling: ``perf::cycles:cpu=N`` / ``perf::instructions:cpu=N``
/ ``perf::fp_ops:cpu=N`` with N a *core* index on the node.
"""

from __future__ import annotations

import re
from typing import List

from ...errors import PapiNoEvent
from ...machine.node import Node
from ..component import Component, NativeEventHandle

_EVENT_RE = re.compile(
    r"^perf::(?P<what>cycles|instructions|fp_ops)(?::cpu=(?P<cpu>\d+))?$")

_READERS = {
    "cycles": lambda core: core.counter_cycles,
    "instructions": lambda core: core.counter_instructions,
    "fp_ops": lambda core: core.counter_flops,
}


class PerfCoreComponent(Component):
    """Core-private PMU events (cycles, instructions, FLOPs)."""

    name = "perf_event"
    description = "Linux perf_event core PMU (unprivileged, core-private)"
    read_latency_seconds = 5.0e-6

    def __init__(self, node: Node):
        self.node = node

    # ------------------------------------------------------------------
    def owns_event(self, name: str) -> bool:
        return super().owns_event(name) or name.startswith("perf::")

    def list_events(self) -> List[str]:
        events = []
        n_cores = self.node.config.n_sockets * self.node.config.socket.n_cores
        for what in sorted(_READERS):
            for cpu in range(n_cores):
                events.append(f"perf::{what}:cpu={cpu}")
        return events

    def open_event(self, name: str) -> NativeEventHandle:
        body = self.strip_prefix(name)
        m = _EVENT_RE.match(body)
        if not m:
            raise PapiNoEvent(
                f"bad perf_event name {name!r}; expected "
                "perf::(cycles|instructions|fp_ops)[:cpu=N]")
        cpu = int(m.group("cpu") or 0)
        total_cores = (self.node.config.n_sockets
                       * self.node.config.socket.n_cores)
        if not 0 <= cpu < total_cores:
            raise PapiNoEvent(
                f"cpu {cpu} out of range 0..{total_cores - 1}")
        core = self.node.core(cpu)
        reader = _READERS[m.group("what")]
        return NativeEventHandle(
            name=name, reader=lambda: reader(core), component=self,
            units=m.group("what"),
        )
