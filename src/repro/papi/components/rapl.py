"""RAPL-style CPU package energy component (extension).

PAPI's ``rapl``/``powercap`` components expose package energy counters
on x86; POWER systems offer equivalent OCC sensors. The simulated
socket derives package power from its activity — idle floor plus a
dynamic term per busy core — and integrates it into a monotonically
increasing energy counter in microjoules (RAPL semantics), perfect for
event-set delta measurement.

Event spelling: ``rapl:::PACKAGE_ENERGY:PACKAGE{n}``.
"""

from __future__ import annotations

import re
from typing import List

from ...errors import PapiNoEvent
from ...machine.node import Node
from ..component import Component, NativeEventHandle

_EVENT_RE = re.compile(r"^PACKAGE_ENERGY:PACKAGE(?P<socket>\d+)$")

#: Idle package power (W) and dynamic power per busy core (W).
IDLE_PACKAGE_W = 60.0
PER_CORE_W = 8.0


class PackageEnergyModel:
    """Integrates socket power over simulated time.

    Registers a clock listener on the node: every clock advance adds
    ``power · dt`` with the power level the socket had *during* the
    interval (kernel executors keep cores marked busy while they
    advance the clock), so measurement windows bracketing a kernel see
    both the idle floor and the dynamic per-core energy.
    """

    def __init__(self, node: Node, socket_id: int):
        self.node = node
        self.socket_id = socket_id
        self._energy_uj = 0.0
        node.on_advance(self._integrate)

    def current_power_w(self) -> float:
        busy = self.node.socket(self.socket_id).active_core_count
        return IDLE_PACKAGE_W + PER_CORE_W * busy

    def _integrate(self, dt: float) -> None:
        self._energy_uj += self.current_power_w() * dt * 1e6

    def read_uj(self) -> int:
        return int(self._energy_uj)


class RaplComponent(Component):
    """Package-energy counters per socket."""

    name = "rapl"
    description = "Package energy (microjoules, monotonic; extension)"
    read_latency_seconds = 1.0e-5

    def __init__(self, node: Node):
        self.node = node
        self._models = [PackageEnergyModel(node, s)
                        for s in range(node.config.n_sockets)]

    # ------------------------------------------------------------------
    def list_events(self) -> List[str]:
        return [f"{self.name}:::PACKAGE_ENERGY:PACKAGE{s}"
                for s in range(self.node.config.n_sockets)]

    def open_event(self, name: str) -> NativeEventHandle:
        body = self.strip_prefix(name)
        m = _EVENT_RE.match(body)
        if not m:
            raise PapiNoEvent(
                f"bad rapl event {name!r}; expected "
                "rapl:::PACKAGE_ENERGY:PACKAGE<n>")
        socket_id = int(m.group("socket"))
        if not 0 <= socket_id < len(self._models):
            raise PapiNoEvent(f"no package {socket_id} on this node")
        model = self._models[socket_id]
        return NativeEventHandle(
            name=name, reader=model.read_uj, component=self, units="uJ")
