"""InfiniBand component: network port counters (Table II).

Event spelling matches the paper:
``infiniband:::mlx5_0_1_ext:port_recv_data`` (and ``port_xmit_data``).

Like the hardware, ``port_*_data`` counters tick in 4-byte units; the
paper uses jumps in ``port_recv_data`` to identify the two All2All
phases of the 3D-FFT (Fig 11).
"""

from __future__ import annotations

import re
from typing import List

from ...errors import PapiNoEvent
from ...machine.node import Node
from ..component import Component, NativeEventHandle
from ..consts import COMPONENT_DELIMITER

_EVENT_RE = re.compile(
    r"^(?P<port>.+_ext):(?P<counter>port_(?:recv|xmit)_data)$")


class InfinibandComponent(Component):
    """PAPI component over the simulated NIC port counters."""

    name = "infiniband"
    description = "InfiniBand umad port counters (4-byte units)"
    read_latency_seconds = 5.0e-5

    def __init__(self, node: Node):
        self.node = node

    # ------------------------------------------------------------------
    def list_events(self) -> List[str]:
        events = []
        for nic in self.node.nics:
            for counter in ("port_recv_data", "port_xmit_data"):
                events.append(
                    f"{self.name}{COMPONENT_DELIMITER}{nic.name}:{counter}")
        return events

    def open_event(self, name: str) -> NativeEventHandle:
        body = self.strip_prefix(name)
        m = _EVENT_RE.match(body)
        if not m:
            raise PapiNoEvent(
                f"bad infiniband event {name!r}; expected "
                f"infiniband:::<port>_ext:port_[recv|xmit]_data"
            )
        matches = [n for n in self.node.nics if n.name == m.group("port")]
        if not matches:
            raise PapiNoEvent(
                f"no IB port {m.group('port')!r} on "
                f"{self.node.config.name}; "
                f"available: {[n.name for n in self.node.nics]}"
            )
        nic = matches[0]
        counter = m.group("counter")

        def reader() -> int:
            return (nic.port_recv_data if counter == "port_recv_data"
                    else nic.port_xmit_data)

        return NativeEventHandle(
            name=name, reader=reader, component=self, units="4-byte words")
