"""The PAPI PCP component — the paper's protagonist.

"The PCP component of PAPI operates by communicating with the
Performance Metrics Collector Daemon (PMCD) running on a given system.
... PAPI then queries the PMCD via the PCP component without the user
requiring any special permissions."

Event names follow Table I:
``pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87``
— a PCP metric name plus an instance qualifier selecting the socket.

The component batches: one event-set read issues a single pmFetch for
all its metrics (one daemon round trip), exactly like the real
component. The round-trip latency is charged to the node clock by the
client context, making the PCP measurement window slightly longer than
a direct perf_uncore read — the only systematic difference between the
two paths.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...errors import PapiNoEvent, PCPError
from ...machine.node import Node
from ...pcp.session import PcpSession
from ..component import Component, NativeEventHandle
from ..consts import COMPONENT_DELIMITER
from ...pmu.events import socket_instance_cpu


class PCPComponent(Component):
    """PAPI component backed by a :class:`PcpSession`."""

    name = "pcp"
    description = ("Performance Co-Pilot metrics exported by PMCD "
                   "(unprivileged access to nest counters)")
    # Latency is paid inside the pmapi context (per round trip), not per
    # event — leave the generic per-read hook at zero.
    read_latency_seconds = 0.0

    def __init__(self, context: PcpSession, node: Node):
        self.context = context
        self.node = node
        #: metric name -> pmid, filled lazily on open.
        self._pmid_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def list_events(self) -> List[str]:
        """Enumerate every (metric, instance) pair as a PAPI event."""
        events = []
        for metric in self.context.traverse("perfevent"):
            for socket in self.node.sockets:
                cpu = socket_instance_cpu(self.node.config, socket.socket_id)
                events.append(
                    f"{self.name}{COMPONENT_DELIMITER}{metric}:cpu{cpu}")
        return events

    def daemon_events(self) -> List[str]:
        """The daemon's pmcd.* self-metrics as addressable PAPI events.

        Kept out of :meth:`list_events` (which enumerates the paper's
        hardware counters) but fully openable: reading them measures
        the measurement infrastructure itself.
        """
        try:
            metrics = self.context.traverse("pmcd")
        except PCPError:
            return []  # daemon without self-instrumentation
        return [f"{self.name}{COMPONENT_DELIMITER}{metric}:pmcd"
                for metric in metrics]

    def daemon_overhead(self) -> Dict[str, float]:
        """Service-layer overhead counters for this component's path."""
        return self.context.daemon_overhead()

    # ------------------------------------------------------------------
    def parse_event(self, name: str) -> Tuple[str, str]:
        """Split ``pcp:::metric.path:instance`` → (metric, instance)."""
        body = self.strip_prefix(name)
        metric, sep, instance = body.rpartition(":")
        if not sep or not metric or not instance:
            raise PapiNoEvent(
                f"PCP event {name!r} must be of the form "
                f"pcp:::<metric>:<instance>"
            )
        return metric, instance

    def open_event(self, name: str) -> NativeEventHandle:
        metric, instance = self.parse_event(name)
        try:
            pmid = self.context.lookup_names([metric])[0]
        except PCPError as exc:
            raise PapiNoEvent(str(exc)) from exc
        # Validate the instance exists now, so add_event fails fast.
        values = self.context.fetch([pmid])[pmid]
        if instance not in values:
            raise PapiNoEvent(
                f"metric {metric!r} has no instance {instance!r}; "
                f"available: {sorted(values)}"
            )
        self._pmid_cache[metric] = pmid

        def reader() -> int:
            return self.context.fetch_one(metric, instance)

        return NativeEventHandle(
            name=name, reader=reader, component=self, units="bytes")

    # ------------------------------------------------------------------
    def read_events(self, handles: List[NativeEventHandle]) -> List[int]:
        """Batched read: ONE pmFetch (one round trip) for all events."""
        parsed = [self.parse_event(h.name) for h in handles]
        pmids = []
        for metric, _ in parsed:
            pmid = self._pmid_cache.get(metric)
            if pmid is None:
                pmid = self.context.lookup_names([metric])[0]
                self._pmid_cache[metric] = pmid
            pmids.append(pmid)
        fetched = self.context.fetch(pmids)
        out = []
        for (metric, instance), pmid in zip(parsed, pmids):
            values = fetched[pmid]
            if instance not in values:
                raise PapiNoEvent(
                    f"metric {metric!r} lost instance {instance!r}")
            out.append(values[instance])
        return out
