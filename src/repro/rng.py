"""Deterministic random-number plumbing.

All stochastic elements of the simulation (background daemon traffic,
counter-capture jitter, run-to-run variation) draw from
:class:`numpy.random.Generator` instances derived from a single seed, so
every experiment is exactly reproducible. Substreams are derived with
``spawn_key``-style hashing so that adding a consumer never perturbs the
draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used across the package when an experiment does not
#: specify one. Chosen arbitrarily; fixed for reproducibility.
DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an ``int`` seed, an existing generator (returned unchanged),
    or ``None`` (uses :data:`DEFAULT_SEED`).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def derive_seed(seed: Optional[int], *labels: str) -> int:
    """Derive a child seed from ``seed`` and a sequence of string labels.

    The derivation is a SHA-256 hash, so distinct label paths give
    independent streams and the mapping is stable across platforms and
    Python versions (unlike ``hash``).
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    digest = hashlib.sha256()
    digest.update(str(base).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def substream(seed: Optional[int], *labels: str) -> np.random.Generator:
    """Generator seeded from :func:`derive_seed` of ``seed`` and labels."""
    return np.random.default_rng(derive_seed(seed, *labels))
