"""Figures 2-4: GEMM memory traffic across measurement paths.

* **Fig 2** — single-threaded GEMM, ONE repetition: measurements are
  noise-dominated for small N and drift above expectation for large N,
  on both (a) Summit via PCP and (b) Tellico via perf_uncore. The
  shaded divergence band (Eqs. 3-4) is reported alongside.
* **Fig 3** — adaptive repetitions (Eq. 5) on Summit/PCP: (a) the
  single-thread run still diverges *gradually* (idle-slice
  re-appropriation removes the 5 MB jump); (b) the batched run (one
  GEMM per core) matches expectation until the per-core 5 MB boundary,
  then jumps drastically.
* **Fig 4** — the same pair on Tellico via direct perf_uncore events,
  demonstrating the PCP path is as accurate as direct access.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..kernels.blas import Gemm
from ..measure.expectations import gemm_divergence_band
from ..measure.repetition import repetitions_for, sweep_sizes
from ..measure.session import MeasurementSession
from ..units import MIB
from .registry import ExperimentResult, register

DEFAULT_SIZES = tuple(sweep_sizes(64, 4096, points_per_octave=2))


def _gemm_sweep(session: MeasurementSession, sizes: Sequence[int],
                batched: bool, adaptive_reps: bool) -> List[list]:
    rows = []
    n_cores = session.batch_core_count() if batched else 1
    for n in sizes:
        reps = repetitions_for(n) if adaptive_reps else 1
        result = session.measure_kernel(Gemm(n), n_cores=n_cores,
                                        repetitions=reps)
        rows.append([
            n, n_cores, reps,
            result.measured.read_bytes, result.measured.write_bytes,
            result.expected.read_bytes, result.expected.write_bytes,
            round(result.read_ratio, 3), round(result.write_ratio, 3),
        ])
    return rows


_HEADERS = ["N", "cores", "reps", "meas_read_B", "meas_write_B",
            "exp_read_B", "exp_write_B", "read_ratio", "write_ratio"]


def _band_note(session: MeasurementSession) -> str:
    band = gemm_divergence_band(session.machine.socket.l3_per_core_bytes)
    return (f"Divergence band (Eqs. 3-4, {5}MB per-core L3): "
            f"N in [{band.lower:.0f}, {band.upper:.0f}].")


@register("fig2", "Single-threaded GEMM, 1 repetition (PCP vs perf_uncore)",
          paper_ref="Fig 2")
def fig2(sizes: Optional[Sequence[int]] = None,
         seed: Optional[int] = None) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    summit = MeasurementSession("summit", via="pcp", seed=seed)
    tellico = MeasurementSession("tellico", via="perf_event_uncore",
                                 seed=seed)
    rows_a = _gemm_sweep(summit, sizes, batched=False, adaptive_reps=False)
    rows_b = _gemm_sweep(tellico, sizes, batched=False, adaptive_reps=False)
    rows = ([["(a) summit/pcp"] + r for r in rows_a]
            + [["(b) tellico/uncore"] + r for r in rows_b])
    band = gemm_divergence_band(5 * MIB)
    return ExperimentResult(
        experiment_id="fig2",
        title="Memory traffic of single-threaded GEMM, 1 repetition",
        headers=["panel"] + _HEADERS,
        rows=rows,
        notes=_band_note(summit),
        extras={"summit": rows_a, "tellico": rows_b,
                "band": (band.lower, band.upper), "sizes": list(sizes),
                "plot": {"n_col": 0, "ratio_cols": {"read ratio": 7},
                         "panels": {"(a) summit/pcp": rows_a,
                                    "(b) tellico/uncore": rows_b}}},
    )


@register("fig3", "GEMM with adaptive repetitions: single vs batched (PCP)",
          paper_ref="Fig 3")
def fig3(sizes: Optional[Sequence[int]] = None,
         seed: Optional[int] = None) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    session = MeasurementSession("summit", via="pcp", seed=seed)
    rows_a = _gemm_sweep(session, sizes, batched=False, adaptive_reps=True)
    rows_b = _gemm_sweep(session, sizes, batched=True, adaptive_reps=True)
    rows = ([["(a) single-thread"] + r for r in rows_a]
            + [["(b) batched"] + r for r in rows_b])
    return ExperimentResult(
        experiment_id="fig3",
        title="GEMM traffic, adaptive repetitions (Eq. 5), Summit/PCP",
        headers=["panel"] + _HEADERS,
        rows=rows,
        notes=("(a) diverges gradually, no jump at N~809 (a lone core "
               "re-appropriates idle L3 slices); (b) matches expectation "
               "then jumps drastically past the per-core 5 MB boundary. "
               + _band_note(session)),
        extras={"single": rows_a, "batched": rows_b, "sizes": list(sizes),
                "plot": {"n_col": 0, "ratio_cols": {"read ratio": 7},
                         "panels": {"(a) single-thread": rows_a,
                                    "(b) batched": rows_b}}},
    )


@register("fig4", "GEMM with adaptive repetitions on Tellico (perf_uncore)",
          paper_ref="Fig 4")
def fig4(sizes: Optional[Sequence[int]] = None,
         seed: Optional[int] = None) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    session = MeasurementSession("tellico", via="perf_event_uncore",
                                 seed=seed)
    rows_a = _gemm_sweep(session, sizes, batched=False, adaptive_reps=True)
    rows_b = _gemm_sweep(session, sizes, batched=True, adaptive_reps=True)
    rows = ([["(a) single-thread"] + r for r in rows_a]
            + [["(b) batched"] + r for r in rows_b])
    return ExperimentResult(
        experiment_id="fig4",
        title="GEMM traffic via direct perf_uncore events, Tellico",
        headers=["panel"] + _HEADERS,
        rows=rows,
        notes=("Same behaviour as Fig 3 without PCP in the loop: the "
               "single-thread divergence is not a PCP artifact. "
               + _band_note(session)),
        extras={"single": rows_a, "batched": rows_b, "sizes": list(sizes),
                "plot": {"n_col": 0, "ratio_cols": {"read ratio": 7},
                         "panels": {"(a) single-thread": rows_a,
                                    "(b) batched": rows_b}}},
    )
