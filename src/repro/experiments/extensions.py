"""Extension experiments beyond the paper's figures.

* ``ext-power10`` — the paper's stated future work: "extend these
  techniques to accurately measure memory traffic ... in upcoming IBM
  systems (e.g. POWER10)". Re-runs the Fig 3 methodology on the
  POWER10-class configuration and locates the new divergence band and
  batched-jump boundary implied by its 8 MB-per-core L3.
* ``ext-gridshape`` — sensitivity of the 3D-FFT's communication volume
  and resort traffic to the virtual processor grid's aspect ratio at a
  fixed rank count (the r × c choice the paper takes as given).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..fft3d.app import FFT3DApp
from ..kernels.blas import Gemm
from ..machine.config import POWER10, SUMMIT
from ..measure.expectations import gemm_divergence_band
from ..measure.repetition import repetitions_for
from ..measure.session import MeasurementSession
from ..mpi.grid import ProcessorGrid
from ..rng import derive_seed
from .registry import ExperimentResult, register


@register("ext-power10", "Fig 3 methodology projected to POWER10",
          paper_ref="§V future work")
def ext_power10(sizes: Optional[Sequence[int]] = None,
                seed: Optional[int] = None) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else (256, 512, 720, 1024, 1280, 2048)
    session = MeasurementSession(POWER10, via="pcp", seed=seed)
    band = gemm_divergence_band(POWER10.socket.l3_per_core_bytes)
    rows = []
    batched = {}
    for n in sizes:
        reps = repetitions_for(n)
        cores = session.batch_core_count()
        result = session.measure_kernel(Gemm(n), n_cores=cores,
                                        repetitions=reps)
        rows.append([n, cores, reps, round(result.read_ratio, 3),
                     round(result.write_ratio, 3)])
        batched[n] = result.read_ratio
    return ExperimentResult(
        experiment_id="ext-power10",
        title="Batched GEMM on POWER10 (PCP path, Eq. 5 repetitions)",
        headers=["N", "cores", "reps", "read_ratio", "write_ratio"],
        rows=rows,
        notes=(f"POWER10's 8 MB per-core L3 moves the divergence band to "
               f"N in [{band.lower:.0f}, {band.upper:.0f}] (Summit: "
               f"[467, 809]); the batched jump follows the new upper "
               "bound. The measurement methodology transfers unchanged."),
        extras={"batched": batched, "band": (band.lower, band.upper)},
    )


@register("ext-spmv", "SpMV gather amplification vs source-vector size",
          paper_ref="§III (traffic-law methodology)")
def ext_spmv(sizes: Optional[Sequence[int]] = None, nnz_per_row: int = 8,
             seed: Optional[int] = None) -> ExperimentResult:
    """Irregular gathers: the same cache-boundary methodology the paper
    applies to dense kernels, applied to CSR SpMV. While the source
    vector x fits the per-core L3 share its gather costs one cold read;
    past the boundary every non-zero pulls a whole 64 B granule."""
    from ..engine.analytic import CacheContext
    from ..kernels.sparse import SpmvKernel
    from ..units import MIB

    sizes = tuple(sizes) if sizes else (1 << 14, 1 << 16, 1 << 18,
                                        1 << 20, 1 << 22)
    ctx = CacheContext(capacity_bytes=5 * MIB)
    boundary = 5 * MIB // 8
    rows = []
    per_nnz = {}
    for n in sizes:
        # Shape-only kernels: the traffic law needs the sparsity shape,
        # not gigabytes of matrix data.
        kernel = SpmvKernel.from_shape(n, nnz_per_row, seed=seed)
        traffic = kernel.traffic(ctx)
        ratio = traffic.read_bytes / kernel.matrix.nnz
        rows.append([n, n * 8, round(ratio, 2),
                     "cached" if n < boundary else "gather-amplified"])
        per_nnz[n] = ratio
    return ExperimentResult(
        experiment_id="ext-spmv",
        title=f"CSR SpMV read bytes per non-zero ({nnz_per_row} nnz/row)",
        headers=["n", "x bytes", "read B/nnz", "regime"],
        rows=rows,
        notes=(f"Boundary where x exceeds the 5 MB per-core share: "
               f"n ~ {boundary}. Below it each non-zero costs ~13 B "
               "(8 B value + 4 B index + amortised x); above it the "
               "gather adds a 64 B granule per non-zero."),
        extras={"per_nnz": per_nnz, "boundary": boundary},
    )


@register("ext-gridshape", "3D-FFT traffic vs processor-grid aspect ratio",
          paper_ref="§IV (grid choice)")
def ext_gridshape(n: int = 1024, seed: Optional[int] = None
                  ) -> ExperimentResult:
    shapes = [(1, 8), (2, 4), (4, 2), (8, 1)]
    rows = []
    extras = {"per_shape": {}}
    for r, c in shapes:
        app = FFT3DApp(n=n, grid=ProcessorGrid(r, c), machine=SUMMIT,
                       use_gpu=False,
                       seed=derive_seed(seed, f"grid{r}x{c}"))
        app.run(slices_per_phase=1)
        recv = sum(nic.recv_octets for node in app.cluster.nodes
                   for nic in node.nics)
        s1 = app.resort_summary("s1cf")
        ratio = (sum(t.read_bytes for t in s1)
                 / sum(t.write_bytes for t in s1))
        runtime = app.cluster.clock
        rows.append([f"{r}x{c}", round(recv / 1e6, 1),
                     round(ratio, 3), round(runtime * 1e3, 2)])
        extras["per_shape"][(r, c)] = {
            "net_bytes": recv, "s1cf_ratio": ratio, "runtime": runtime,
        }
    return ExperimentResult(
        experiment_id="ext-gridshape",
        title=f"3D-FFT (N={n}, 8 ranks) across grid aspect ratios",
        headers=["grid r x c", "IB recv MB", "S1CF r/w", "runtime ms"],
        rows=rows,
        notes=("Degenerate grids (1 x 8 / 8 x 1) push one of the two "
               "All2Alls across every rank pair while the other "
               "vanishes; the resort traffic ratios are invariant — the "
               "2:1 S1CF signature is a property of the access pattern, "
               "not the decomposition."),
        extras=extras,
    )
