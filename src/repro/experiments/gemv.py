"""Figure 5: batched, capped GEMV on POWER9 (PCP vs perf_uncore).

The sweep follows the paper's construction: square GEMV (M = N = P)
until the matrix would exceed the per-thread L3 share (M = 1280), then
the *capped* GEMV with N = P = 1280 fixed and only the output vector
growing. Reads should track the expectation (square law M²+2M below
the transition, capped law M·N+M+N above); writes exceed expectation
and only settle once M is large (≈10⁴).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..kernels.blas import CappedGemv
from ..measure.expectations import CAPPED_GEMV_TRANSITION
from ..measure.repetition import repetitions_for
from ..measure.session import MeasurementSession
from .registry import ExperimentResult, register

DEFAULT_SIZES = (256, 512, 1024, 1280, 2048, 4096, 8192, 16384,
                 65536, 262144, 1048576)

_HEADERS = ["M", "N=P", "regime", "reps", "meas_read_B", "meas_write_B",
            "exp_read_B", "exp_write_B", "read_ratio", "write_ratio"]


def _gemv_sweep(session: MeasurementSession,
                sizes: Sequence[int]) -> List[list]:
    rows = []
    n_cores = session.batch_core_count()
    for m in sizes:
        n = p = min(m, CAPPED_GEMV_TRANSITION)
        kernel = CappedGemv(m=m, n=n, p=p)
        reps = repetitions_for(min(m, 4096))
        result = session.measure_kernel(kernel, n_cores=n_cores,
                                        repetitions=reps)
        rows.append([
            m, n, "square" if kernel.square else "capped", reps,
            result.measured.read_bytes, result.measured.write_bytes,
            result.expected.read_bytes, result.expected.write_bytes,
            round(result.read_ratio, 3), round(result.write_ratio, 3),
        ])
    return rows


@register("fig5", "Batched capped GEMV (PCP vs perf_uncore)",
          paper_ref="Fig 5")
def fig5(sizes: Optional[Sequence[int]] = None,
         seed: Optional[int] = None) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    summit = MeasurementSession("summit", via="pcp", seed=seed)
    tellico = MeasurementSession("tellico", via="perf_event_uncore",
                                 seed=seed)
    rows_a = _gemv_sweep(summit, sizes)
    rows_b = _gemv_sweep(tellico, sizes)
    rows = ([["(a) summit/pcp"] + r for r in rows_a]
            + [["(b) tellico/uncore"] + r for r in rows_b])
    return ExperimentResult(
        experiment_id="fig5",
        title="Memory traffic of batched, capped GEMV",
        headers=["panel"] + _HEADERS,
        rows=rows,
        notes=(f"Square->capped transition at M = {CAPPED_GEMV_TRANSITION}. "
               "Reads match expectation in both regimes; writes show "
               "extraneous traffic (fresh-buffer first-touch per "
               "repetition) that only amortises once M exceeds ~1e4 — "
               "on both machines, so it is not a PCP artifact."),
        extras={"summit": rows_a, "tellico": rows_b, "sizes": list(sizes),
                "plot": {"n_col": 0,
                         "ratio_cols": {"read ratio": 8,
                                        "write ratio": 9},
                         "panels": {"(a) summit/pcp": rows_a,
                                    "(b) tellico/uncore": rows_b}}},
    )
