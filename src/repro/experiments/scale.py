"""Figure 10: larger-scale 3D-FFT job — S1CF / S2CF at N = 1344, 2016.

"For a larger-scale job ... we use 16 compute nodes on a 4-by-8
virtual processor grid to perform computations on the problem sizes
N = {1344, 2016}. We do not use the -fprefetch-loop-arrays compiler
flag for this job. We expect two reads per write in S1CF and one read
per write in S2CF."

The reproduction runs the full instrumented pipeline on the simulated
32-rank cluster several times and reports the min/max per-rank traffic
of the S1CF and S2CF phases against those expectations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..fft3d.app import FFT3DApp
from ..machine.config import SUMMIT
from ..mpi.grid import ProcessorGrid
from ..rng import derive_seed
from .registry import ExperimentResult, register

DEFAULT_SIZES = (1344, 2016)
GRID = ProcessorGrid(4, 8)   # 32 ranks = 16 Summit nodes

_HEADERS = ["routine", "N", "ranks", "runs",
            "read/elem min", "read/elem max",
            "write/elem min", "write/elem max",
            "exp r/w ratio", "meas r/w ratio"]


@register("fig10", "S1CF and S2CF at scale (16 nodes, 4x8 grid)",
          paper_ref="Fig 10")
def fig10(sizes: Optional[Sequence[int]] = None, n_runs: int = 3,
          seed: Optional[int] = None) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    rows: List[list] = []
    extras: Dict = {"per_routine": {}}
    for n in sizes:
        samples: Dict[str, Dict[str, List[float]]] = {
            "s1cf": {"read": [], "write": []},
            "s2cf": {"read": [], "write": []},
        }
        for run in range(n_runs):
            app = FFT3DApp(n=n, grid=GRID, machine=SUMMIT, use_gpu=False,
                           seed=derive_seed(seed, f"fig10-{n}-{run}"))
            app.run(slices_per_phase=1)
            block_bytes = app.block.nbytes
            for routine in samples:
                for record in app.resort_summary(routine):
                    samples[routine]["read"].append(
                        record.read_bytes / block_bytes)
                    samples[routine]["write"].append(
                        record.write_bytes / block_bytes)
        for routine, expected_ratio in (("s1cf", 2.0), ("s2cf", 1.0)):
            reads = samples[routine]["read"]
            writes = samples[routine]["write"]
            mean_r = sum(reads) / len(reads)
            mean_w = sum(writes) / len(writes)
            rows.append([
                routine.upper(), n, GRID.size, n_runs,
                round(min(reads), 3), round(max(reads), 3),
                round(min(writes), 3), round(max(writes), 3),
                expected_ratio, round(mean_r / mean_w, 3),
            ])
            extras["per_routine"].setdefault(routine, {})[n] = {
                "reads": reads, "writes": writes,
                "ratio": mean_r / mean_w,
            }
    return ExperimentResult(
        experiment_id="fig10",
        title="Performance of S1CF and S2CF (larger-scale job)",
        headers=_HEADERS,
        rows=rows,
        notes=("No -fprefetch-loop-arrays. Expected: 2 reads per write "
               "in S1CF (strided writes -> read-for-ownership), 1 read "
               "per write in S2CF (stores bypass the cache)."),
        extras=extras,
    )
