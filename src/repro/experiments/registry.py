"""Experiment registry: table/figure id → reproduction callable.

Every experiment returns an :class:`ExperimentResult` — headers, rows,
and a free-form ``extras`` dict with the quantities the benchmarks
assert on (ratios, crossovers, phase signatures). ``repro-experiments
<id>`` on the command line prints the table.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from ..errors import ConfigurationError
from ..measure.report import format_table


@dataclasses.dataclass
class ExperimentResult:
    """The regenerated content of one table or figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Sequence]
    notes: str = ""
    extras: Dict = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\n\n{self.notes}"
        return text


@dataclasses.dataclass(frozen=True)
class Experiment:
    """Registry entry."""

    experiment_id: str
    title: str
    func: Callable[..., ExperimentResult]
    paper_ref: str = ""


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_ref: str = ""):
    """Decorator adding an experiment function to the registry."""

    def wrap(func: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(
                f"experiment {experiment_id!r} registered twice")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id, title=title, func=func,
            paper_ref=paper_ref)
        return func

    return wrap


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(_REGISTRY)}") from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    return get_experiment(experiment_id).func(**kwargs)


def all_experiments() -> List[Experiment]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    """Import every experiment module so the registry is populated."""
    from . import (  # noqa: F401
        extensions,
        gemm,
        gemv,
        profiles,
        resort,
        scale,
        tables,
    )
