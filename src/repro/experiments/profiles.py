"""Figures 11-12: multi-component performance profiles.

Fig 11 profiles one rank of the GPU 3D-FFT (32 nodes, 8×8 grid):
memory read/write rates (PCP nest events), GPU power (NVML) and
InfiniBand receive traffic, sampled together. Every phase has a
unique signature: H2D read burst → GPU power spike → D2H write burst
for the 1D-FFT phases; 2:1 read:write for the 1st/3rd re-sorts; 1:1
at higher bandwidth for the 2nd/4th; network jumps in the All2Alls.

Fig 12 does the same for the QMCPACK example problem (VMC no-drift →
VMC drift → DMC), whose stages are likewise distinguishable.
"""

from __future__ import annotations

from typing import Optional

from ..fft3d.app import FFT3DApp
from ..machine.config import SUMMIT
from ..measure.timeline import MultiComponentProfiler, Timeline
from ..mpi.grid import ProcessorGrid
from ..papi.papi import library_init
from ..pcp.pmcd import start_pmcd_for_node
from ..qmc.app import QMCPACKApp
from .registry import ExperimentResult, register

_HEADERS = ["phase", "t_start_ms", "dur_ms", "mem_read_GB/s",
            "mem_write_GB/s", "gpu_power_W", "net_recv_GB/s",
            "cpu_power_W"]


def _timeline_rows(timeline: Timeline):
    rows = []
    for s in timeline.samples:
        rows.append([
            s.label,
            round(s.t_start * 1e3, 3), round(s.duration * 1e3, 3),
            round(s.mem_read_rate / 1e9, 3),
            round(s.mem_write_rate / 1e9, 3),
            round(s.gpu_power_w, 1),
            round(s.net_recv_rate / 1e9, 3),
            round(s.cpu_power_w, 1),
        ])
    return rows


@register("fig11", "3D-FFT rank profile (memory + GPU power + network)",
          paper_ref="Fig 11")
def fig11(n: int = 2016, slices_per_phase: int = 4,
          seed: Optional[int] = None) -> ExperimentResult:
    grid = ProcessorGrid(8, 8)   # 64 ranks = 32 Summit nodes
    app = FFT3DApp(n=n, grid=grid, machine=SUMMIT, use_gpu=True, seed=seed)
    node0 = app.cluster.nodes[0]
    papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
    profiler = MultiComponentProfiler(papi, socket_id=0)
    timeline = profiler.profile(app.steps(slices_per_phase))
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Performance profile of a single 3D-FFT rank (N={n})",
        headers=_HEADERS,
        rows=_timeline_rows(timeline),
        notes=("Each region is uniquely identifiable: GPU power spikes "
               "sit between host-read and host-write bursts (1D-FFT "
               "phases); s1cf/s1pf show ~2x reads vs writes; s2cf/s2pf "
               "~equal at higher bandwidth; All2Alls spike "
               "port_recv_data."),
        extras={"timeline": timeline,
                "phase_totals": timeline.phase_totals()},
    )


@register("fig12", "QMCPACK rank profile (VMC no-drift / VMC drift / DMC)",
          paper_ref="Fig 12")
def fig12(n_nodes: int = 2, seed: Optional[int] = None) -> ExperimentResult:
    app = QMCPACKApp(machine=SUMMIT, n_nodes=n_nodes, seed=seed)
    node0 = app.cluster.nodes[0]
    papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
    profiler = MultiComponentProfiler(papi, socket_id=0)
    timeline = profiler.profile(app.steps())
    energies = {
        phase: (sum(b.energy for b in blocks) / len(blocks)
                if blocks else float("nan"))
        for phase, blocks in app.results.items()
    }
    return ExperimentResult(
        experiment_id="fig12",
        title="Performance profile of a single QMCPACK rank",
        headers=_HEADERS,
        rows=_timeline_rows(timeline),
        notes=("Stages distinguishable by GPU power plateau (no-drift < "
               "drift < DMC), per-block traffic, and DMC-only walker-"
               "exchange network activity. Physics check — block mean "
               f"energies: {energies} (exact: {app.psi.exact_energy})."),
        extras={"timeline": timeline,
                "phase_totals": timeline.phase_totals(),
                "energies": energies,
                "exact_energy": app.psi.exact_energy},
    )
