"""Tables I and II: the performance-event inventory.

Table I lists the nest memory-traffic events per system (PCP spelling
on Summit, perf_uncore spelling on Tellico); Table II the supplemental
NVML and InfiniBand events used for the multi-component profiles. The
reproduction enumerates the events *from the live components* — i.e.
it verifies the simulated stack actually exposes what the paper lists,
rather than echoing strings.
"""

from __future__ import annotations

from typing import Optional

from ..machine.config import SUMMIT, TELLICO
from ..machine.node import Node
from ..papi.papi import library_init
from ..pcp.pmcd import start_pmcd_for_node
from .registry import ExperimentResult, register


@register("table1", "Architectures and Performance Events",
          paper_ref="Table I")
def table1(seed: Optional[int] = None) -> ExperimentResult:
    """Enumerate the nest events each system's measurement path offers."""
    rows = []
    extras = {}
    # --- Summit: PCP component (unprivileged user) --------------------
    summit = Node(SUMMIT, seed=seed)
    papi_s = library_init(summit, pmcd=start_pmcd_for_node(summit))
    pcp_events = papi_s.component("pcp").list_events()
    extras["summit_events"] = pcp_events
    rows.append([
        "Summit", SUMMIT.arch,
        "pcp:::perfevent.hwcounters.nest_mba[0-7]_imc."
        "PM_MBA[0-7]_[READ|WRITE]_BYTES.value:cpu[87|175]",
        len(pcp_events),
    ])
    # --- Tellico: direct perf_uncore (privileged user) ----------------
    tellico = Node(TELLICO, seed=seed)
    papi_t = library_init(tellico)
    uncore_events = papi_t.component("perf_event_uncore").list_events()
    extras["tellico_events"] = uncore_events
    rows.append([
        "Tellico", TELLICO.arch,
        "power9_nest_mba[0-7]::PM_MBA[0-7]_[READ|WRITE]_BYTES:cpu=0",
        len(uncore_events),
    ])
    extras["summit_uncore_available"] = (
        papi_s.component("perf_event_uncore").is_available()[0])
    extras["tellico_uncore_available"] = (
        papi_t.component("perf_event_uncore").is_available()[0])
    return ExperimentResult(
        experiment_id="table1",
        title="Architectures and Performance Events",
        headers=["System", "Arch.", "Performance Events", "#events"],
        rows=rows,
        notes=("Summit's user is unprivileged: perf_event_uncore reports "
               "unavailable and the PCP component provides the nest "
               "counters through PMCD. Tellico reads them directly."),
        extras=extras,
    )


@register("table2", "Supplemental Performance Events", paper_ref="Table II")
def table2(seed: Optional[int] = None) -> ExperimentResult:
    """NVML (GPU power) and InfiniBand (port counters) events."""
    summit = Node(SUMMIT, seed=seed)
    papi = library_init(summit, pmcd=start_pmcd_for_node(summit))
    nvml_events = papi.component("nvml").list_events()
    ib_events = papi.component("infiniband").list_events()
    rows = [
        ["NVIDIA Tesla V100 GPU", "nvml", nvml_events[0], len(nvml_events)],
        ["Mellanox ConnectX-5", "infiniband",
         "infiniband:::mlx5_[0|1]_1_ext:port_recv_data", len(ib_events)],
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Supplemental Performance Events",
        headers=["Hardware", "PAPI Component", "Performance Event",
                 "#events"],
        rows=rows,
        extras={"nvml_events": nvml_events, "ib_events": ib_events},
    )
