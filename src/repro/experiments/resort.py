"""Figures 6-9: memory traffic of the 3D-FFT re-sorting routines.

All four experiments run on a 2×4 virtual processor grid (8 MPI
ranks), measuring one rank's routine on a Summit socket via the PCP
component, with the min/max band over multiple runs — the paper's
presentation ("the range between the minimum and maximum measurements
of 50 runs"). The metric plotted is reads/writes *per element copied*
(in units of the 16-byte double-complex element), which exposes the
mechanisms directly:

====== ========================== ============ =============
figure routine                    no flags     -fprefetch-loop-arrays
====== ========================== ============ =============
6      S1CF loop nest 1           1 R : 1 W    2 R : 1 W
7      S1CF loop nest 2           2→5 R : 1 W  (faster, same shape)
8      S1CF combined nest         2 R : 1 W    (not measured)
9      S2CF                       1 R : 1 W    2 R : 1 W
====== ========================== ============ =============
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from ..fft3d.decomp import LocalBlock
from ..fft3d.resort import S1CFCombined, S1CFLoopNest1, S1CFLoopNest2, S2CF
from ..kernels.compiler import PREFETCH_LOOP_ARRAYS, compile_kernel
from ..measure.expectations import s1cf_ln2_boundary
from ..measure.session import MeasurementSession
from .registry import ExperimentResult, register

#: 2-by-4 virtual processor grid of the paper's Figs 6-9 jobs.
GRID_R, GRID_C = 2, 4
DEFAULT_SIZES = (128, 256, 384, 512, 640, 768, 896, 1024, 1280)
DEFAULT_RUNS = 5

_HEADERS = ["N", "flags", "read/elem min", "read/elem max",
            "write/elem min", "write/elem max", "exp read/elem",
            "exp write/elem", "GB/s"]


def _block_for(n: int) -> LocalBlock:
    return LocalBlock(planes=n // GRID_R, rows=n // GRID_C, cols=n)


def _resort_sweep(kernel_cls: Type, sizes: Sequence[int], flags: str,
                  n_runs: int, seed: Optional[int]) -> List[list]:
    session = MeasurementSession("summit", via="pcp", seed=seed)
    compiler = compile_kernel(flags)
    rows = []
    for n in sizes:
        block = _block_for(n)
        kernel = kernel_cls(block)
        elem_bytes = block.nbytes  # normalisation: bytes per element unit
        reads, writes = [], []
        bandwidth = 0.0
        for _ in range(n_runs):
            result = session.measure_kernel(
                kernel, n_cores=1, repetitions=1, compiler=compiler,
                assume_socket_busy=True)
            reads.append(result.measured.read_bytes / elem_bytes)
            writes.append(result.measured.write_bytes / elem_bytes)
            total = (result.measured.read_bytes
                     + result.measured.write_bytes)
            bandwidth = max(bandwidth,
                            total / result.runtime_per_rep / 1e9)
        expected = kernel.expected_traffic()
        rows.append([
            n, flags or "(none)",
            round(min(reads), 3), round(max(reads), 3),
            round(min(writes), 3), round(max(writes), 3),
            round(expected.read_bytes / elem_bytes, 3),
            round(expected.write_bytes / elem_bytes, 3),
            round(bandwidth, 2),
        ])
    return rows


def _two_panel(experiment_id: str, title: str, kernel_cls: Type,
               sizes: Optional[Sequence[int]], n_runs: int,
               seed: Optional[int], notes: str,
               with_prefetch_panel: bool = True) -> ExperimentResult:
    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    rows_a = _resort_sweep(kernel_cls, sizes, "", n_runs, seed)
    rows = [["(a)"] + r for r in rows_a]
    extras = {"plain": rows_a, "sizes": list(sizes)}
    if with_prefetch_panel:
        rows_b = _resort_sweep(kernel_cls, sizes, PREFETCH_LOOP_ARRAYS,
                               n_runs, seed)
        rows += [["(b)"] + r for r in rows_b]
        extras["prefetch"] = rows_b
    return ExperimentResult(
        experiment_id=experiment_id, title=title,
        headers=["panel"] + _HEADERS, rows=rows, notes=notes,
        extras=extras,
    )


@register("fig6", "S1CF loop nest 1 (cache-bypassing stores)",
          paper_ref="Fig 6")
def fig6(sizes: Optional[Sequence[int]] = None, n_runs: int = DEFAULT_RUNS,
         seed: Optional[int] = None) -> ExperimentResult:
    return _two_panel(
        "fig6", "Memory traffic of loop nest 1 in S1CF",
        S1CFLoopNest1, sizes, n_runs, seed,
        notes=("Sequential copy: expected 2 reads/element (in + tmp RFO) "
               "but only ONE read is observed — the stride-free store "
               "stream bypasses the cache. With -fprefetch-loop-arrays "
               "the dcbtst prefetch forces tmp into L3 and the second "
               "read appears."),
    )


@register("fig7", "S1CF loop nest 2 (strided reads, Eq. 7)",
          paper_ref="Fig 7")
def fig7(sizes: Optional[Sequence[int]] = None, n_runs: int = DEFAULT_RUNS,
         seed: Optional[int] = None) -> ExperimentResult:
    boundary = s1cf_ln2_boundary()
    result = _two_panel(
        "fig7", "Memory traffic of loop nest 2 in S1CF",
        S1CFLoopNest2, sizes, n_runs, seed,
        notes=(f"tmp is traversed with stride PLANES*ROWS; past N ~ "
               f"{boundary:.0f} (Eq. 7) each 16 B element costs a whole "
               "64 B granule: reads/element ramp from 2 toward 5. "
               "-fprefetch-loop-arrays leaves the traffic shape but "
               "substantially raises the achieved bandwidth."),
    )
    result.extras["eq7_boundary"] = boundary
    return result


@register("fig8", "S1CF combined loop nest", paper_ref="Fig 8")
def fig8(sizes: Optional[Sequence[int]] = None, n_runs: int = DEFAULT_RUNS,
         seed: Optional[int] = None) -> ExperimentResult:
    return _two_panel(
        "fig8", "S1CF as a single loop nest",
        S1CFCombined, sizes, n_runs, seed,
        notes=("Strided *writes*, sequential reads: the stores cannot "
               "bypass (read per write) but out's granules are reused "
               "within one column sweep — exactly 2 reads and 1 write "
               "per element at every size, as the paper observes."),
        with_prefetch_panel=False,
    )


@register("fig9", "S2CF (stride amortised)", paper_ref="Fig 9")
def fig9(sizes: Optional[Sequence[int]] = None, n_runs: int = DEFAULT_RUNS,
         seed: Optional[int] = None) -> ExperimentResult:
    return _two_panel(
        "fig9", "Memory traffic of S2CF",
        S2CF, sizes, n_runs, seed,
        notes=("The traversal's innermost dimension matches the layout's, "
               "amortising the stride: stores bypass the cache giving "
               "1 read : 1 write. The prefetch flag again forces the "
               "read-per-write (2 : 1)."),
    )
