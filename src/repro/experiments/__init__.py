"""Reproductions of every table and figure in the paper's evaluation.

Use :func:`run_experiment` with an id from :func:`all_experiments`
(``table1``, ``table2``, ``fig2`` ... ``fig12``), or the
``repro-experiments`` command line tool.
"""

from .registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_experiment,
)
from .registry import _ensure_loaded as _load

_load()

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
