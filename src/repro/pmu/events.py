"""Event-name tables for the POWER9 nest PMUs.

Two naming schemes appear in the paper's Table I:

* **Direct (Tellico)** — perf_event_uncore style, one PMU per memory
  channel: ``power9_nest_mba{ch}::PM_MBA{ch}_{READ,WRITE}_BYTES:cpu=0``.
  The ``cpu=`` qualifier selects which socket's nest is read (any CPU
  belonging to that socket works; the kernel routes to the right nest).
* **PCP (Summit)** — the perfevent PMDA exports the same counters as
  PCP metrics: ``perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_
  {READ,WRITE}_BYTES.value`` with one instance per CPU; the per-socket
  values appear on the *last hardware thread of each socket* (cpu87 and
  cpu175 on Summit's SMT4 22-core sockets).

This module is the single source of truth for those spellings; the
perf_event_uncore component, the perfevent PMDA and Table I's
reproduction all derive from it.
"""

from __future__ import annotations

from typing import List

from ..machine.config import MachineConfig

#: POWER9 runs 4 hardware threads per core (SMT4).
SMT_PER_CORE = 4


def uncore_pmu_name(channel: int) -> str:
    """perf_event_uncore PMU name for nest memory channel ``channel``."""
    return f"power9_nest_mba{channel}"


def uncore_event_name(channel: int, write: bool, cpu: int = 0) -> str:
    """Fully-qualified perf_event_uncore event name (Tellico style)."""
    direction = "WRITE" if write else "READ"
    return (f"{uncore_pmu_name(channel)}::PM_MBA{channel}_{direction}"
            f"_BYTES:cpu={cpu}")


def pcp_metric_name(channel: int, write: bool) -> str:
    """PCP metric name exported by the perfevent PMDA."""
    direction = "WRITE" if write else "READ"
    return (f"perfevent.hwcounters.nest_mba{channel}_imc."
            f"PM_MBA{channel}_{direction}_BYTES.value")


def pcp_event_name(channel: int, write: bool, cpu: int) -> str:
    """Fully-qualified PAPI PCP component event name (Summit style)."""
    return f"pcp:::{pcp_metric_name(channel, write)}:cpu{cpu}"


def socket_instance_cpu(machine: MachineConfig, socket_id: int) -> int:
    """The CPU instance carrying socket ``socket_id``'s nest values.

    The perfevent PMDA attaches each socket's nest counters to the last
    hardware thread of that socket — cpu87/cpu175 on Summit.
    """
    threads_per_socket = machine.socket.n_cores * SMT_PER_CORE
    return (socket_id + 1) * threads_per_socket - 1


def socket_of_cpu(machine: MachineConfig, cpu: int) -> int:
    """Inverse mapping: which socket does hardware thread ``cpu`` sit on."""
    threads_per_socket = machine.socket.n_cores * SMT_PER_CORE
    socket_id = cpu // threads_per_socket
    if not 0 <= socket_id < machine.n_sockets:
        raise ValueError(
            f"cpu {cpu} outside node with "
            f"{machine.n_sockets * threads_per_socket} hardware threads"
        )
    return socket_id


def all_uncore_events(machine: MachineConfig, cpu: int = 0) -> List[str]:
    """All nest memory-traffic events in direct perf_uncore spelling."""
    names = []
    for ch in range(machine.socket.n_memory_channels):
        names.append(uncore_event_name(ch, write=False, cpu=cpu))
        names.append(uncore_event_name(ch, write=True, cpu=cpu))
    return names


def all_pcp_events(machine: MachineConfig, socket_id: int) -> List[str]:
    """All nest memory-traffic events in PCP spelling for one socket."""
    cpu = socket_instance_cpu(machine, socket_id)
    names = []
    for ch in range(machine.socket.n_memory_channels):
        names.append(pcp_event_name(ch, write=False, cpu=cpu))
        names.append(pcp_event_name(ch, write=True, cpu=cpu))
    return names
