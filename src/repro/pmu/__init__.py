"""Nest PMU event tables and the privileged perf_uncore access path."""

from .events import (
    SMT_PER_CORE,
    all_pcp_events,
    all_uncore_events,
    pcp_event_name,
    pcp_metric_name,
    socket_instance_cpu,
    socket_of_cpu,
    uncore_event_name,
    uncore_pmu_name,
)
from .perf import (
    PerfUncoreHandle,
    UncoreEventSpec,
    open_uncore_event,
    parse_uncore_event,
    read_socket_traffic,
)

__all__ = [
    "PerfUncoreHandle",
    "SMT_PER_CORE",
    "UncoreEventSpec",
    "all_pcp_events",
    "all_uncore_events",
    "open_uncore_event",
    "parse_uncore_event",
    "pcp_event_name",
    "pcp_metric_name",
    "read_socket_traffic",
    "socket_instance_cpu",
    "socket_of_cpu",
    "uncore_event_name",
    "uncore_pmu_name",
]
