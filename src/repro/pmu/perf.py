"""perf_event-style direct access to the nest counters.

This is the *privileged* measurement path used on Tellico, where "we do
have elevated privileges, so we measure nest events without the use of
PCP. We define the perf_uncore events using the Nest IMC Memory
Offsets". Opening an uncore event checks the caller's privilege the
same way the kernel's ``perf_event_paranoid`` setting would: ordinary
users on Summit get :class:`~repro.errors.PrivilegeError`, which is
precisely why the PCP component exists.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from ..errors import PrivilegeError, SimulationError
from ..machine.node import Node
from .events import socket_of_cpu

_UNCORE_RE = re.compile(
    r"^power9_nest_mba(?P<pmu_ch>\d+)::"
    r"(?P<event>PM_MBA(?P<ev_ch>\d+)_(?P<dir>READ|WRITE)_BYTES)"
    r"(?::cpu=(?P<cpu>\d+))?$"
)


@dataclasses.dataclass(frozen=True)
class UncoreEventSpec:
    """Parsed ``power9_nest_mbaX::PM_MBAX_*_BYTES:cpu=N`` event."""

    channel: int
    write: bool
    cpu: int
    raw: str

    @property
    def counter_name(self) -> str:
        direction = "WRITE" if self.write else "READ"
        return f"PM_MBA{self.channel}_{direction}_BYTES"


def parse_uncore_event(name: str) -> UncoreEventSpec:
    """Parse and validate a perf_uncore nest event name."""
    m = _UNCORE_RE.match(name.strip())
    if not m:
        raise SimulationError(f"unrecognised uncore event name: {name!r}")
    pmu_ch = int(m.group("pmu_ch"))
    ev_ch = int(m.group("ev_ch"))
    if pmu_ch != ev_ch:
        raise SimulationError(
            f"event channel {ev_ch} does not match PMU channel {pmu_ch} "
            f"in {name!r}"
        )
    return UncoreEventSpec(
        channel=pmu_ch,
        write=m.group("dir") == "WRITE",
        cpu=int(m.group("cpu") or 0),
        raw=name,
    )


class PerfUncoreHandle:
    """An opened uncore counter (like a perf_event file descriptor)."""

    def __init__(self, node: Node, spec: UncoreEventSpec):
        self.node = node
        self.spec = spec
        self.socket_id = socket_of_cpu(node.config, spec.cpu)

    def read(self) -> int:
        """Raw (monotonic) counter value; requires privilege per read."""
        nest = self.node.socket(self.socket_id).nest
        return nest.read_event(self.spec.counter_name,
                               privileged=self.node.user_privileged)


def open_uncore_event(node: Node, name: str) -> PerfUncoreHandle:
    """Open a nest uncore event for direct reading.

    Raises :class:`PrivilegeError` when the simulated user lacks the
    elevated privileges required for socket-wide counters (Summit).
    """
    spec = parse_uncore_event(name)
    if not node.user_privileged:
        raise PrivilegeError(
            f"perf_event_open({name!r}) denied: uncore PMUs require "
            "elevated privileges on this system"
        )
    if spec.channel >= node.config.socket.n_memory_channels:
        raise SimulationError(
            f"channel {spec.channel} beyond this socket's "
            f"{node.config.socket.n_memory_channels} memory channels"
        )
    return PerfUncoreHandle(node, spec)


def read_socket_traffic(node: Node, socket_id: int,
                        privileged: Optional[bool] = None) -> dict:
    """Convenience: sum all channels of one socket (read, write) bytes.

    Used by tests and by the PMDA; honours the privilege gate unless a
    ``privileged`` override is supplied (the PMDA holds a privileged
    handle by construction).
    """
    priv = node.user_privileged if privileged is None else privileged
    nest = node.socket(socket_id).nest
    totals = {"read_bytes": 0, "write_bytes": 0}
    for name in nest.event_names:
        value = nest.read_event(name, privileged=priv)
        if "WRITE" in name:
            totals["write_bytes"] += value
        else:
            totals["read_bytes"] += value
    return totals
