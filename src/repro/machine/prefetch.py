"""Stride-N stream detection and software prefetch, POWER9 style.

The POWER9 ISA notes that "hardware may detect Stride-N streams in
intervals when they access elements that map to sequential cache
blocks". The paper leans on two consequences of this detector:

1. **Store bypass gating** — when *any* strided data stream is active on
   a core, stores do not bypass the cache, so every store incurs a
   read-for-ownership from memory (one "read per write"). When no
   strided stream is present (pure sequential copies such as S1CF loop
   nest 1 or S2CF), streaming stores bypass the cache and no extra read
   occurs.
2. **Software prefetch** — GCC's ``-fprefetch-loop-arrays`` inserts
   ``dcbt``/``dcbtst`` instructions; ``dcbtst`` "causes a single-line
   prefetch into the L3 cache" of the *store* target, forcing the
   read-per-write even for stride-free streams (Figs 6b, 9b).

:class:`StreamDetector` implements the detector as hardware would: a
small table of candidate streams keyed by the low bits of the access
address, promoting a candidate to *detected* after ``detect_threshold``
accesses with a stable non-zero stride.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from .config import PrefetchConfig


@dataclasses.dataclass
class _StreamState:
    last_addr: int
    stride: int = 0
    confirmations: int = 0
    detected: bool = False


class StreamDetector:
    """Detects strided access streams on one core.

    Accesses are reported per logical stream id (in real hardware the
    table is indexed by address region; kernels in this package tag
    accesses with the array they touch, which is equivalent for the
    regular loop nests under study and keeps detection exact).
    """

    def __init__(self, config: Optional[PrefetchConfig] = None):
        self.config = config or PrefetchConfig()
        self._streams: Dict[str, _StreamState] = {}

    def observe(self, stream_id: str, addr: int) -> None:
        """Feed one access address for ``stream_id`` into the detector."""
        state = self._streams.get(stream_id)
        if state is None:
            if len(self._streams) >= self.config.max_streams:
                # Replace the stalest candidate (not a detected stream).
                for key, st in self._streams.items():
                    if not st.detected:
                        del self._streams[key]
                        break
                else:
                    return  # table full of detected streams; drop
            self._streams[stream_id] = _StreamState(last_addr=addr)
            return
        stride = addr - state.last_addr
        state.last_addr = addr
        if stride == 0:
            return
        if stride == state.stride:
            state.confirmations += 1
            if state.confirmations + 1 >= self.config.detect_threshold:
                state.detected = True
        else:
            state.stride = stride
            state.confirmations = 0
            state.detected = state.detected  # once detected, stays hot

    def observe_regular(self, stream_id: str, stride_bytes: int,
                        n_accesses: int, base: int = 0) -> None:
        """Declare a perfectly regular stream without feeding every
        address (fast path used by the analytic engine)."""
        if n_accesses >= self.config.detect_threshold and stride_bytes != 0:
            self._streams[stream_id] = _StreamState(
                last_addr=base + stride_bytes * (n_accesses - 1),
                stride=stride_bytes,
                confirmations=n_accesses - 1,
                detected=True,
            )
        else:
            self._streams.setdefault(stream_id, _StreamState(last_addr=base))

    # ------------------------------------------------------------------
    def is_detected(self, stream_id: str) -> bool:
        state = self._streams.get(stream_id)
        return bool(state and state.detected)

    def detected_streams(self) -> List[str]:
        return [k for k, v in self._streams.items() if v.detected]

    def any_strided_detected(self, elem_size_hint: int = 8) -> bool:
        """True when a *strided* (non-unit) stream is detected.

        Unit-stride (sequential) streams — |stride| equal to the element
        size — do not gate the store bypass; only genuinely strided
        streams do, per the paper's S1CF/S2CF analysis.
        """
        for state in self._streams.values():
            if state.detected and abs(state.stride) > elem_size_hint:
                return True
        return False

    def reset(self) -> None:
        self._streams.clear()


@dataclasses.dataclass(frozen=True)
class SoftwarePrefetch:
    """Model of compiler-inserted prefetch instructions.

    ``dcbt`` prefetches load targets (reduces latency, traffic shape
    unchanged); ``dcbtst`` prefetches *store* targets into L3, which
    forces the store stream to be read from memory — the mechanism
    behind the extra read in Figs 6b and 9b.
    """

    dcbt: bool = False
    dcbtst: bool = False

    @classmethod
    def from_compiler_flags(cls, flags: str) -> "SoftwarePrefetch":
        """Derive the inserted prefetches from a GCC flag string."""
        enabled = "-fprefetch-loop-arrays" in flags.split()
        return cls(dcbt=enabled, dcbtst=enabled)

    @property
    def forces_store_read(self) -> bool:
        return self.dcbtst
