"""Simulated POWER9-class hardware substrate.

Public surface: machine configurations (:data:`SUMMIT`, :data:`TELLICO`,
:data:`SKYLAKE`), the exact cache simulator, the stride detector and
store-bypass policy, memory controllers with nest counters, and the
assembled :class:`~repro.machine.node.Node`.
"""

from .affinity import ThreadBinding, cores_per_socket, hw_thread_of, pin_threads
from .cache import CacheSim, TrafficCounters
from .config import (
    POWER10,
    SKYLAKE,
    SUMMIT,
    TELLICO,
    CacheConfig,
    GPUConfig,
    MachineConfig,
    NICConfig,
    PrefetchConfig,
    SocketConfig,
    get_machine,
)
from .core import Core
from .hierarchy import CacheShare, L3Topology
from .memory import ChannelCounters, MemoryController
from .nest import NestCounterBlock, nest_event_names
from .node import Node, Socket
from .prefetch import SoftwarePrefetch, StreamDetector
from .store import StoreContext, StorePolicy, resolve_store_policy, store_policy_for

__all__ = [
    "CacheConfig",
    "CacheShare",
    "CacheSim",
    "ChannelCounters",
    "Core",
    "GPUConfig",
    "L3Topology",
    "MachineConfig",
    "MemoryController",
    "NICConfig",
    "NestCounterBlock",
    "Node",
    "POWER10",
    "PrefetchConfig",
    "SKYLAKE",
    "SUMMIT",
    "Socket",
    "SocketConfig",
    "SoftwarePrefetch",
    "StoreContext",
    "StorePolicy",
    "StreamDetector",
    "TELLICO",
    "ThreadBinding",
    "TrafficCounters",
    "cores_per_socket",
    "get_machine",
    "hw_thread_of",
    "pin_threads",
    "nest_event_names",
    "resolve_store_policy",
    "store_policy_for",
]
