"""The POWER9 "nest" counter block and its privilege gate.

The nest (IBM's name for the uncore) hosts the memory-traffic counters.
Because the memory subsystem is shared between all processes on the
socket, reading these counters requires elevated privileges — the exact
restriction that motivates routing measurements through the PCP daemon
on Summit. :class:`NestCounterBlock` therefore checks the *privilege*
of the caller on every read: the PMCD daemon holds a privileged handle,
ordinary user code does not.

Event naming follows the Nest IMC Memory Offsets from the POWER9 PMU
User's Guide: ``PM_MBA{ch}_READ_BYTES`` / ``PM_MBA{ch}_WRITE_BYTES``
for channels 0-7.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import PrivilegeError, SimulationError
from .memory import MemoryController


def nest_event_names(n_channels: int = 8) -> List[str]:
    """All nest memory-traffic event names for one socket."""
    names = []
    for ch in range(n_channels):
        names.append(f"PM_MBA{ch}_READ_BYTES")
        names.append(f"PM_MBA{ch}_WRITE_BYTES")
    return names


class NestCounterBlock:
    """Privileged read access to one socket's memory-channel counters."""

    def __init__(self, socket_id: int, controller: MemoryController):
        self.socket_id = socket_id
        self._controller = controller

    @property
    def event_names(self) -> List[str]:
        return nest_event_names(self._controller.n_channels)

    def read_event(self, name: str, privileged: bool) -> int:
        """Read one counter value; raises unless ``privileged``.

        ``privileged`` reflects the credential of the *reader* — the
        PMCD daemon passes True, direct user reads pass the machine's
        ``user_privileged`` flag (True only on Tellico/Skylake here).
        """
        if not privileged:
            raise PrivilegeError(
                "reading nest (uncore) counters requires elevated "
                "privileges; use the PCP component instead"
            )
        parsed = self.parse_event(name)
        channel = self._controller.channels[parsed["channel"]]
        return channel.write_bytes if parsed["write"] else channel.read_bytes

    def read_all(self, privileged: bool) -> Dict[str, int]:
        return {name: self.read_event(name, privileged)
                for name in self.event_names}

    def parse_event(self, name: str) -> Dict[str, int]:
        """Parse ``PM_MBA{ch}_{READ|WRITE}_BYTES`` into its fields."""
        if not name.startswith("PM_MBA") or not name.endswith("_BYTES"):
            raise SimulationError(f"not a nest memory event: {name!r}")
        body = name[len("PM_MBA"):-len("_BYTES")]
        for direction, is_write in (("_READ", False), ("_WRITE", True)):
            if body.endswith(direction):
                ch_text = body[: -len(direction)]
                break
        else:
            raise SimulationError(f"not a nest memory event: {name!r}")
        try:
            ch = int(ch_text)
        except ValueError:
            raise SimulationError(f"bad channel in event {name!r}") from None
        if not 0 <= ch < self._controller.n_channels:
            raise SimulationError(
                f"channel {ch} out of range 0..{self._controller.n_channels - 1}"
            )
        return {"channel": ch, "write": int(is_write)}
