"""CPU core model: identity, pinning, and a simple timing model.

The experiments pin one software thread per physical core ("we pin only
one thread to each physical core"). A :class:`Core` tracks whether it is
busy (which feeds the L3 re-appropriation logic) and provides the
roofline-style timing estimate used to convert kernel work into
simulated wall-clock time — needed because the noise models are
time-proportional and the timeline profiler (Figs 11-12) is
time-resolved.
"""

from __future__ import annotations

import dataclasses

from ..errors import SimulationError
from .config import SocketConfig
from .prefetch import StreamDetector


@dataclasses.dataclass
class Core:
    """One physical core."""

    core_id: int        # global id on the node
    socket_id: int
    local_id: int       # index within the socket
    config: SocketConfig
    busy: bool = False
    reserved: bool = False  # set aside for system service tasks

    def __post_init__(self) -> None:
        self.detector = StreamDetector(self.config.prefetch)
        # Core-private PMU counters (unprivileged — unlike the nest).
        self.counter_cycles = 0
        self.counter_flops = 0
        self.counter_instructions = 0

    def retire_work(self, flops: float, seconds: float) -> None:
        """Account executed work into the core-private counters.

        The instruction estimate is deliberately simple (two retired
        instructions per FLOP for the scalar reference kernels: the
        arithmetic op plus its load/address update); what matters for
        the measurement layer is that the counters are core-private,
        monotonic, and readable without privilege.
        """
        if flops < 0 or seconds < 0:
            raise SimulationError("work amounts cannot be negative")
        self.counter_flops += int(flops)
        self.counter_cycles += int(seconds * self.config.core_frequency_hz)
        self.counter_instructions += int(2 * flops)

    @property
    def pair_id(self) -> int:
        """Index of the core pair (L3 slice) this core belongs to."""
        return self.local_id // self.config.cores_per_pair

    # ------------------------------------------------------------------
    def estimate_runtime(self, flops: float, mem_bytes: float,
                         active_cores_on_socket: int = 1) -> float:
        """Roofline runtime estimate for work executed on this core.

        The kernel is bound by either the core's arithmetic rate or its
        share of the socket memory bandwidth (bandwidth divides among
        active cores). Reference (unoptimised) kernels in the paper are
        far from peak; ``core_flops`` already reflects a sustained
        scalar rate.
        """
        if flops < 0 or mem_bytes < 0:
            raise SimulationError("work amounts cannot be negative")
        compute_time = flops / self.config.core_flops
        share = self.config.memory_bandwidth / max(1, active_cores_on_socket)
        memory_time = mem_bytes / share if share > 0 else 0.0
        return max(compute_time, memory_time)

    def mark_busy(self, busy: bool = True) -> None:
        if self.reserved and busy:
            raise SimulationError(
                f"core {self.core_id} is reserved for system service tasks"
            )
        self.busy = busy
