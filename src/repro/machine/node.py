"""Assembled compute node: sockets, cores, nest, GPUs, NICs, clock.

:class:`Node` is the root object of the hardware simulation. A node
owns a simulated wall clock; executing kernels advances it, and while
it advances, background (OS/daemon) traffic accumulates in the memory
controllers so that time-resolved profiles (Figs 11-12) show a
realistic noise floor. Counter-reading layers (perf_uncore, PCP) hold
references to the node's nest blocks and device counters.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError, SimulationError
from ..noise import NoiseConfig, NoiseModel
from ..rng import derive_seed
from .config import MachineConfig
from .core import Core
from .hierarchy import L3Topology
from .memory import MemoryController
from .nest import NestCounterBlock


class Socket:
    """One CPU socket with its cores, L3 topology, memory and nest."""

    def __init__(self, socket_id: int, machine: MachineConfig,
                 first_core_id: int):
        cfg = machine.socket
        self.socket_id = socket_id
        self.config = cfg
        self.memory = MemoryController(
            n_channels=cfg.n_memory_channels,
            granule=cfg.l3_slice.granule_bytes,
        )
        self.nest = NestCounterBlock(socket_id, self.memory)
        self.topology = L3Topology(cfg, machine.usable_cores_per_socket)
        self.cores: List[Core] = []
        for local_id in range(cfg.n_cores):
            core = Core(
                core_id=first_core_id + local_id,
                socket_id=socket_id,
                local_id=local_id,
                config=cfg,
                reserved=local_id >= machine.usable_cores_per_socket,
            )
            self.cores.append(core)

    @property
    def usable_cores(self) -> List[Core]:
        return [c for c in self.cores if not c.reserved]

    @property
    def active_core_count(self) -> int:
        return sum(1 for c in self.cores if c.busy)

    def record_traffic(self, read_bytes: int = 0, write_bytes: int = 0) -> None:
        self.memory.record(read_bytes=read_bytes, write_bytes=write_bytes)


class Node:
    """A full simulated compute node (see module docstring)."""

    def __init__(self, config: MachineConfig, seed: Optional[int] = None,
                 noise: Optional[NoiseConfig] = None):
        self.config = config
        self.seed = seed
        self.clock = 0.0
        self.sockets: List[Socket] = []
        first_core = 0
        for sid in range(config.n_sockets):
            self.sockets.append(Socket(sid, config, first_core))
            first_core += config.socket.n_cores
        self._noise_models = [
            NoiseModel(noise, seed=derive_seed(seed, config.name, f"socket{sid}"),
                       label="background")
            for sid in range(config.n_sockets)
        ]
        # Devices are attached lazily to keep the machine package free of
        # upward dependencies; see repro.gpu / repro.mpi.network.
        self.gpus: List = []
        self.nics: List = []
        # Clock listeners: called with dt after every advance, while
        # machine state (busy cores etc.) still reflects the interval —
        # energy models integrate power here.
        self._clock_listeners: List = []
        self._attach_devices()

    # ------------------------------------------------------------------
    def _attach_devices(self) -> None:
        if self.config.gpus_per_socket and self.config.gpu is not None:
            from ..gpu.device import GPUDevice  # late import (layering)

            idx = 0
            for sid in range(self.config.n_sockets):
                for _ in range(self.config.gpus_per_socket):
                    self.gpus.append(
                        GPUDevice(device_id=idx, socket_id=sid,
                                  config=self.config.gpu, node=self)
                    )
                    idx += 1
        if self.config.nics:
            from ..mpi.network import NICPort  # late import (layering)

            for nic_cfg in self.config.nics:
                self.nics.append(NICPort(nic_cfg))

    # ------------------------------------------------------------------
    @property
    def user_privileged(self) -> bool:
        return self.config.user_privileged

    def socket(self, socket_id: int) -> Socket:
        try:
            return self.sockets[socket_id]
        except IndexError:
            raise ConfigurationError(
                f"socket {socket_id} out of range (node has "
                f"{len(self.sockets)})"
            ) from None

    def core(self, core_id: int) -> Core:
        per_socket = self.config.socket.n_cores
        sid, local = divmod(core_id, per_socket)
        return self.socket(sid).cores[local]

    def gpus_on_socket(self, socket_id: int) -> List:
        return [g for g in self.gpus if g.socket_id == socket_id]

    # ------------------------------------------------------------------
    def advance(self, dt: float, background: bool = True) -> None:
        """Advance the node clock by ``dt`` simulated seconds.

        Background traffic lands in every socket's memory controller
        unless ``background`` is disabled (pure traffic-law tests).
        """
        if dt < 0:
            raise SimulationError("time cannot flow backwards")
        if dt == 0:
            return
        self.clock += dt
        if background:
            for sock, model in zip(self.sockets, self._noise_models):
                bg = model.background_traffic(dt)
                sock.record_traffic(bg.read_bytes, bg.write_bytes)
        for listener in self._clock_listeners:
            listener(dt)

    def on_advance(self, listener) -> None:
        """Register a callable invoked with ``dt`` after every clock
        advance (used by energy models to integrate power)."""
        self._clock_listeners.append(listener)

    def noise_model(self, socket_id: int) -> NoiseModel:
        return self._noise_models[socket_id]
