"""Store-handling policy: write-allocate versus streaming bypass.

The paper's central micro-architectural observation is that POWER9 (and
Skylake) stores *usually* cost a read from memory ("most modern hardware
architectures will impose a read operation for each element written"),
**except** when the store stream is stride-free and no strided stream is
active on the core, in which case the stores bypass the cache and no
read-for-ownership occurs. Software prefetch of the store target
(``dcbtst``) re-enables the read.

:func:`resolve_store_policy` encodes that decision table; both the exact
engine and the analytic engine consult it so the two models can never
disagree on policy.
"""

from __future__ import annotations

import dataclasses
import enum

from .prefetch import SoftwarePrefetch, StreamDetector


class StorePolicy(enum.Enum):
    """How a store stream interacts with the cache and memory."""

    #: Stores gather in a write-combining buffer and go straight to
    #: memory: one 64 B write transaction per sector, **no** read.
    BYPASS = "bypass"
    #: Stores allocate in the cache: one read-for-ownership per missing
    #: sector, dirty data written back later — "a read per write".
    WRITE_ALLOCATE = "write-allocate"


#: A store stream qualifies as *dense* (gatherable into full-line
#: streaming stores) when at most this many other accesses separate
#: consecutive stores. Copy loops have interarrival 1; arithmetic
#: kernels that store one result per dot product (GEMV: one store per
#: 2·N loads) are sparse and cannot sustain the gathering window.
DENSE_INTERARRIVAL_MAX = 4


@dataclasses.dataclass(frozen=True)
class StoreContext:
    """Everything the policy decision depends on for one store stream."""

    #: Is the store stream itself sequential (unit stride)?
    sequential: bool
    #: Is any strided (non-unit) data stream detected on the core?
    strided_stream_active: bool
    #: Number of other memory accesses between consecutive stores of
    #: this stream (1 = back-to-back copy loop).
    interarrival: int = 1
    #: Compiler-inserted prefetches in effect for this loop nest.
    prefetch: SoftwarePrefetch = SoftwarePrefetch()

    @property
    def dense(self) -> bool:
        return self.interarrival <= DENSE_INTERARRIVAL_MAX


def resolve_store_policy(ctx: StoreContext) -> StorePolicy:
    """Decide whether a store stream bypasses the cache.

    Decision table (from the paper's GEMM/GEMV/S1CF/S2CF observations):

    ==========================  ==================
    condition                   policy
    ==========================  ==================
    ``dcbtst`` prefetch         WRITE_ALLOCATE
    strided stream on core      WRITE_ALLOCATE
    store stream itself strided WRITE_ALLOCATE
    store stream sparse         WRITE_ALLOCATE
    otherwise (dense seq.)      BYPASS
    ==========================  ==================

    The sparse row covers GEMV/GEMM result vectors: one store per dot
    product cannot be gathered into full-line streaming stores, so the
    hardware write-allocates — "M reads are incurred by the hardware
    when writing into the vector y". Dense sequential copies (S1CF loop
    nest 1, S2CF) bypass the cache and show *no* read-per-write.
    """
    if ctx.prefetch.forces_store_read:
        return StorePolicy.WRITE_ALLOCATE
    if ctx.strided_stream_active:
        return StorePolicy.WRITE_ALLOCATE
    if not ctx.sequential:
        return StorePolicy.WRITE_ALLOCATE
    if not ctx.dense:
        return StorePolicy.WRITE_ALLOCATE
    return StorePolicy.BYPASS


def store_policy_for(detector: StreamDetector, sequential: bool,
                     prefetch: SoftwarePrefetch = SoftwarePrefetch(),
                     elem_size: int = 8,
                     interarrival: int = 1) -> StorePolicy:
    """Convenience wrapper deriving :class:`StoreContext` from a live
    :class:`~repro.machine.prefetch.StreamDetector`."""
    ctx = StoreContext(
        sequential=sequential,
        strided_stream_active=detector.any_strided_detected(elem_size),
        interarrival=interarrival,
        prefetch=prefetch,
    )
    return resolve_store_policy(ctx)
