"""Memory-controller model: MBA channels and 64 B transaction counting.

Each POWER9 socket's nest contains eight memory-controller channels
(MBA 0-7). Physical addresses are interleaved across channels at the
granule (64 B) level, so bulk traffic spreads almost evenly; the per-
channel counters ``PM_MBA[0-7]_{READ,WRITE}_BYTES`` each see roughly
1/8th of the socket's traffic. Tools (and the paper's experiments) sum
the eight channels to recover total socket traffic — our PAPI layer
exposes the same per-channel events so that summation happens in user
code, exactly as on Summit.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..errors import SimulationError
from ..units import round_up


@dataclasses.dataclass
class ChannelCounters:
    """Hardware counters of one MBA channel (monotonic, in bytes)."""

    read_bytes: int = 0
    write_bytes: int = 0


class MemoryController:
    """All memory channels of one socket plus the interleave logic."""

    def __init__(self, n_channels: int = 8, granule: int = 64):
        if n_channels <= 0:
            raise SimulationError("need at least one memory channel")
        self.n_channels = n_channels
        self.granule = granule
        self.channels: List[ChannelCounters] = [
            ChannelCounters() for _ in range(n_channels)
        ]
        # Round-robin cursors so that successive small transfers still
        # spread across channels like hardware interleaving would.
        self._read_cursor = 0
        self._write_cursor = 0

    # ------------------------------------------------------------------
    def record_read(self, nbytes: int) -> None:
        """Record ``nbytes`` of read traffic (rounded up to granules)."""
        self._record(nbytes, is_write=False)

    def record_write(self, nbytes: int) -> None:
        """Record ``nbytes`` of write traffic (rounded up to granules)."""
        self._record(nbytes, is_write=True)

    def record(self, read_bytes: int = 0, write_bytes: int = 0) -> None:
        if read_bytes:
            self.record_read(read_bytes)
        if write_bytes:
            self.record_write(write_bytes)

    def _record(self, nbytes: int, is_write: bool) -> None:
        if nbytes < 0:
            raise SimulationError("traffic cannot be negative")
        if nbytes == 0:
            return
        nbytes = round_up(int(nbytes), self.granule)
        n_txn = nbytes // self.granule
        base, rem = divmod(n_txn, self.n_channels)
        cursor = self._write_cursor if is_write else self._read_cursor
        per_channel = np.full(self.n_channels, base, dtype=np.int64)
        if rem:
            idx = (cursor + np.arange(rem)) % self.n_channels
            np.add.at(per_channel, idx, 1)
        for ch, txns in zip(self.channels, per_channel):
            if is_write:
                ch.write_bytes += int(txns) * self.granule
            else:
                ch.read_bytes += int(txns) * self.granule
        if is_write:
            self._write_cursor = (cursor + rem) % self.n_channels
        else:
            self._read_cursor = (cursor + rem) % self.n_channels

    # ------------------------------------------------------------------
    @property
    def total_read_bytes(self) -> int:
        return sum(ch.read_bytes for ch in self.channels)

    @property
    def total_write_bytes(self) -> int:
        return sum(ch.write_bytes for ch in self.channels)

    def snapshot(self) -> List[ChannelCounters]:
        """Copy of all channel counters (for delta-based measurement)."""
        return [dataclasses.replace(ch) for ch in self.channels]
