"""Thread-affinity model: pinning software threads to hardware.

"In our experiments, we pin only one thread to each physical core."
POWER9 runs SMT4, so each physical core exposes four hardware threads;
job launchers on Summit (jsrun) pin OpenMP threads to hardware-thread
sets. This module models the three pinning policies those launchers
offer and resolves them to the physical cores the executor occupies:

* ``one-per-core`` — the paper's setting: thread *i* on the first
  hardware thread of physical core *i*;
* ``compact`` — fill all SMT slots of a core before moving on (4
  threads per core on POWER9);
* ``scatter`` — round-robin across sockets first, then cores, to
  balance bandwidth-bound work across both nests.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..errors import ConfigurationError
from ..pmu.events import SMT_PER_CORE
from .config import MachineConfig
from .node import Node


@dataclasses.dataclass(frozen=True)
class ThreadBinding:
    """Placement of one software thread."""

    thread_id: int
    core_id: int        # global physical core id on the node
    hw_thread: int      # global hardware thread id (cpu number)
    socket_id: int


def hw_thread_of(machine: MachineConfig, core_id: int, slot: int = 0) -> int:
    """Hardware-thread (cpu) number for SMT ``slot`` of ``core_id``."""
    if not 0 <= slot < SMT_PER_CORE:
        raise ConfigurationError(f"SMT slot {slot} out of range")
    return core_id * SMT_PER_CORE + slot


def pin_threads(node: Node, n_threads: int,
                policy: str = "one-per-core") -> List[ThreadBinding]:
    """Resolve a pinning policy to concrete thread bindings.

    Reserved cores (set aside for system service tasks) are never
    assigned, mirroring Summit's isolated core.
    """
    machine = node.config
    usable: List[Tuple[int, int]] = []  # (core_id, socket_id)
    for socket in node.sockets:
        for core in socket.usable_cores:
            usable.append((core.core_id, socket.socket_id))
    if n_threads < 1:
        raise ConfigurationError("need at least one thread")

    if policy == "one-per-core":
        capacity = len(usable)
        if n_threads > capacity:
            raise ConfigurationError(
                f"{n_threads} threads > {capacity} usable cores "
                "(one-per-core pinning)")
        chosen = [(usable[i], 0) for i in range(n_threads)]
    elif policy == "compact":
        capacity = len(usable) * SMT_PER_CORE
        if n_threads > capacity:
            raise ConfigurationError(
                f"{n_threads} threads > {capacity} hardware threads")
        chosen = [(usable[i // SMT_PER_CORE], i % SMT_PER_CORE)
                  for i in range(n_threads)]
    elif policy == "scatter":
        capacity = len(usable)
        if n_threads > capacity:
            raise ConfigurationError(
                f"{n_threads} threads > {capacity} usable cores "
                "(scatter pinning)")
        # Interleave sockets: 0, n/2, 1, n/2+1, ...
        by_socket: dict = {}
        for entry in usable:
            by_socket.setdefault(entry[1], []).append(entry)
        order = []
        queues = [list(v) for _, v in sorted(by_socket.items())]
        while any(queues):
            for q in queues:
                if q:
                    order.append(q.pop(0))
        chosen = [(order[i], 0) for i in range(n_threads)]
    else:
        raise ConfigurationError(
            f"unknown pinning policy {policy!r}; use one-per-core, "
            "compact, or scatter")

    bindings = []
    for tid, ((core_id, socket_id), slot) in enumerate(chosen):
        bindings.append(ThreadBinding(
            thread_id=tid,
            core_id=core_id,
            hw_thread=hw_thread_of(machine, core_id, slot),
            socket_id=socket_id,
        ))
    return bindings


def cores_per_socket(bindings: List[ThreadBinding]) -> dict:
    """Distinct physical cores occupied per socket (executor input)."""
    out: dict = {}
    for b in bindings:
        out.setdefault(b.socket_id, set()).add(b.core_id)
    return {sid: len(cores) for sid, cores in out.items()}
