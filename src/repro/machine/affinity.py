"""Thread-affinity model: pinning software threads to hardware.

"In our experiments, we pin only one thread to each physical core."
POWER9 runs SMT4, so each physical core exposes four hardware threads;
job launchers on Summit (jsrun) pin OpenMP threads to hardware-thread
sets. This module models the three pinning policies those launchers
offer and resolves them to the physical cores the executor occupies:

* ``one-per-core`` — the paper's setting: thread *i* on the first
  hardware thread of physical core *i*;
* ``compact`` — fill all SMT slots of a core before moving on (4
  threads per core on POWER9);
* ``scatter`` — round-robin across sockets first, then cores, to
  balance bandwidth-bound work across both nests.

Alongside the *modelled* POWER9 pinning above, this module also hosts
the *operational* affinity layer the self-tuning pipelined engine
uses to place its real shard-worker processes: ``cpu_topology()``
reads the usable CPU set (``os.sched_getaffinity``) and the NUMA node
membership from ``/sys/devices/system/node``, ``plan_worker_cpus()``
carves it into node-contiguous per-worker sets (reserving a CPU for
the producer when there is slack), and ``apply_affinity()`` pins the
calling process.  Every step degrades to a documented no-op on
platforms without ``sched_setaffinity`` or ``/sys`` — placement is a
timing optimization and must never be a portability hazard.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..pmu.events import SMT_PER_CORE
from .config import MachineConfig
from .node import Node


@dataclasses.dataclass(frozen=True)
class ThreadBinding:
    """Placement of one software thread."""

    thread_id: int
    core_id: int        # global physical core id on the node
    hw_thread: int      # global hardware thread id (cpu number)
    socket_id: int


def hw_thread_of(machine: MachineConfig, core_id: int, slot: int = 0) -> int:
    """Hardware-thread (cpu) number for SMT ``slot`` of ``core_id``."""
    if not 0 <= slot < SMT_PER_CORE:
        raise ConfigurationError(f"SMT slot {slot} out of range")
    return core_id * SMT_PER_CORE + slot


def pin_threads(node: Node, n_threads: int,
                policy: str = "one-per-core") -> List[ThreadBinding]:
    """Resolve a pinning policy to concrete thread bindings.

    Reserved cores (set aside for system service tasks) are never
    assigned, mirroring Summit's isolated core.
    """
    machine = node.config
    usable: List[Tuple[int, int]] = []  # (core_id, socket_id)
    for socket in node.sockets:
        for core in socket.usable_cores:
            usable.append((core.core_id, socket.socket_id))
    if n_threads < 1:
        raise ConfigurationError("need at least one thread")

    if policy == "one-per-core":
        capacity = len(usable)
        if n_threads > capacity:
            raise ConfigurationError(
                f"{n_threads} threads > {capacity} usable cores "
                "(one-per-core pinning)")
        chosen = [(usable[i], 0) for i in range(n_threads)]
    elif policy == "compact":
        capacity = len(usable) * SMT_PER_CORE
        if n_threads > capacity:
            raise ConfigurationError(
                f"{n_threads} threads > {capacity} hardware threads")
        chosen = [(usable[i // SMT_PER_CORE], i % SMT_PER_CORE)
                  for i in range(n_threads)]
    elif policy == "scatter":
        capacity = len(usable)
        if n_threads > capacity:
            raise ConfigurationError(
                f"{n_threads} threads > {capacity} usable cores "
                "(scatter pinning)")
        # Interleave sockets: 0, n/2, 1, n/2+1, ...
        by_socket: dict = {}
        for entry in usable:
            by_socket.setdefault(entry[1], []).append(entry)
        order = []
        queues = [list(v) for _, v in sorted(by_socket.items())]
        while any(queues):
            for q in queues:
                if q:
                    order.append(q.pop(0))
        chosen = [(order[i], 0) for i in range(n_threads)]
    else:
        raise ConfigurationError(
            f"unknown pinning policy {policy!r}; use one-per-core, "
            "compact, or scatter")

    bindings = []
    for tid, ((core_id, socket_id), slot) in enumerate(chosen):
        bindings.append(ThreadBinding(
            thread_id=tid,
            core_id=core_id,
            hw_thread=hw_thread_of(machine, core_id, slot),
            socket_id=socket_id,
        ))
    return bindings


def cores_per_socket(bindings: List[ThreadBinding]) -> dict:
    """Distinct physical cores occupied per socket (executor input)."""
    out: dict = {}
    for b in bindings:
        out.setdefault(b.socket_id, set()).add(b.core_id)
    return {sid: len(cores) for sid, cores in out.items()}


# --------------------------------------------------------------------
# Operational affinity: placing real worker processes on real CPUs.
# --------------------------------------------------------------------

_NODE_SYS_DIR = "/sys/devices/system/node"


def parse_cpulist(text: str) -> List[int]:
    """Parse a kernel cpulist string (``"0-3,8,10-11"``) to CPU ids."""
    cpus: List[int] = []
    for part in text.strip().split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"descending cpulist range {part!r}")
            cpus.extend(range(lo, hi + 1))
        else:
            cpus.append(int(part))
    return sorted(set(cpus))


def cpu_topology(sys_node_dir: str = _NODE_SYS_DIR,
                 ) -> Dict[int, List[int]]:
    """Usable CPUs grouped by NUMA node.

    Only CPUs in the caller's current affinity mask count as usable.
    When the platform exposes no ``sched_getaffinity`` the full
    ``os.cpu_count()`` range is assumed; when ``/sys`` has no node
    directories every usable CPU lands on a synthetic node 0.
    """
    if hasattr(os, "sched_getaffinity"):
        usable = sorted(os.sched_getaffinity(0))
    else:  # pragma: no cover - non-Linux fallback
        usable = list(range(os.cpu_count() or 1))
    usable_set = set(usable)

    nodes: Dict[int, List[int]] = {}
    try:
        entries = sorted(os.listdir(sys_node_dir))
    except OSError:
        entries = []
    for entry in entries:
        if not entry.startswith("node") or not entry[4:].isdigit():
            continue
        try:
            with open(os.path.join(sys_node_dir, entry, "cpulist"),
                      encoding="ascii") as fh:
                cpus = parse_cpulist(fh.read())
        except (OSError, ValueError):
            continue
        present = [c for c in cpus if c in usable_set]
        if present:
            nodes[int(entry[4:])] = present
    claimed = {c for cpus in nodes.values() for c in cpus}
    leftover = [c for c in usable if c not in claimed]
    if leftover:
        # CPUs /sys did not claim (or no /sys at all): synthetic node.
        nodes.setdefault(0, [])
        nodes[0] = sorted(set(nodes[0]) | set(leftover))
    return nodes


def plan_worker_cpus(n_workers: int,
                     topology: Optional[Dict[int, List[int]]] = None,
                     ) -> Optional[List[List[int]]]:
    """Contiguous per-worker CPU sets, NUMA-node-aware.

    Returns ``None`` when pinning cannot help (no affinity syscall,
    a single usable CPU, or fewer CPUs than workers — oversubscribed
    pinning only serializes workers the scheduler would interleave).
    When there is at least one spare CPU the first one is reserved
    for the producer/parent, mirroring the Summit launcher's isolated
    core, and workers are packed node-by-node so each worker's set
    never straddles a NUMA boundary unless the node sizes force it.
    """
    if n_workers < 1 or not hasattr(os, "sched_setaffinity"):
        return None
    if topology is None:
        topology = cpu_topology()
    cpus: List[int] = [c for _, node_cpus in sorted(topology.items())
                       for c in node_cpus]
    if len(cpus) < 2 or len(cpus) < n_workers:
        return None
    if len(cpus) > n_workers:
        cpus = cpus[1:]  # reserve the first CPU for the producer
    base, extra = divmod(len(cpus), n_workers)
    plan: List[List[int]] = []
    start = 0
    for wid in range(n_workers):
        take = base + (1 if wid < extra else 0)
        plan.append(cpus[start:start + take])
        start += take
    return plan


def apply_affinity(cpus: Sequence[int], pid: int = 0) -> bool:
    """Pin ``pid`` (default: caller) to ``cpus``; False on failure.

    Failures (unsupported platform, CPUs gone offline, permission)
    are swallowed: affinity is best-effort by design.
    """
    if not cpus or not hasattr(os, "sched_setaffinity"):
        return False
    try:
        os.sched_setaffinity(pid, set(int(c) for c in cpus))
        return True
    except (OSError, ValueError):
        return False
