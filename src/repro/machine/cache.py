"""Exact sectored, set-associative cache simulator.

This is the ground-truth model used to validate the fast analytic
traffic laws in :mod:`repro.engine.analytic` (see DESIGN.md §6). It
models a POWER9-style L3 slice:

* tags are kept at *line* granularity (128 B by default) with true LRU
  replacement within each set;
* data is fetched from memory at *sector* (granule) granularity (64 B,
  i.e. half lines), matching the POWER9 ability to "fetch only 64 bytes
  of data (half cache lines)";
* stores either *write-allocate* (read-for-ownership traffic for the
  missing sector, then dirty write-back on eviction) or *bypass* the
  cache entirely through a write-combining buffer that gathers
  consecutive bytes and emits one 64 B transaction per touched sector.

The simulator exposes byte-accurate read/write memory-traffic counters
via :class:`TrafficCounters`, which the nest counter block consumes.

Performance note (per the HPC guides: measure, then optimise): the
per-access loop is pure Python over dict-based sets — exact simulation
is only used on small footprints in tests; the figures are driven by
the vectorised analytic model.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import SimulationError
from .config import CacheConfig


@dataclasses.dataclass
class TrafficCounters:
    """Accumulated memory traffic in bytes (64 B transaction multiples)."""

    read_bytes: int = 0
    write_bytes: int = 0

    def add(self, other: "TrafficCounters") -> None:
        self.read_bytes += other.read_bytes
        self.write_bytes += other.write_bytes

    def scaled(self, factor: float) -> "TrafficCounters":
        return TrafficCounters(
            read_bytes=int(round(self.read_bytes * factor)),
            write_bytes=int(round(self.write_bytes * factor)),
        )

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def __iter__(self):
        yield self.read_bytes
        yield self.write_bytes


class _Line:
    """State of one resident cache line (valid/dirty bits per sector)."""

    __slots__ = ("valid_mask", "dirty_mask")

    def __init__(self) -> None:
        self.valid_mask = 0
        self.dirty_mask = 0


class CacheSim:
    """Exact sectored set-associative cache with LRU replacement.

    Addresses are plain byte addresses in a flat simulated address
    space; allocation of that space is managed by the engine layer.
    """

    #: Supported replacement policies.
    POLICIES = ("lru", "fifo")

    def __init__(self, config: CacheConfig, policy: str = "lru"):
        if policy not in self.POLICIES:
            raise SimulationError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {self.POLICIES}")
        self.policy = policy
        self.config = config
        self.line_bytes = config.line_bytes
        self.granule = config.granule_bytes
        self.sectors_per_line = config.line_bytes // config.granule_bytes
        self.n_sets = config.n_sets
        self.assoc = config.associativity
        # One ordered dict per set: tag -> _Line, LRU order = insertion
        # order with move_to_end on touch.
        self._sets: Tuple["OrderedDict[int, _Line]", ...] = tuple(
            OrderedDict() for _ in range(self.n_sets)
        )
        self.traffic = TrafficCounters()
        # Write-combining buffer for bypassed (streaming) stores:
        # sector address -> count of bytes gathered.
        self._wcb: Dict[int, int] = {}
        self.stats_hits = 0
        self.stats_misses = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def _split(self, addr: int) -> Tuple[int, int, int]:
        """Return (set index, tag, sector index within line) for ``addr``."""
        line_id = addr // self.line_bytes
        sector = (addr % self.line_bytes) // self.granule
        return line_id % self.n_sets, line_id, sector

    # ------------------------------------------------------------------
    # core access path
    # ------------------------------------------------------------------
    def access(self, addr: int, size: int, is_write: bool,
               bypass: bool = False) -> None:
        """Perform one memory access of ``size`` bytes at ``addr``.

        Accesses are split at sector boundaries; each sector is handled
        independently (hardware would do the same via separate beats).
        """
        if size <= 0:
            raise SimulationError(f"access size must be positive, got {size}")
        end = addr + size
        while addr < end:
            sector_end = (addr // self.granule + 1) * self.granule
            chunk = min(end, sector_end) - addr
            self._access_sector(addr, chunk, is_write, bypass)
            addr += chunk

    def _access_sector(self, addr: int, size: int, is_write: bool,
                       bypass: bool) -> None:
        if is_write and bypass:
            self._bypass_store(addr, size)
            return
        set_idx, tag, sector = self._split(addr)
        cache_set = self._sets[set_idx]
        line = cache_set.get(tag)
        sector_bit = 1 << sector
        if line is not None and line.valid_mask & sector_bit:
            # sector hit; LRU refreshes recency, FIFO does not.
            if self.policy == "lru":
                cache_set.move_to_end(tag)
            if is_write:
                line.dirty_mask |= sector_bit
            self.stats_hits += 1
            return
        self.stats_misses += 1
        if line is None:
            line = self._install(cache_set, tag)
        elif self.policy == "lru":
            cache_set.move_to_end(tag)
        # Demand fetch of the missing sector (read-for-ownership applies
        # to write-allocate stores as well — this is the "read per
        # write" the paper observes for cached stores).
        self.traffic.read_bytes += self.granule
        line.valid_mask |= sector_bit
        if is_write:
            line.dirty_mask |= sector_bit

    def _install(self, cache_set: "OrderedDict[int, _Line]",
                 tag: int) -> _Line:
        """Insert a new line, evicting the LRU line if the set is full."""
        if len(cache_set) >= self.assoc:
            _, victim = cache_set.popitem(last=False)
            self._write_back(victim)
        line = _Line()
        cache_set[tag] = line
        return line

    def _write_back(self, line: _Line) -> None:
        mask = line.dirty_mask
        while mask:
            mask &= mask - 1  # clear lowest set bit; one sector written
            self.traffic.write_bytes += self.granule

    # ------------------------------------------------------------------
    # streaming (cache-bypassing) stores
    # ------------------------------------------------------------------
    def _bypass_store(self, addr: int, size: int) -> None:
        """Gather a bypassed store into the write-combining buffer.

        Full sectors (or the gathered fragments of one) are emitted to
        memory as single 64 B write transactions when the buffer is
        drained; no read-for-ownership traffic occurs. This reproduces
        the POWER9 behaviour where stride-free store streams bypass the
        cache ("the writes indeed bypass the cache").
        """
        sector_addr = (addr // self.granule) * self.granule
        self._wcb[sector_addr] = self._wcb.get(sector_addr, 0) + size
        if self._wcb[sector_addr] >= self.granule:
            del self._wcb[sector_addr]
            self.traffic.write_bytes += self.granule
        elif len(self._wcb) > 64:
            # Hardware WCBs are small; drain the oldest entry as a full
            # transaction when the buffer overflows.
            old_addr = next(iter(self._wcb))
            del self._wcb[old_addr]
            self.traffic.write_bytes += self.granule

    # ------------------------------------------------------------------
    # bulk helpers used by the exact engine
    # ------------------------------------------------------------------
    def access_many(self, addrs: Iterable[int], size: int, is_write: bool,
                    bypass: bool = False) -> None:
        """Access each address in ``addrs`` with a fixed ``size``."""
        for a in addrs:
            self.access(int(a), size, is_write, bypass)

    def touch_array(self, base: int, count: int, elem_size: int,
                    stride: int, is_write: bool, bypass: bool = False) -> None:
        """Access ``count`` elements starting at ``base`` with ``stride``
        bytes between element starts (vector-described strided stream)."""
        addrs = base + stride * np.arange(count, dtype=np.int64)
        self.access_many(addrs.tolist(), elem_size, is_write, bypass)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back all dirty data and invalidate the cache; drain the
        write-combining buffer. Counts write-back traffic."""
        for cache_set in self._sets:
            for line in cache_set.values():
                self._write_back(line)
            cache_set.clear()
        for _ in list(self._wcb):
            self.traffic.write_bytes += self.granule
        self._wcb.clear()

    def invalidate(self) -> None:
        """Drop all cache state *without* counting write-back traffic
        (used between independent experiment repetitions)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._wcb.clear()

    def resident_bytes(self) -> int:
        """Bytes of valid data currently resident (sector granularity)."""
        total = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                total += bin(line.valid_mask).count("1") * self.granule
        return total

    def dirty_bytes(self) -> int:
        total = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                total += bin(line.dirty_mask).count("1") * self.granule
        return total

    def reset_traffic(self) -> TrafficCounters:
        """Return and zero the accumulated traffic counters."""
        out = self.traffic
        self.traffic = TrafficCounters()
        return out
