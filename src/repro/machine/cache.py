"""Exact sectored, set-associative cache simulator.

This is the ground-truth model used to validate the fast analytic
traffic laws in :mod:`repro.engine.analytic` (see DESIGN.md §6). It
models a POWER9-style L3 slice:

* tags are kept at *line* granularity (128 B by default) with true LRU
  replacement within each set;
* data is fetched from memory at *sector* (granule) granularity (64 B,
  i.e. half lines), matching the POWER9 ability to "fetch only 64 bytes
  of data (half cache lines)";
* stores either *write-allocate* (read-for-ownership traffic for the
  missing sector, then dirty write-back on eviction) or *bypass* the
  cache entirely through a write-combining buffer that gathers
  consecutive bytes and emits one 64 B transaction per touched sector.

The simulator exposes byte-accurate read/write memory-traffic counters
via :class:`TrafficCounters`, which the nest counter block consumes.

Two access paths produce identical results (differential-tested):

* :meth:`CacheSim.access` — the scalar per-access oracle, one Python
  call per access;
* :meth:`CacheSim.access_batch` — the columnar fast path. Accesses
  arrive as NumPy arrays, are sector-expanded vectorized, and are
  processed in chunks: sets whose chunk touches only sectors resident
  at chunk entry perform no installs or evictions, so their accesses
  are all hits and are retired wholesale with array ops ("calm"
  sets); the remaining ("turbulent") sets are replayed exactly, in
  per-set program order, with runs of consecutive same-sector
  accesses coalesced into single transitions. Only true
  install/evict/write-back events remain in Python.

Exactness of the split rests on two facts: replacement state is
*per-set* (sets never interact), and a set with zero non-resident
touches in a chunk cannot install, hence cannot evict, hence its
residency is frozen for the chunk. Recency bookkeeping for calm sets
is scattered into a dense ``last_use`` overlay array; the authoritative
per-line stamp is reconciled as ``max(line stamp, overlay stamp)``,
which is exact because the access clock is monotonic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .config import CacheConfig

#: Ceiling (in sector ids) under which residency is tracked in a dense
#: boolean bitmap (fast gather); larger/negative address spaces fall
#: back to the generic per-set replay path.
BITMAP_SECTOR_LIMIT = 1 << 26

#: Default number of sector accesses processed per vectorized chunk.
DEFAULT_BATCH_CHUNK = 1 << 18


@dataclasses.dataclass
class TrafficCounters:
    """Accumulated memory traffic in bytes (64 B transaction multiples)."""

    read_bytes: int = 0
    write_bytes: int = 0

    def add(self, other: "TrafficCounters") -> None:
        self.read_bytes += other.read_bytes
        self.write_bytes += other.write_bytes

    def scaled(self, factor: float) -> "TrafficCounters":
        return TrafficCounters(
            read_bytes=int(round(self.read_bytes * factor)),
            write_bytes=int(round(self.write_bytes * factor)),
        )

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def __iter__(self):
        yield self.read_bytes
        yield self.write_bytes


class _Line:
    """State of one resident cache line (valid/dirty bits per sector,
    plus the recency stamp replacement decisions compare)."""

    __slots__ = ("valid_mask", "dirty_mask", "last_use")

    def __init__(self) -> None:
        self.valid_mask = 0
        self.dirty_mask = 0
        self.last_use = 0


def _floordiv(arr: np.ndarray, divisor: int) -> np.ndarray:
    """``arr // divisor`` using a shift when the divisor is a power of
    two (measurably faster on the multi-million-entry batch columns)."""
    if divisor & (divisor - 1) == 0:
        return arr >> (divisor.bit_length() - 1)
    return arr // divisor


def _mod(arr: np.ndarray, divisor: int) -> np.ndarray:
    if divisor & (divisor - 1) == 0:
        return arr & (divisor - 1)
    return arr % divisor


def expand_to_sectors(
    addr: np.ndarray,
    size: np.ndarray,
    is_write: np.ndarray,
    bypass: Optional[np.ndarray],
    granule: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Split accesses at sector boundaries, fully vectorized.

    Returns ``(addr, size, is_write, bypass)`` columns in which no
    entry crosses a ``granule`` boundary — the batch equivalent of the
    scalar splitting loop in :meth:`CacheSim.access`. When no access
    straddles a boundary the inputs are returned unchanged; a ``None``
    bypass column (all-False) stays ``None``.
    """
    if addr.size == 0:
        return addr, size, is_write, bypass
    if granule & (granule - 1) == 0:
        # Cheap no-split detection (the common aligned-element case).
        if int((((addr & (granule - 1)) + size)).max()) <= granule:
            return addr, size, is_write, bypass
    first = _floordiv(addr, granule)
    last = _floordiv(addr + size - 1, granule)
    counts = last - first + 1
    if int(counts.max()) == 1:
        return addr, size, is_write, bypass
    total = int(counts.sum())
    idx = np.repeat(np.arange(addr.size, dtype=np.int64), counts)
    run_start = np.cumsum(counts) - counts
    k = np.arange(total, dtype=np.int64) - np.repeat(run_start, counts)
    sec = first[idx] + k
    start = np.maximum(addr[idx], sec * granule)
    end = np.minimum((addr + size)[idx], (sec + 1) * granule)
    return (start, end - start, is_write[idx],
            None if bypass is None else bypass[idx])


def _prefix_state(sec: np.ndarray, w: np.ndarray,
                  wpos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per watched position ``p``: was ``sec[p]`` touched (written)
    at any strictly earlier position of this chunk?

    Only positions whose sector is one of the watched sectors enter
    the sort, so the cost scales with the watched sectors' touch
    count, not the chunk size. Stable argsort by sector groups each
    sector's touches in program order; "earlier touch" is then
    "not the group head" and "earlier write" an exclusive per-group
    prefix sum of the write flags.
    """
    wsec = np.unique(sec[wpos])
    loc = np.searchsorted(wsec, sec)
    np.clip(loc, 0, wsec.size - 1, out=loc)
    sub = np.flatnonzero(wsec[loc] == sec)
    s_order = np.argsort(sec[sub], kind="stable")
    s_sec = sec[sub][s_order]
    s_w = w[sub][s_order]
    n = s_sec.size
    gs = np.empty(n, dtype=bool)
    gs[0] = True
    np.not_equal(s_sec[1:], s_sec[:-1], out=gs[1:])
    gidx = np.maximum.accumulate(
        np.where(gs, np.arange(n, dtype=np.int64), 0))
    cw = np.cumsum(s_w) - s_w  # exclusive running write count
    e_touch_sorted = ~gs
    e_write_sorted = (cw - cw[gidx]) > 0
    e_touch = np.empty(n, dtype=bool)
    e_write = np.empty(n, dtype=bool)
    e_touch[s_order] = e_touch_sorted
    e_write[s_order] = e_write_sorted
    at = np.searchsorted(sub, wpos)
    return e_touch[at], e_write[at]


class CacheSim:
    """Exact sectored set-associative cache with LRU replacement.

    Addresses are plain byte addresses in a flat simulated address
    space; allocation of that space is managed by the engine layer.
    """

    #: Supported replacement policies.
    POLICIES = ("lru", "fifo")

    def __init__(self, config: CacheConfig, policy: str = "lru"):
        if policy not in self.POLICIES:
            raise SimulationError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {self.POLICIES}")
        self.policy = policy
        self.config = config
        self.line_bytes = config.line_bytes
        self.granule = config.granule_bytes
        self.sectors_per_line = config.line_bytes // config.granule_bytes
        self.n_sets = config.n_sets
        self.assoc = config.associativity
        # One dict per set: tag (= global line id) -> _Line. Recency is
        # carried by the monotonic access clock stamped into each line;
        # the replacement victim is the minimum effective stamp.
        self._sets: Tuple[Dict[int, _Line], ...] = tuple(
            {} for _ in range(self.n_sets)
        )
        self.traffic = TrafficCounters()
        # Write-combining buffer for bypassed (streaming) stores:
        # sector address -> count of bytes gathered.
        self._wcb: Dict[int, int] = {}
        self.stats_hits = 0
        self.stats_misses = 0
        # Monotonic access clock (never reset — monotonicity makes the
        # dense recency overlay below exact under max-reconciliation).
        self._clock = 0
        # Residency bitmap over sector ids (batch fast path) and the
        # dense last_use overlay over line ids; both lazily allocated.
        self._res_bitmap: Optional[np.ndarray] = None
        self._res_stale = True
        self._lu_dense: Optional[np.ndarray] = None
        # Dirty bitmap over sector ids: rebuilt at the start of every
        # watched batch (access_batch_probed) and maintained only for
        # its duration, so the unwatched hot paths never pay for it.
        self._dirty_bitmap: Optional[np.ndarray] = None
        self._dirty_active = False

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def _split(self, addr: int) -> Tuple[int, int, int]:
        """Return (set index, tag, sector index within line) for ``addr``."""
        line_id = addr // self.line_bytes
        sector = (addr % self.line_bytes) // self.granule
        return line_id % self.n_sets, line_id, sector

    def _effective_last_use(self, tag: int, line: _Line) -> int:
        """Authoritative recency: per-line stamp reconciled against the
        dense overlay written by the batch calm path (max is exact
        because the clock is monotonic)."""
        stamp = line.last_use
        lud = self._lu_dense
        if lud is not None and 0 <= tag < lud.size:
            overlay = int(lud[tag])
            if overlay > stamp:
                return overlay
        return stamp

    # ------------------------------------------------------------------
    # core scalar access path (the oracle)
    # ------------------------------------------------------------------
    def access(self, addr: int, size: int, is_write: bool,
               bypass: bool = False) -> None:
        """Perform one memory access of ``size`` bytes at ``addr``.

        Accesses are split at sector boundaries; each sector is handled
        independently (hardware would do the same via separate beats).
        """
        if size <= 0:
            raise SimulationError(f"access size must be positive, got {size}")
        end = addr + size
        while addr < end:
            sector_end = (addr // self.granule + 1) * self.granule
            chunk = min(end, sector_end) - addr
            self._access_sector(addr, chunk, is_write, bypass)
            addr += chunk

    def _access_sector(self, addr: int, size: int, is_write: bool,
                       bypass: bool) -> None:
        if is_write and bypass:
            self._bypass_store(addr, size)
            return
        set_idx, tag, sector = self._split(addr)
        cache_set = self._sets[set_idx]
        line = cache_set.get(tag)
        sector_bit = 1 << sector
        self._clock += 1
        if line is not None and line.valid_mask & sector_bit:
            # sector hit; LRU refreshes recency, FIFO does not.
            if self.policy == "lru":
                line.last_use = self._clock
            if is_write:
                line.dirty_mask |= sector_bit
            self.stats_hits += 1
            return
        self.stats_misses += 1
        self._res_stale = True
        if line is None:
            line = self._install(cache_set, tag)
        elif self.policy == "lru":
            line.last_use = self._clock
        # Demand fetch of the missing sector (read-for-ownership applies
        # to write-allocate stores as well — this is the "read per
        # write" the paper observes for cached stores).
        self.traffic.read_bytes += self.granule
        line.valid_mask |= sector_bit
        if is_write:
            line.dirty_mask |= sector_bit

    def _install(self, cache_set: Dict[int, _Line], tag: int) -> _Line:
        """Insert a new line, evicting the stalest line if the set is
        full (minimum effective recency stamp: LRU victim under "lru",
        oldest install under "fifo")."""
        if len(cache_set) >= self.assoc:
            victim_tag = min(
                cache_set,
                key=lambda t: self._effective_last_use(t, cache_set[t]),
            )
            self._write_back(cache_set.pop(victim_tag))
        line = _Line()
        line.last_use = self._clock
        cache_set[tag] = line
        return line

    def _write_back(self, line: _Line) -> None:
        mask = line.dirty_mask
        while mask:
            mask &= mask - 1  # clear lowest set bit; one sector written
            self.traffic.write_bytes += self.granule

    # ------------------------------------------------------------------
    # streaming (cache-bypassing) stores
    # ------------------------------------------------------------------
    def _bypass_store(self, addr: int, size: int) -> None:
        """Gather a bypassed store into the write-combining buffer.

        Full sectors (or the gathered fragments of one) are emitted to
        memory as single 64 B write transactions when the buffer is
        drained; no read-for-ownership traffic occurs. This reproduces
        the POWER9 behaviour where stride-free store streams bypass the
        cache ("the writes indeed bypass the cache").
        """
        sector_addr = (addr // self.granule) * self.granule
        self._wcb[sector_addr] = self._wcb.get(sector_addr, 0) + size
        if self._wcb[sector_addr] >= self.granule:
            del self._wcb[sector_addr]
            self.traffic.write_bytes += self.granule
        elif len(self._wcb) > 64:
            # Hardware WCBs are small; drain the oldest entry as a full
            # transaction when the buffer overflows.
            old_addr = next(iter(self._wcb))
            del self._wcb[old_addr]
            self.traffic.write_bytes += self.granule

    # ------------------------------------------------------------------
    # columnar batch access path
    # ------------------------------------------------------------------
    def access_batch(self, addr, size, is_write, bypass=None, *,
                     chunk_size: int = DEFAULT_BATCH_CHUNK) -> None:
        """Process a columnar trace; bit-identical to looping
        :meth:`access` over the same rows, but vectorized.

        ``addr``/``size`` are integer arrays, ``is_write``/``bypass``
        boolean arrays (``bypass`` may be ``None`` for all-False). The
        traffic counters, hit/miss statistics, final line state, and
        replacement order all end up exactly as the scalar path would
        leave them (property-tested in ``tests/test_engine_batch.py``).
        """
        addr = np.ascontiguousarray(addr, dtype=np.int64)
        size = np.ascontiguousarray(size, dtype=np.int64)
        is_write = np.ascontiguousarray(is_write, dtype=bool)
        n = addr.size
        if size.size != n or is_write.size != n:
            raise SimulationError(
                "access_batch columns must have equal lengths")
        if n == 0:
            return
        if int(size.min()) <= 0:
            raise SimulationError(
                f"access size must be positive, got {int(size.min())}")
        if bypass is None:
            c_addr, _, c_write, _ = expand_to_sectors(
                addr, size, is_write, None, self.granule)
        else:
            bypass = np.ascontiguousarray(bypass, dtype=bool)
            if bypass.size != n:
                raise SimulationError(
                    "access_batch columns must have equal lengths")
            c_addr, c_size, c_write, c_byp = expand_to_sectors(
                addr, size, is_write, bypass, self.granule)
            wcb_mask = c_write & c_byp
            if wcb_mask.any():
                self._bypass_batch(c_addr[wcb_mask], c_size[wcb_mask])
                keep = ~wcb_mask
                c_addr = c_addr[keep]
                c_write = c_write[keep]
        if c_addr.size:
            self._cached_batch(c_addr, c_write, chunk_size)

    def access_batch_probed(self, addr, size, is_write, watch, *,
                            chunk_size: int = DEFAULT_BATCH_CHUNK
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Process a columnar (non-bypass) trace exactly like
        :meth:`access_batch` while extracting, for every row index in
        ``watch``, the pre-access per-sector cache state.

        Returns ``(rows, resident, dirty)``: one entry per sector
        touched by a watched row, in program order — ``rows[i]`` is
        the watched row index, ``resident[i]``/``dirty[i]`` the state
        :meth:`probe` would have reported for that sector immediately
        *before* the row executed. This is the sampling observer's
        vectorized replacement for its per-sample
        replay-slice-then-``probe`` loop; the simulator ends in the
        identical state either way.

        Caveat: a watched row spanning ``n_sets`` or more cache lines
        could self-interfere (an early sector's eviction changing a
        later sector's set) in a way the in-batch extraction resolves
        at sector granularity while ``probe``-before-row would not.
        Callers guard against this (the observer falls back to its
        scalar replay for such segments); rows that wide do not occur
        in practice — it would take a single access touching
        ``n_sets * line_bytes`` contiguous bytes.
        """
        addr = np.ascontiguousarray(addr, dtype=np.int64)
        size = np.ascontiguousarray(size, dtype=np.int64)
        is_write = np.ascontiguousarray(is_write, dtype=bool)
        n = addr.size
        if size.size != n or is_write.size != n:
            raise SimulationError(
                "access_batch columns must have equal lengths")
        watch = np.unique(np.asarray(watch, dtype=np.int64))
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=bool),
                 np.empty(0, dtype=bool))
        if n == 0:
            if watch.size:
                raise SimulationError("watch row indices out of range")
            return empty
        if watch.size and (watch[0] < 0 or watch[-1] >= n):
            raise SimulationError("watch row indices out of range")
        if int(size.min()) <= 0:
            raise SimulationError(
                f"access size must be positive, got {int(size.min())}")
        rows = np.arange(n, dtype=np.int64)
        c_addr, _, c_write, c_rows = expand_to_sectors(
            addr, size, is_write, rows, self.granule)
        if not watch.size:
            self._cached_batch(c_addr, c_write, chunk_size)
            return empty
        loc = np.searchsorted(watch, c_rows)
        np.clip(loc, 0, watch.size - 1, out=loc)
        c_watch = watch[loc] == c_rows
        res_pre, dirty_pre = self._cached_batch(
            c_addr, c_write, chunk_size, watch=c_watch)
        return c_rows[c_watch], res_pre, dirty_pre

    # -- cached (non-bypass) entries -----------------------------------
    def _cached_batch(self, c_addr: np.ndarray, c_write: np.ndarray,
                      chunk_size: int,
                      watch: Optional[np.ndarray] = None):
        """Chunked vectorized simulation; with ``watch`` (a boolean
        mask over the expanded entries) also extracts each watched
        entry's pre-access (resident, dirty) state and returns the
        two arrays, ordered by entry position.

        Watched-state extraction rides the existing chunk
        classification: in eviction-free sets residency only grows
        and dirty bits only accrue, so pre-state is ``state at chunk
        entry OR touched/written earlier in the chunk`` (two gathers
        plus a prefix scan over the watched sectors' touches);
        turbulent sets capture exact per-run head state inside the
        replay loop. Dirty bits at chunk entry come from a dirty
        bitmap that exists only while a watched batch runs.
        """
        sec = _floordiv(c_addr, self.granule)
        lo = int(sec.min())
        hi = int(sec.max())
        use_bitmap = lo >= 0 and hi < BITMAP_SECTOR_LIMIT
        if use_bitmap:
            self._ensure_residency(hi)
            self._ensure_lu_overlay(hi // self.sectors_per_line)
        res_out = dirty_out = None
        if watch is not None:
            n_watched = int(watch.sum())
            res_out = np.empty(n_watched, dtype=bool)
            dirty_out = np.empty(n_watched, dtype=bool)
            if use_bitmap:
                self._ensure_dirty(hi)
                self._dirty_active = True
        wbase = 0
        t0 = self._clock
        hits = 0
        lru = self.policy == "lru"
        spl = self.sectors_per_line
        for start in range(0, sec.size, chunk_size):
            chunk = sec[start:start + chunk_size]
            w = c_write[start:start + chunk_size]
            wpos = None
            if watch is not None:
                cw_mask = watch[start:start + chunk_size]
                if cw_mask.any():
                    wpos = np.flatnonzero(cw_mask)
                    slot0 = wbase
                    wbase += wpos.size
            if not use_bitmap:
                lines = _floordiv(chunk, spl)
                pos = t0 + start + np.arange(chunk.size, dtype=np.int64)
                if wpos is None:
                    hits += self._replay_exact(chunk, w, pos, lines,
                                               _mod(lines, self.n_sets))
                else:
                    # No residency bitmap → the whole chunk replays
                    # exactly, so run-head capture alone covers every
                    # watched entry.
                    h, in_idx, rp, dp = self._replay_exact(
                        chunk, w, pos, lines, _mod(lines, self.n_sets),
                        watch=cw_mask)
                    hits += h
                    slots = slot0 + np.searchsorted(wpos, in_idx)
                    res_out[slots] = rp
                    dirty_out[slots] = dp
                continue
            resident = self._res_bitmap[chunk]
            lines = _floordiv(chunk, spl)
            if wpos is not None:
                # Entry-state gathers must precede any mutation below.
                ent_res = resident[wpos]
                ent_dirty = self._dirty_bitmap[chunk[wpos]]
                e_touch, e_write = _prefix_state(chunk, w, wpos)
            if resident.all():
                hits += chunk.size
                self._apply_dirty(chunk, w, None)
                self._scatter_recency(lines, t0 + start)
                if wpos is not None:
                    slots = slot0 + np.arange(wpos.size)
                    res_out[slots] = True
                    dirty_out[slots] = ent_dirty | e_write
                continue
            nonres = ~resident
            nr_idx = np.flatnonzero(nonres)
            # Sets where an eviction could occur this chunk must be
            # replayed in full; everywhere else residency can only
            # grow, so chunk-start-resident touches are plain hits and
            # only the non-resident touches need exact replay. One
            # unique over the non-resident subset yields both the
            # first-touch indices (for the replay reduction below) and
            # the new lines (for the eviction classification).
            u_sec, u_first = np.unique(chunk[nr_idx], return_index=True)
            new_lines = np.unique(_floordiv(u_sec, spl))
            new_sets, new_counts = np.unique(
                _mod(new_lines, self.n_sets), return_counts=True)
            sets_local = self._sets
            assoc = self.assoc
            evicting = [
                s for s, c in zip(new_sets.tolist(), new_counts.tolist())
                if len(sets_local[s]) + c > assoc
            ]
            if evicting:
                sets_arr = _mod(lines, self.n_sets)
                turb_dense = np.zeros(self.n_sets, dtype=bool)
                turb_dense[evicting] = True
                turb = turb_dense[sets_arr]
                t_idx = np.flatnonzero(turb)
                if wpos is None:
                    hits += self._replay_exact(
                        chunk[t_idx], w[t_idx], t0 + start + t_idx,
                        lines[t_idx], sets_arr[t_idx])
                else:
                    # Turbulent watched entries get exact run-head
                    # capture; the rest of the chunk is eviction-free
                    # and uses the entry|earlier formula.
                    h, in_idx, rp, dp = self._replay_exact(
                        chunk[t_idx], w[t_idx], t0 + start + t_idx,
                        lines[t_idx], sets_arr[t_idx],
                        watch=cw_mask[t_idx])
                    hits += h
                    slots = slot0 + np.searchsorted(wpos, t_idx[in_idx])
                    res_out[slots] = rp
                    dirty_out[slots] = dp
                    calm_w = np.flatnonzero(~turb[wpos])
                    if calm_w.size:
                        slots = slot0 + calm_w
                        res_out[slots] = ent_res[calm_w] | e_touch[calm_w]
                        dirty_out[slots] = (ent_dirty[calm_w]
                                            | e_write[calm_w])
                semi_sel = nonres & ~turb
                s_idx = np.flatnonzero(semi_sel)
                first = np.unique(chunk[s_idx], return_index=True)[1]
                calm_sel = resident & ~turb
                hits += int(calm_sel.sum())
                self._apply_dirty(chunk, w, calm_sel)
            else:
                s_idx = nr_idx
                first = u_first
                hits += chunk.size - s_idx.size
                self._apply_dirty(chunk, w, resident)
                if wpos is not None:
                    slots = slot0 + np.arange(wpos.size)
                    res_out[slots] = ent_res | e_touch
                    dirty_out[slots] = ent_dirty | e_write
            if s_idx.size:
                # Eviction-free sets: only the *first* touch of each
                # non-resident sector can miss — it installs the
                # sector, and with no evictions possible residency
                # only grows, so every later same-chunk touch is a
                # hit. Replay the first touches; retire the rest as
                # hits, their dirty bits applied once the lines exist.
                later = None
                if first.size != s_idx.size:
                    keep = np.zeros(s_idx.size, dtype=bool)
                    keep[first] = True
                    later = s_idx[~keep]
                    later_w = w[later]
                    s_idx = s_idx[keep]
                    hits += later.size
                s_lines = lines[s_idx]
                hits += self._replay_exact(
                    chunk[s_idx], w[s_idx], t0 + start + s_idx,
                    s_lines, _mod(s_lines, self.n_sets))
                if later is not None:
                    self._apply_dirty(chunk[later], later_w, None)
            # Recency scatter strictly AFTER the replays: an in-chunk
            # eviction scan must never observe stamps of touches that
            # come later in program order than the eviction point.
            self._scatter_recency(lines, t0 + start)
        self._clock = t0 + sec.size
        self.stats_hits += hits
        if watch is not None:
            self._dirty_active = False
            return res_out, dirty_out
        return None

    def _scatter_recency(self, lines: np.ndarray, base: int) -> None:
        """Record this chunk's touch times in the dense last_use
        overlay. With duplicate indices NumPy keeps the last value
        written — the latest touch of each line, which is exactly LRU
        recency; replayed installs also stamp the line directly and
        max-reconciliation picks the later of the two. FIFO never
        refreshes recency, so it skips the scatter."""
        if self.policy == "lru":
            self._lu_dense[lines] = \
                base + np.arange(lines.size, dtype=np.int64)

    def _apply_dirty(self, sec: np.ndarray, w: np.ndarray,
                     select: Optional[np.ndarray]) -> None:
        """OR dirty bits into resident lines for written hit accesses
        (``select`` restricts to the non-replayed subset)."""
        if not w.any():
            return
        written = w if select is None else (w & select)
        if self._dirty_active:
            self._dirty_bitmap[sec[written]] = True
        spl = self.sectors_per_line
        for sid in np.unique(sec[written]).tolist():
            tag = sid // spl
            line = self._sets[tag % self.n_sets][tag]
            line.dirty_mask |= 1 << (sid % spl)

    def _replay_exact(self, sec, w, pos, lines, sets_arr, watch=None):
        """Replay turbulent-set accesses exactly, in per-set program
        order, coalescing runs of consecutive same-sector touches.

        Returns the number of hits (misses/traffic are applied to the
        simulator directly). With ``watch`` (boolean mask over the
        input entries) additionally returns ``(hits, in_idx, res_pre,
        dirty_pre)``: for each watched entry (``in_idx`` indexes the
        inputs) the sector state just before that entry executed —
        the run head's pre-mutation state captured in the loop,
        promoted to resident for non-head run members (the head
        fetched the sector) and to dirty after an earlier same-run
        write.
        """
        order = np.argsort(sets_arr, kind="stable")
        sec = sec[order]
        n = sec.size
        _ew = (np.empty(0, dtype=np.int64), np.empty(0, dtype=bool),
               np.empty(0, dtype=bool))
        if n == 0:
            return 0 if watch is None else (0,) + _ew
        w = w[order]
        pos = pos[order]
        # A run = consecutive equal sector ids inside one set's
        # subsequence. Equal sector ids imply equal set, so a sector
        # change is the only boundary needed.
        bnd = np.empty(n, dtype=bool)
        bnd[0] = True
        np.not_equal(sec[1:], sec[:-1], out=bnd[1:])
        starts = np.flatnonzero(bnd)
        lengths = np.diff(np.append(starts, n))
        any_w = np.logical_or.reduceat(w, starts)
        head_pos = pos[starts]
        last_pos = pos[np.append(starts[1:], n) - 1]
        run_sec = sec[starts]
        spl = self.sectors_per_line
        run_tag = _floordiv(run_sec, spl)
        run_set = _mod(run_tag, self.n_sets)
        run_sector = _mod(run_sec, spl)

        watching = False
        if watch is not None:
            wsorted = np.flatnonzero(watch[order])
            if wsorted.size:
                watching = True
                runs_of = np.searchsorted(starts, wsorted,
                                          side="right") - 1
                need = np.zeros(starts.size, dtype=bool)
                need[runs_of] = True
                run_res = np.zeros(starts.size, dtype=bool)
                run_dirty = np.zeros(starts.size, dtype=bool)
        sets_local = self._sets
        lru = self.policy == "lru"
        bitmap = self._res_bitmap
        dbitmap = self._dirty_bitmap if self._dirty_active else None
        assoc = self.assoc
        granule = self.granule
        hits = 0
        misses = 0
        fetches = 0
        writebacks = 0
        for ri, (sid, tag, st, sct, anyw, ln, hp, lp) in enumerate(zip(
                run_sec.tolist(), run_tag.tolist(), run_set.tolist(),
                run_sector.tolist(), any_w.tolist(), lengths.tolist(),
                head_pos.tolist(), last_pos.tolist())):
            cache_set = sets_local[st]
            line = cache_set.get(tag)
            bit = 1 << sct
            if watching and need[ri]:
                # Pre-mutation head state for the watched entries.
                if line is not None and line.valid_mask & bit:
                    run_res[ri] = True
                    if line.dirty_mask & bit:
                        run_dirty[ri] = True
            if line is not None and line.valid_mask & bit:
                hits += ln
                if lru:
                    line.last_use = lp
                if anyw:
                    line.dirty_mask |= bit
                    if dbitmap is not None:
                        dbitmap[sid] = True
                continue
            # Head access misses; the rest of the run hits the sector
            # the head just fetched.
            misses += 1
            hits += ln - 1
            if line is None:
                if len(cache_set) >= assoc:
                    victim_tag = min(
                        cache_set,
                        key=lambda t: self._effective_last_use(
                            t, cache_set[t]),
                    )
                    victim = cache_set.pop(victim_tag)
                    mask = victim.dirty_mask
                    while mask:
                        mask &= mask - 1
                        writebacks += 1
                    if bitmap is not None:
                        vmask = victim.valid_mask
                        vbase = victim_tag * spl
                        while vmask:
                            low = vmask & -vmask
                            bitmap[vbase + low.bit_length() - 1] = False
                            vmask ^= low
                    if dbitmap is not None:
                        dmask = victim.dirty_mask
                        vbase = victim_tag * spl
                        while dmask:
                            low = dmask & -dmask
                            dbitmap[vbase + low.bit_length() - 1] = False
                            dmask ^= low
                line = _Line()
                line.last_use = lp if lru else hp
                cache_set[tag] = line
            elif lru:
                line.last_use = lp
            fetches += 1
            line.valid_mask |= bit
            if anyw:
                line.dirty_mask |= bit
                if dbitmap is not None:
                    dbitmap[sid] = True
            if bitmap is not None:
                bitmap[sid] = True
        self.stats_misses += misses
        self.traffic.read_bytes += fetches * granule
        self.traffic.write_bytes += writebacks * granule
        if bitmap is None:
            # The generic path changed residency behind the bitmap's
            # back; force a rebuild before the next bitmap-mode batch.
            self._res_stale = True
        if watch is None:
            return hits
        if not watching:
            return (hits,) + _ew
        res_pre = run_res[runs_of] | (wsorted > starts[runs_of])
        cw = np.cumsum(w) - w  # exclusive write count, sorted domain
        in_run_w = (cw[wsorted] - cw[starts[runs_of]]) > 0
        dirty_pre = run_dirty[runs_of] | in_run_w
        return hits, order[wsorted], res_pre, dirty_pre

    # -- bypassed stores (write-combining buffer) ----------------------
    def _bypass_batch(self, c_addr: np.ndarray, c_size: np.ndarray) -> None:
        """Feed bypassed store chunks through the WCB, coalescing runs
        of consecutive same-sector stores.

        A run whose sector starts empty, whose chunk sizes are uniform
        divisors of the granule, and which cannot interact with the
        overflow drain is retired in closed form; anything irregular
        replays through the scalar WCB logic, so semantics (including
        partial-sector loss on over-accumulation and oldest-entry
        overflow drains) are preserved exactly.
        """
        granule = self.granule
        sec_addr = _floordiv(c_addr, granule) * granule
        n = sec_addr.size
        bnd = np.empty(n, dtype=bool)
        bnd[0] = True
        np.not_equal(sec_addr[1:], sec_addr[:-1], out=bnd[1:])
        starts = np.flatnonzero(bnd)
        lengths = np.diff(np.append(starts, n))
        totals = np.add.reduceat(c_size, starts)
        size_min = np.minimum.reduceat(c_size, starts)
        size_max = np.maximum.reduceat(c_size, starts)
        wcb = self._wcb
        emitted = 0
        for i, (sa, st, ln, tot, mn, mx) in enumerate(zip(
                sec_addr[starts].tolist(), starts.tolist(),
                lengths.tolist(), totals.tolist(),
                size_min.tolist(), size_max.tolist())):
            if (mn == mx and granule % mn == 0 and sa not in wcb
                    and len(wcb) < 64):
                # Uniform divisors accumulate to exactly the granule at
                # every firing point: no bytes lost, no overflow drain
                # possible (the buffer gains at most this one entry).
                emitted += tot // granule
                rem = tot % granule
                if rem:
                    wcb[sa] = rem
            else:
                for sz in c_size[st:st + ln].tolist():
                    self._bypass_store(sa, sz)
        self.traffic.write_bytes += emitted * granule

    # -- residency / recency maintenance -------------------------------
    def _ensure_residency(self, max_sector: int) -> None:
        """Guarantee the residency bitmap covers ``max_sector`` and
        reflects the current line state."""
        needed = max_sector + 1
        bitmap = self._res_bitmap
        if bitmap is None or self._res_stale or bitmap.size < needed:
            capacity = max(needed,
                           2 * (bitmap.size if bitmap is not None else 0))
            if bitmap is not None and not self._res_stale:
                grown = np.zeros(capacity, dtype=bool)
                grown[:bitmap.size] = bitmap
                self._res_bitmap = grown
                return
            bitmap = np.zeros(capacity, dtype=bool)
            spl = self.sectors_per_line
            for cache_set in self._sets:
                for tag, line in cache_set.items():
                    vmask = line.valid_mask
                    base = tag * spl
                    while vmask:
                        low = vmask & -vmask
                        bitmap[base + low.bit_length() - 1] = True
                        vmask ^= low
            self._res_bitmap = bitmap
            self._res_stale = False

    def _ensure_dirty(self, max_sector: int) -> None:
        """Rebuild the dirty bitmap from line state, sized to cover
        both ``max_sector`` and every currently-dirty line (so
        eviction clears during the watched batch never index out of
        range). Unlike the residency bitmap it is not kept fresh
        between batches — each watched batch rebuilds it, keeping
        every unwatched path free of maintenance cost."""
        spl = self.sectors_per_line
        top = max_sector + 1
        for cache_set in self._sets:
            for tag, line in cache_set.items():
                if line.dirty_mask:
                    top = max(top, (tag + 1) * spl)
        bitmap = np.zeros(top, dtype=bool)
        for cache_set in self._sets:
            for tag, line in cache_set.items():
                dmask = line.dirty_mask
                base = tag * spl
                while dmask:
                    low = dmask & -dmask
                    bitmap[base + low.bit_length() - 1] = True
                    dmask ^= low
        self._dirty_bitmap = bitmap

    def _ensure_lu_overlay(self, max_tag: int) -> None:
        needed = max_tag + 1
        lud = self._lu_dense
        if lud is None:
            self._lu_dense = np.zeros(
                max(needed, 1024), dtype=np.int64)
        elif lud.size < needed:
            grown = np.zeros(max(needed, 2 * lud.size), dtype=np.int64)
            grown[:lud.size] = lud
            self._lu_dense = grown

    # ------------------------------------------------------------------
    # bulk helpers used by the exact engine
    # ------------------------------------------------------------------
    def access_many(self, addrs: Iterable[int], size: int, is_write: bool,
                    bypass: bool = False) -> None:
        """Access each address in ``addrs`` with a fixed ``size``."""
        for a in addrs:
            self.access(int(a), size, is_write, bypass)

    def touch_array(self, base: int, count: int, elem_size: int,
                    stride: int, is_write: bool, bypass: bool = False) -> None:
        """Access ``count`` elements starting at ``base`` with ``stride``
        bytes between element starts (vector-described strided stream)."""
        addrs = base + stride * np.arange(count, dtype=np.int64)
        self.access_many(addrs.tolist(), elem_size, is_write, bypass)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back all dirty data and invalidate the cache; drain the
        write-combining buffer. Counts write-back traffic."""
        for cache_set in self._sets:
            for line in cache_set.values():
                self._write_back(line)
            cache_set.clear()
        for _ in list(self._wcb):
            self.traffic.write_bytes += self.granule
        self._wcb.clear()
        self._res_stale = True

    def invalidate(self) -> None:
        """Drop all cache state *without* counting write-back traffic
        (used between independent experiment repetitions)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._wcb.clear()
        self._res_stale = True

    def resident_bytes(self) -> int:
        """Bytes of valid data currently resident (sector granularity)."""
        total = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                total += bin(line.valid_mask).count("1") * self.granule
        return total

    def dirty_bytes(self) -> int:
        total = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                total += bin(line.dirty_mask).count("1") * self.granule
        return total

    def probe(self, addr: int, size: int) -> List[Tuple[bool, bool]]:
        """Per-sector ``(resident, dirty)`` state of a span *without*
        touching it: no recency update, no traffic, no hit/miss stats.

        The sampling observer (``repro.papi.sampling``) uses this to
        classify a sampled access against the exact state the access
        is about to see — the information a PEBS/SPE sample record
        carries for free in hardware.
        """
        out: List[Tuple[bool, bool]] = []
        end = addr + size
        while addr < end:
            sector_end = (addr // self.granule + 1) * self.granule
            set_idx, tag, sector = self._split(addr)
            line = self._sets[set_idx].get(tag)
            bit = 1 << sector
            resident = line is not None and bool(line.valid_mask & bit)
            dirty = resident and bool(line.dirty_mask & bit)
            out.append((resident, dirty))
            addr = min(end, sector_end)
        return out

    def wcb_gathered_bytes(self, addr: int) -> int:
        """Bytes already gathered in the write-combining buffer for the
        sector containing ``addr`` (0 when that sector has no pending
        fragment). Read-only, like :meth:`probe`."""
        sector_addr = (addr // self.granule) * self.granule
        return self._wcb.get(sector_addr, 0)

    def snapshot(self) -> Dict[int, List[Tuple[int, int, int]]]:
        """Full replacement-relevant state: per non-empty set, the
        resident ``(tag, valid_mask, dirty_mask)`` triples ordered from
        stalest to most recent. Two simulators that processed the same
        trace — by any mix of scalar and batch calls — snapshot equal.
        """
        out: Dict[int, List[Tuple[int, int, int]]] = {}
        for idx, cache_set in enumerate(self._sets):
            if cache_set:
                ordered = sorted(
                    cache_set.items(),
                    key=lambda kv: self._effective_last_use(kv[0], kv[1]),
                )
                out[idx] = [(tag, line.valid_mask, line.dirty_mask)
                            for tag, line in ordered]
        return out

    def reset_traffic(self) -> TrafficCounters:
        """Return and zero the accumulated traffic counters."""
        out = self.traffic
        self.traffic = TrafficCounters()
        return out
