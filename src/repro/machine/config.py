"""Machine descriptions for the simulated systems used in the paper.

Three configurations are provided:

* :data:`SUMMIT` — one compute node of the Summit supercomputer: two
  sockets of 22-core IBM POWER9 (21 usable per socket), 10 MB of L3 per
  core pair, six NVIDIA V100 GPUs (three per socket) and two Mellanox
  ConnectX-5 EDR ports. Users are *unprivileged*: the nest counters can
  only be reached through the PCP daemon.
* :data:`TELLICO` — the UTK testbed: two sockets of 16-core POWER9 where
  the user *is* privileged, so nest counters are read directly
  (perf_uncore path).
* :data:`SKYLAKE` — a generic Intel Skylake-like socket used by the paper
  to show the extraneous-write phenomenon is not POWER9-specific.

All capacities and granularities that drive the analysis (128 B lines,
64 B memory granules, 5 MB effective L3 per core, idle-slice
re-appropriation) are encoded here so every other module derives its
behaviour from a single source of truth.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..units import MIB


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``capacity_bytes`` is the total capacity of one slice/instance;
    ``line_bytes`` the coherence-line size; ``granule_bytes`` the memory
    transaction size (POWER9 fetches half-lines from memory);
    ``associativity`` the number of ways per set.
    """

    capacity_bytes: int
    line_bytes: int = 128
    granule_bytes: int = 64
    associativity: int = 16

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.line_bytes <= 0 or self.line_bytes % self.granule_bytes:
            raise ConfigurationError(
                "line size must be a positive multiple of the granule"
            )
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                "capacity must be divisible by line_bytes * associativity"
            )

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclasses.dataclass(frozen=True)
class PrefetchConfig:
    """Hardware stream-prefetcher behaviour.

    ``detect_threshold`` consecutive accesses with a stable stride are
    required before a stream is considered *detected*. Detected streams
    disable the streaming-store cache bypass (POWER9 behaviour observed
    in the paper: "in the presence of a strided data stream, the writes
    to variables will not bypass the cache").
    """

    detect_threshold: int = 4
    max_streams: int = 16


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """One GPU attached to a socket (NVIDIA Tesla V100-like)."""

    name: str = "Tesla_V100-SXM2-16GB"
    memory_bytes: int = 16 * 1024 * MIB
    idle_power_w: float = 40.0
    peak_power_w: float = 300.0
    #: Sustained device FFT throughput used by the timing model (FLOP/s).
    flops: float = 7.0e12
    #: Host<->device DMA bandwidth (bytes/s) — NVLink 2.0-like.
    dma_bandwidth: float = 50.0e9


@dataclasses.dataclass(frozen=True)
class NICConfig:
    """One InfiniBand port (Mellanox ConnectX-5-like)."""

    name: str = "mlx5_0"
    port: int = 1
    bandwidth: float = 12.5e9  # EDR 100 Gb/s in bytes/s


@dataclasses.dataclass(frozen=True)
class SocketConfig:
    """One CPU socket: cores, L3 slices, memory channels and the nest.

    POWER9 organises cores in pairs sharing a 10 MB L3 slice; the nest
    contains eight memory-controller channels (MBA 0-7), each with a
    read-bytes and a write-bytes counter.
    """

    n_cores: int
    cores_per_pair: int = 2
    l3_slice: CacheConfig = dataclasses.field(
        default_factory=lambda: CacheConfig(capacity_bytes=10 * MIB)
    )
    n_memory_channels: int = 8
    core_frequency_hz: float = 3.07e9
    #: Sustained per-core double-precision rate for the timing model.
    core_flops: float = 8.0e9
    #: Sustained memory bandwidth per socket (bytes/s).
    memory_bandwidth: float = 120.0e9
    prefetch: PrefetchConfig = dataclasses.field(default_factory=PrefetchConfig)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError("socket needs at least one core")
        if self.n_cores % self.cores_per_pair:
            raise ConfigurationError("n_cores must be divisible by cores_per_pair")
        if self.n_memory_channels <= 0:
            raise ConfigurationError("socket needs at least one memory channel")

    @property
    def n_core_pairs(self) -> int:
        return self.n_cores // self.cores_per_pair

    @property
    def l3_total_bytes(self) -> int:
        """Aggregate L3 capacity of the socket."""
        return self.n_core_pairs * self.l3_slice.capacity_bytes

    @property
    def l3_per_core_bytes(self) -> int:
        """L3 available to one core when all cores are busy (no sharing)."""
        return self.l3_slice.capacity_bytes // self.cores_per_pair


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """A full compute node."""

    name: str
    arch: str
    n_sockets: int
    socket: SocketConfig
    gpus_per_socket: int = 0
    gpu: Optional[GPUConfig] = None
    nics: Tuple[NICConfig, ...] = ()
    #: Whether the (simulated) user has the elevated privileges needed to
    #: read the nest counters directly via perf_uncore.
    user_privileged: bool = False
    #: Cores reserved for system service tasks, per socket (Summit sets
    #: one aside; it is invisible to user jobs).
    reserved_cores_per_socket: int = 0

    def __post_init__(self) -> None:
        if self.n_sockets <= 0:
            raise ConfigurationError("machine needs at least one socket")
        if self.gpus_per_socket and self.gpu is None:
            raise ConfigurationError("gpus_per_socket set but no GPUConfig given")
        if self.reserved_cores_per_socket >= self.socket.n_cores:
            raise ConfigurationError("cannot reserve every core on the socket")

    @property
    def usable_cores_per_socket(self) -> int:
        return self.socket.n_cores - self.reserved_cores_per_socket

    @property
    def total_usable_cores(self) -> int:
        return self.n_sockets * self.usable_cores_per_socket


#: Summit compute node (two 22-core POWER9 sockets, 21 usable each,
#: 110 MB L3 per socket, V100 GPUs, unprivileged user -> PCP required).
SUMMIT = MachineConfig(
    name="summit",
    arch="IBM POWER9",
    n_sockets=2,
    socket=SocketConfig(n_cores=22),
    gpus_per_socket=3,
    gpu=GPUConfig(),
    nics=(NICConfig(name="mlx5_0"), NICConfig(name="mlx5_1")),
    user_privileged=False,
    reserved_cores_per_socket=1,
)

#: Tellico testbed (two 16-core POWER9 sockets, privileged user ->
#: direct perf_uncore access to the nest counters).
TELLICO = MachineConfig(
    name="tellico",
    arch="IBM POWER9",
    n_sockets=2,
    socket=SocketConfig(n_cores=16),
    user_privileged=True,
)

#: Generic Intel Skylake-like socket: 64 B lines fetched whole (granule =
#: line), 1.375 MB L3 slice per core, used to show the extraneous-write
#: behaviour is not POWER9-specific.
SKYLAKE = MachineConfig(
    name="skylake",
    arch="Intel Skylake",
    n_sockets=1,
    socket=SocketConfig(
        n_cores=16,
        cores_per_pair=1,
        l3_slice=CacheConfig(
            capacity_bytes=1408 * 1024, line_bytes=64, granule_bytes=64,
            associativity=11,
        ),
        n_memory_channels=6,
        core_frequency_hz=2.1e9,
    ),
    user_privileged=True,
)


#: IBM POWER10-class node — the paper's stated future work ("extend
#: these techniques to accurately measure memory traffic for other BLAS
#: operations in upcoming IBM systems (e.g. POWER10)"). 15 usable SMT8
#: cores per socket, 8 MB of L3 per core (120 MB per socket), and an
#: OMI-based memory subsystem with 16 channels. The user is modelled as
#: unprivileged, so the PCP path remains the relevant one.
POWER10 = MachineConfig(
    name="power10",
    arch="IBM POWER10",
    n_sockets=2,
    socket=SocketConfig(
        n_cores=16,
        cores_per_pair=2,
        l3_slice=CacheConfig(capacity_bytes=16 * MIB),
        n_memory_channels=16,
        core_frequency_hz=3.5e9,
        core_flops=16.0e9,
        memory_bandwidth=400.0e9,
    ),
    user_privileged=False,
    reserved_cores_per_socket=1,
)


def get_machine(name: str) -> MachineConfig:
    """Look up a built-in machine configuration by name."""
    table = {"summit": SUMMIT, "tellico": TELLICO, "skylake": SKYLAKE,
             "power10": POWER10}
    try:
        return table[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {sorted(table)}"
        ) from None
