"""L3 slice topology: local slices, contention, and re-appropriation.

Summit's POWER9 sockets have 21 usable cores in 11 core pairs, each pair
owning a 10 MB L3 slice (110 MB per socket). The paper's single-thread
versus batched GEMM comparison hinges on two facts encoded here:

* **Re-appropriation** — "when the other cores on the same socket are
  idle, *their* local L3 cache slices can be re-appropriated by the
  active core, giving the active core 110 MB worth of cache". Hence a
  single-threaded GEMM sees *no* traffic jump at the 5 MB-per-core
  boundary (N ≈ 809).
* **Spillover inefficiency** — data resident in *remote* slices is less
  durable (victimised by lateral cast-outs and daemon activity on the
  owning pair), producing the *gradual* extra traffic the paper observes
  for single-threaded runs on both Summit and Tellico (Figs 2-4),
  independent of the measurement path.

When every core is busy (batched kernels), each core is confined to its
5 MB share and the expectations hold exactly until the per-core working
set exceeds 5 MB, at which point traffic "jumps drastically".
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .config import SocketConfig


@dataclasses.dataclass(frozen=True)
class CacheShare:
    """Effective L3 resources available to one core."""

    #: Bytes in the core's own (pair-local) slice share.
    local_bytes: int
    #: Bytes re-appropriated from idle remote slices.
    remote_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.local_bytes + self.remote_bytes


class L3Topology:
    """Slice accounting for one socket."""

    #: Per-pass probability that a byte resident in a *remote* slice is
    #: lost to lateral cast-outs / prefetch overshoot and re-fetched
    #: from memory. Small per pass, but kernels like GEMM make O(N)
    #: passes over their working set, so the aggregate extra traffic
    #: grows with problem size — the gradual single-thread divergence
    #: of Figs 2-4a. Calibrated so measured/expected reaches ~3-5x at
    #: N≈2000 (qualitative match to Fig 3a).
    REMOTE_SLICE_MISS_FACTOR = 0.004

    def __init__(self, socket: SocketConfig, usable_cores: int):
        if usable_cores <= 0 or usable_cores > socket.n_cores:
            raise ConfigurationError(
                f"usable_cores={usable_cores} out of range for socket"
            )
        self.socket = socket
        self.usable_cores = usable_cores

    # ------------------------------------------------------------------
    def share_for(self, active_cores: int) -> CacheShare:
        """Effective capacity per active core for a run using
        ``active_cores`` cores on this socket."""
        if active_cores <= 0:
            raise ConfigurationError("active_cores must be positive")
        active_cores = min(active_cores, self.usable_cores)
        local = self.socket.l3_per_core_bytes
        total_l3 = self.socket.l3_total_bytes
        # Idle capacity is shared equally among active cores.
        idle_capacity = max(0, total_l3 - active_cores * local)
        if active_cores >= self.usable_cores:
            idle_capacity = 0
        remote = idle_capacity // active_cores if idle_capacity else 0
        return CacheShare(local_bytes=local, remote_bytes=remote)

    def effective_capacity(self, active_cores: int) -> int:
        return self.share_for(active_cores).total_bytes

    # ------------------------------------------------------------------
    def spill_extra_read_fraction(self, footprint_bytes: int,
                                  active_cores: int) -> float:
        """Fractional *extra* read traffic caused by remote-slice spill.

        For a working set of ``footprint_bytes`` that is reused from
        cache, the part held in remote slices is re-fetched from memory
        with probability :data:`REMOTE_SLICE_MISS_FACTOR` per pass. The
        returned value is the expected extra traffic as a fraction of
        the *footprint*; it is zero when the footprint fits in the local
        share or when all cores are active (no remote slices).
        """
        share = self.share_for(active_cores)
        if share.remote_bytes == 0 or footprint_bytes <= share.local_bytes:
            return 0.0
        spilled = min(footprint_bytes, share.total_bytes) - share.local_bytes
        return self.REMOTE_SLICE_MISS_FACTOR * spilled / footprint_bytes
