"""Observables beyond the energy: radial densities.

QMC codes validate their sampling by comparing measured densities
against analytic distributions where known. For the harmonic
oscillator trial ψ_α the VMC walkers sample |ψ_α|², whose radial
density is

    p(r) = 4π r² (α/π)^{3/2} exp(−α r²),

and for the hydrogen trial ψ_β:

    p(r) = 4 β³ r² exp(−2βr).

:func:`radial_histogram` bins walker radii; the analytic densities let
tests assert the samplers draw from the right distribution — a much
stronger check than the energy alone (which is stationary even for
mildly wrong samplers).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RadialDensity:
    """Normalised radial histogram of a walker ensemble."""

    edges: np.ndarray     # bin edges, length n_bins + 1
    density: np.ndarray   # probability density per bin, length n_bins
    n_samples: int

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def total_probability(self) -> float:
        widths = np.diff(self.edges)
        return float(np.sum(self.density * widths))


def radial_histogram(walkers: np.ndarray, n_bins: int = 50,
                     r_max: float = 0.0) -> RadialDensity:
    """Histogram of walker radii, normalised to a probability density."""
    walkers = np.asarray(walkers)
    if walkers.ndim != 2:
        raise ConfigurationError("walkers must be (n, ndim)")
    if n_bins < 2:
        raise ConfigurationError("need at least 2 bins")
    radii = np.linalg.norm(walkers, axis=1)
    if r_max <= 0.0:
        r_max = float(radii.max()) or 1.0
    counts, edges = np.histogram(radii, bins=n_bins, range=(0.0, r_max))
    widths = np.diff(edges)
    covered = counts.sum()
    if covered == 0:
        raise ConfigurationError("no walkers inside [0, r_max]")
    density = counts / (covered * widths)
    return RadialDensity(edges=edges, density=density,
                         n_samples=len(radii))


def ho_radial_density(r: np.ndarray, alpha: float) -> np.ndarray:
    """Analytic p(r) for |ψ_α|² of the 3-D harmonic oscillator."""
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")
    norm = 4.0 * math.pi * (alpha / math.pi) ** 1.5
    return norm * r ** 2 * np.exp(-alpha * r ** 2)


def hydrogen_radial_density(r: np.ndarray, beta: float) -> np.ndarray:
    """Analytic p(r) for |ψ_β|² of the hydrogenic trial."""
    if beta <= 0:
        raise ConfigurationError("beta must be positive")
    return 4.0 * beta ** 3 * r ** 2 * np.exp(-2.0 * beta * r)


def density_distance(measured: RadialDensity,
                     analytic: Sequence[float]) -> float:
    """L1 distance between the histogram and an analytic density
    evaluated at the bin centers (0 = perfect agreement)."""
    analytic = np.asarray(list(analytic), dtype=float)
    if len(analytic) != len(measured.density):
        raise ConfigurationError("density length mismatch")
    widths = np.diff(measured.edges)
    return float(np.sum(np.abs(measured.density - analytic) * widths))
