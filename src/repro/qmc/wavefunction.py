"""Model systems and trial wavefunctions for the QMC miniapp.

QMCPACK itself solves many-body Schrödinger equations; for the
reproduction we need a *real* Quantum Monte Carlo code whose phase
structure (VMC without drift → VMC with drift → DMC) drives the
simulated hardware the way Fig 12 shows. Two exactly-solvable systems
keep the physics verifiable:

* 3-D isotropic harmonic oscillator (ħ = m = ω = 1): trial
  ψ_α(r) = exp(−α r² / 2); local energy
  E_L(r) = 3α/2 + (1 − α²) r² / 2; ⟨E⟩(α) = 3(α + 1/α)/4,
  exact ground state at α = 1 with E₀ = 3/2 (zero variance).
* Hydrogen atom (atomic units): trial ψ_β(r) = exp(−β r); local energy
  E_L(r) = −β²/2 + (β − 1)/r; ⟨E⟩(β) = β²/2 − β,
  exact at β = 1 with E₀ = −1/2.

Both expose the quantities every sampler needs: log|ψ|, the drift
velocity ∇ln|ψ|, and E_L — all vectorised over walker ensembles of
shape (nwalkers, 3).
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from ..errors import ConfigurationError


class TrialWavefunction(abc.ABC):
    """Interface used by the VMC and DMC samplers."""

    #: Spatial dimensionality of one walker.
    ndim: int = 3
    #: Exact ground-state energy of the underlying Hamiltonian.
    exact_energy: float = 0.0

    @abc.abstractmethod
    def log_psi(self, r: np.ndarray) -> np.ndarray:
        """ln |ψ(r)| for walkers ``r`` of shape (n, ndim)."""

    @abc.abstractmethod
    def drift(self, r: np.ndarray) -> np.ndarray:
        """Drift velocity ∇ ln |ψ| (n, ndim)."""

    @abc.abstractmethod
    def local_energy(self, r: np.ndarray) -> np.ndarray:
        """E_L(r) = (Hψ)(r) / ψ(r) for each walker."""

    @abc.abstractmethod
    def variational_energy(self) -> float:
        """Analytic ⟨E_L⟩ under |ψ|² (for validation)."""

    def initial_walkers(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """A reasonable starting ensemble."""
        return rng.standard_normal((n, self.ndim))


@dataclasses.dataclass
class HarmonicOscillator(TrialWavefunction):
    """ψ_α(r) = exp(−α r²/2) for H = −∇²/2 + r²/2."""

    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.exact_energy = 1.5

    def log_psi(self, r: np.ndarray) -> np.ndarray:
        return -0.5 * self.alpha * np.sum(r * r, axis=1)

    def drift(self, r: np.ndarray) -> np.ndarray:
        return -self.alpha * r

    def local_energy(self, r: np.ndarray) -> np.ndarray:
        r2 = np.sum(r * r, axis=1)
        return 1.5 * self.alpha + 0.5 * (1.0 - self.alpha ** 2) * r2

    def variational_energy(self) -> float:
        return 0.75 * (self.alpha + 1.0 / self.alpha)


@dataclasses.dataclass
class HydrogenAtom(TrialWavefunction):
    """ψ_β(r) = exp(−β r) for H = −∇²/2 − 1/r (atomic units)."""

    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ConfigurationError("beta must be positive")
        self.exact_energy = -0.5

    @staticmethod
    def _radii(r: np.ndarray) -> np.ndarray:
        return np.maximum(np.sqrt(np.sum(r * r, axis=1)), 1e-12)

    def log_psi(self, r: np.ndarray) -> np.ndarray:
        return -self.beta * self._radii(r)

    def drift(self, r: np.ndarray) -> np.ndarray:
        radii = self._radii(r)[:, None]
        return -self.beta * r / radii

    def local_energy(self, r: np.ndarray) -> np.ndarray:
        radii = self._radii(r)
        return -0.5 * self.beta ** 2 + (self.beta - 1.0) / radii

    def variational_energy(self) -> float:
        return 0.5 * self.beta ** 2 - self.beta

    def initial_walkers(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Sample roughly from the exponential density to avoid r ≈ 0.
        radii = rng.gamma(shape=3.0, scale=0.5 / self.beta, size=n)
        direction = rng.standard_normal((n, self.ndim))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        return radii[:, None] * direction
