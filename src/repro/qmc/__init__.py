"""Quantum Monte Carlo miniapp (QMCPACK stand-in): exactly-solvable
model systems, vectorised VMC (no-drift and drift movers), DMC with
branching and population control, and the instrumented three-phase
cluster application behind Fig 12."""

from .app import DEFAULT_PLAN, QMCPACKApp, QMCPhasePlan
from .blocking import BlockingResult, autocorrelated_series, blocking_analysis
from .dmc import DMC, DMCBlockStats
from .vmc import VMC, BlockStats, mean_energy
from .wavefunction import HarmonicOscillator, HydrogenAtom, TrialWavefunction

__all__ = [
    "BlockStats",
    "BlockingResult",
    "autocorrelated_series",
    "blocking_analysis",
    "DEFAULT_PLAN",
    "DMC",
    "DMCBlockStats",
    "HarmonicOscillator",
    "HydrogenAtom",
    "QMCPACKApp",
    "QMCPhasePlan",
    "TrialWavefunction",
    "VMC",
    "mean_energy",
]
