"""QMCPACK-style miniapp: VMC (no drift) → VMC (drift) → DMC on the
simulated cluster.

"The example problem used in our QMCPACK experiment (on Summit)
executes the Variational Monte Carlo (VMC) method with no drift, then
the VMC method with drift, and finally, a Diffusion Monte Carlo (DMC)
method. Figure 12 demonstrates that the different stages in the
execution of QMCPACK are distinguishable by monitoring separate
hardware components simultaneously."

The miniapp runs *real* samplers (:class:`~repro.qmc.vmc.VMC`,
:class:`~repro.qmc.dmc.DMC`) at a tractable walker count and scales
their per-block behaviour — sweep counts, acceptance, DMC population
fluctuations and the walker-exchange plan — onto a notional production
ensemble per rank. Hardware signatures per phase:

* **vmc-nodrift** — walker-sweep memory traffic, moderate GPU bursts
  (one ψ evaluation per move), negligible network;
* **vmc-drift** — ~2.5× the GPU work (ψ, ∇ψ and Green's-function
  factors per move) → longer/denser power spikes, more host traffic;
* **dmc** — population-dependent traffic, branching, *and* walker
  exchanges between ranks → the network activity unique to this phase.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ConfigurationError
from ..machine.config import SUMMIT, MachineConfig
from ..measure.timeline import Step
from ..mpi.comm import Cluster, SimComm
from ..noise import NoiseConfig
from .dmc import DMC
from .vmc import VMC
from .wavefunction import HarmonicOscillator, TrialWavefunction

#: Bytes per walker shuttled to/from the GPU (3 coords + ψ bookkeeping).
WALKER_BYTES = 48
#: Arithmetic cost of one walker move on the GPU, by phase. QMCPACK
#: evaluates B-spline orbitals and determinant updates per move —
#: tens of kiloflops per electron move — so the GPU phases dominate
#: the block time (the power plateaus of Fig 12).
FLOPS_PER_MOVE = {"vmc-nodrift": 60e3, "vmc-drift": 150e3, "dmc": 170e3}
#: GPU busy power by phase (drift/DMC run denser kernels).
PHASE_POWER_W = {"vmc-nodrift": 190.0, "vmc-drift": 265.0, "dmc": 295.0}
#: Host memory accesses per walker per sweep (positions, energies,
#: acceptance bookkeeping), read:write split handled below.
SWEEP_BYTES_PER_WALKER = {"vmc-nodrift": 120, "vmc-drift": 200, "dmc": 260}


@dataclasses.dataclass(frozen=True)
class QMCPhasePlan:
    """One phase of the example problem."""

    name: str
    blocks: int
    steps_per_block: int


DEFAULT_PLAN = [
    QMCPhasePlan("vmc-nodrift", blocks=6, steps_per_block=10),
    QMCPhasePlan("vmc-drift", blocks=6, steps_per_block=10),
    QMCPhasePlan("dmc", blocks=8, steps_per_block=10),
]


class QMCPACKApp:
    """The instrumented three-phase QMC run."""

    def __init__(self, machine: MachineConfig = SUMMIT, n_nodes: int = 1,
                 psi: Optional[TrialWavefunction] = None,
                 sample_walkers: int = 256, hw_walkers_per_rank: int = 262144,
                 seed: Optional[int] = None,
                 noise: Optional[NoiseConfig] = None,
                 plan: Optional[List[QMCPhasePlan]] = None):
        if sample_walkers <= 0 or hw_walkers_per_rank <= 0:
            raise ConfigurationError("walker counts must be positive")
        self.psi = psi or HarmonicOscillator(alpha=1.15)
        self.cluster = Cluster(machine, n_nodes, seed=seed, noise=noise)
        self.comm = SimComm(self.cluster)
        self.sample_walkers = sample_walkers
        self.hw_walkers = hw_walkers_per_rank
        self.seed = seed
        self.plan = list(plan) if plan is not None else list(DEFAULT_PLAN)
        self._vmc_nodrift = VMC(self.psi, sample_walkers, drift=False,
                                seed=seed)
        self._vmc_drift = VMC(self.psi, sample_walkers, drift=True, seed=seed)
        self._dmc = DMC(self.psi, sample_walkers, timestep=0.02, seed=seed)
        #: Physics results per phase (validated in tests/examples).
        self.results = {"vmc-nodrift": [], "vmc-drift": [], "dmc": []}

    # ------------------------------------------------------------------
    def _scale(self) -> float:
        """Production-to-sample walker ratio."""
        return self.hw_walkers / self.sample_walkers

    def _run_block(self, phase: QMCPhasePlan) -> None:
        """Run one sampler block and mirror it onto the hardware."""
        name = phase.name
        steps = phase.steps_per_block
        if name == "vmc-nodrift":
            stats = self._vmc_nodrift.block(steps)
            population = self.sample_walkers
        elif name == "vmc-drift":
            stats = self._vmc_drift.block(steps)
            population = self.sample_walkers
        elif name == "dmc":
            stats = self._dmc.block(steps)
            population = stats.population
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown phase {name}")
        self.results[name].append(stats)
        hw_pop = int(population * self._scale())
        self._account_block(name, steps, hw_pop)
        if name == "dmc" and self.comm.size > 1:
            self._exchange_walkers()

    # ------------------------------------------------------------------
    def _account_block(self, name: str, steps: int, hw_pop: int) -> None:
        sweep_bytes = SWEEP_BYTES_PER_WALKER[name] * hw_pop * steps
        gpu_flops = FLOPS_PER_MOVE[name] * hw_pop * steps
        dma_bytes = WALKER_BYTES * hw_pop
        duration = 0.0
        for rank in range(self.comm.size):
            placement = self.comm.placements[rank]
            node = self.cluster.nodes[placement.node_index]
            sock = node.socket(placement.socket_id)
            # Host-side sweep traffic: ~60% reads, 40% writes.
            sock.record_traffic(read_bytes=int(0.6 * sweep_bytes),
                                write_bytes=int(0.4 * sweep_bytes))
            gpus = node.gpus_on_socket(placement.socket_id)
            rank_time = sweep_bytes / sock.config.memory_bandwidth
            if gpus:
                gpu = gpus[0]
                rank_time += gpu.h2d(dma_bytes, advance_clock=False)
                rank_time += gpu.execute(gpu_flops,
                                         power_w=PHASE_POWER_W[name],
                                         advance_clock=False)
                rank_time += gpu.d2h(dma_bytes, advance_clock=False)
            duration = max(duration, rank_time)
        self.cluster.advance_all(duration)

    def _exchange_walkers(self) -> None:
        """DMC load balancing: ship surplus walkers between ranks."""
        plan = self._dmc.rebalance_plan(self.comm.size)
        if not plan:
            return
        scale = self._scale()
        n = self.comm.size
        sizes = [[0] * n for _ in range(n)]
        for src, dst, count in plan:
            sizes[src][dst] += int(count * scale) * WALKER_BYTES
        self.comm._account_exchange(sizes, list(range(n)))

    # ------------------------------------------------------------------
    def steps(self) -> List[Step]:
        """The full example problem as profiler steps (one per block)."""
        out: List[Step] = []
        for phase in self.plan:
            for _ in range(phase.blocks):
                out.append(Step(phase.name,
                                lambda p=phase: self._run_block(p)))
        return out

    def run(self) -> None:
        for step in self.steps():
            step.run()
