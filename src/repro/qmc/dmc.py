"""Diffusion Monte Carlo with importance sampling and branching.

The third phase of the paper's QMCPACK example problem. Walkers drift
and diffuse under the importance-sampled Green's function, carry
branching weights ``exp(−τ·(E_L − E_ref))`` (symmetrised between old
and new local energies), and are stochastically replicated/killed by
integerised branching. A population-control feedback keeps the
ensemble near its target size by adjusting the reference energy:

    E_ref ← E_best − (g/τ)·ln(N/N_target)

For an exact trial wavefunction DMC reproduces the exact ground-state
energy with zero time-step error; for approximate trials it converges
to E₀ as τ → 0 — both properties are exercised in the tests.

The branching step is also what makes DMC *distributed-interesting*:
populations diverge across ranks and walkers must be exchanged to
rebalance, producing the network traffic visible in the DMC section of
Fig 12. :meth:`DMC.rebalance_plan` computes that exchange.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from .wavefunction import TrialWavefunction


@dataclasses.dataclass
class DMCBlockStats:
    """Per-block observables of the DMC run."""

    energy: float          # weighted mean local energy (growth estimator)
    e_ref: float           # current reference (trial) energy
    population: int        # walkers after branching
    acceptance: float


class DMC:
    """Importance-sampled branching random walk."""

    DIFFUSION = 0.5
    #: Population-control feedback gain (dimensionless). Kept modest:
    #: strong feedback correlates E_ref with population fluctuations
    #: and biases the mixed estimator.
    FEEDBACK = 0.3

    def __init__(self, psi: TrialWavefunction, n_walkers: int = 512,
                 timestep: float = 0.02, seed: Optional[int] = None,
                 max_population_factor: float = 4.0):
        if n_walkers <= 0:
            raise ConfigurationError("need at least one walker")
        if timestep <= 0:
            raise ConfigurationError("timestep must be positive")
        self.psi = psi
        self.timestep = timestep
        self.target_population = n_walkers
        self.max_population = int(max_population_factor * n_walkers)
        self.rng = substream(seed, "dmc")
        self.walkers = psi.initial_walkers(n_walkers, self.rng)
        self.log_psi = psi.log_psi(self.walkers)
        self.e_loc = psi.local_energy(self.walkers)
        self.e_ref = float(self.e_loc.mean())
        self.total_moves = 0
        self.accepted_moves = 0

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        return self.walkers.shape[0]

    # ------------------------------------------------------------------
    def step(self) -> float:
        """One DMC generation: drift-diffuse, accept, branch."""
        tau = self.timestep
        d = self.DIFFUSION
        sigma = math.sqrt(2.0 * d * tau)
        v_old = self.psi.drift(self.walkers)
        chi = sigma * self.rng.standard_normal(self.walkers.shape)
        proposal = self.walkers + d * tau * v_old + chi
        log_new = self.psi.log_psi(proposal)
        v_new = self.psi.drift(proposal)
        fwd = proposal - self.walkers - d * tau * v_old
        bwd = self.walkers - proposal - d * tau * v_new
        log_g = (np.sum(fwd * fwd, axis=1)
                 - np.sum(bwd * bwd, axis=1)) / (4.0 * d * tau)
        log_ratio = 2.0 * (log_new - self.log_psi) + log_g
        accept = (np.log(self.rng.random(self.population))
                  < np.minimum(0.0, log_ratio))
        self.walkers[accept] = proposal[accept]
        self.log_psi[accept] = log_new[accept]
        e_new = self.psi.local_energy(self.walkers)
        # Symmetrised branching weight over the move.
        weight = np.exp(-tau * (0.5 * (e_new + self.e_loc) - self.e_ref))
        self.e_loc = e_new
        self._branch(weight)
        n_acc = int(accept.sum())
        self.accepted_moves += n_acc
        self.total_moves += len(accept)
        return n_acc / len(accept)

    # ------------------------------------------------------------------
    def _branch(self, weight: np.ndarray) -> None:
        """Stochastic integerisation: each walker becomes
        ``floor(w + u)`` copies, u ~ U(0,1)."""
        copies = np.floor(weight + self.rng.random(self.population)
                          ).astype(np.int64)
        if copies.sum() == 0:
            # Total extinction (pathological trial / huge tau): restart
            # from the best walker rather than crashing the run.
            best = int(np.argmin(self.e_loc))
            copies[best] = 1
        idx = np.repeat(np.arange(self.population), copies)
        if len(idx) > self.max_population:
            idx = self.rng.choice(idx, size=self.max_population,
                                  replace=False)
        self.walkers = self.walkers[idx]
        self.log_psi = self.log_psi[idx]
        self.e_loc = self.e_loc[idx]
        # Population-control feedback on the reference energy.
        e_best = float(np.average(self.e_loc))
        ratio = self.population / self.target_population
        self.e_ref = e_best - (self.FEEDBACK / self.timestep) * math.log(ratio)

    # ------------------------------------------------------------------
    def block(self, steps: int = 20) -> DMCBlockStats:
        if steps <= 0:
            raise ConfigurationError("block needs at least one step")
        acc = 0.0
        for _ in range(steps):
            acc += self.step()
        return DMCBlockStats(
            energy=float(self.e_loc.mean()),
            e_ref=self.e_ref,
            population=self.population,
            acceptance=acc / steps,
        )

    def run(self, n_blocks: int = 30, steps_per_block: int = 20,
            warmup_blocks: int = 5) -> List[DMCBlockStats]:
        for _ in range(warmup_blocks):
            self.block(steps_per_block)
        return [self.block(steps_per_block) for _ in range(n_blocks)]

    # ------------------------------------------------------------------
    def rebalance_plan(self, n_ranks: int) -> List[Tuple[int, int, int]]:
        """Walker-exchange plan after branching skews per-rank loads.

        The ensemble is notionally sharded over ``n_ranks``; branching
        makes shard sizes unequal. Returns (src_rank, dst_rank,
        n_walkers) transfers that level the shards — the message
        pattern behind the DMC-phase network traffic in Fig 12.
        """
        if n_ranks <= 0:
            raise ConfigurationError("need at least one rank")
        # Deterministic notional shard sizes from the current ensemble:
        # walkers are dealt round-robin, so sizes differ by <= 1; the
        # *imbalance* we model is the per-rank branching multiplicity.
        counts = np.bincount(
            self.rng.integers(0, n_ranks, size=self.population),
            minlength=n_ranks).astype(np.int64)
        target = self.population // n_ranks
        surplus = [(int(c - target), r) for r, c in enumerate(counts)]
        donors = sorted(((s, r) for s, r in surplus if s > 0), reverse=True)
        takers = sorted(((s, r) for s, r in surplus if s < 0))
        plan: List[Tuple[int, int, int]] = []
        di, ti = 0, 0
        donors = [[s, r] for s, r in donors]
        takers = [[-s, r] for s, r in takers]
        while di < len(donors) and ti < len(takers):
            give = min(donors[di][0], takers[ti][0])
            if give > 0:
                plan.append((donors[di][1], takers[ti][1], give))
                donors[di][0] -= give
                takers[ti][0] -= give
            if donors[di][0] == 0:
                di += 1
            if takers[ti][0] == 0:
                ti += 1
        return plan


def mean_energy(blocks: List[DMCBlockStats]) -> float:
    total = sum(b.population for b in blocks)
    return sum(b.energy * b.population for b in blocks) / total
