"""Blocking analysis (Flyvbjerg–Petersen) for correlated MC series.

Monte Carlo samples within a walker's trajectory are serially
correlated, so the naive standard error ``σ/√N`` underestimates the
true uncertainty. The blocking transform repeatedly averages adjacent
pairs; the apparent standard error grows until blocks exceed the
correlation time and then plateaus — the plateau value is the honest
error bar. QMCPACK reports exactly this statistic per block; the
miniapp uses it to attach defensible error bars to its energies.

Reference: H. Flyvbjerg & H. G. Petersen, "Error estimates on averages
of correlated data", J. Chem. Phys. 91, 461 (1989).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class BlockingLevel:
    """One level of the blocking transform."""

    level: int
    n_blocks: int
    std_error: float
    #: Error of the error estimate (√(2/(n-1)) relative).
    error_of_error: float


@dataclasses.dataclass(frozen=True)
class BlockingResult:
    """Full blocking analysis of one series."""

    mean: float
    naive_error: float
    error: float                 # plateau estimate
    correlation_time: float      # in units of samples
    levels: List[BlockingLevel]

    @property
    def inefficiency(self) -> float:
        """Statistical inefficiency = 2·τ (samples per independent one)."""
        return max(1.0, (self.error / self.naive_error) ** 2) \
            if self.naive_error > 0 else 1.0


def blocking_analysis(samples: Sequence[float],
                      min_blocks: int = 8) -> BlockingResult:
    """Run the full blocking transform on ``samples``.

    The plateau is chosen as the first level whose error estimate is
    statistically compatible with the next level's (within their error
    bars), falling back to the largest-error level when no plateau is
    reached (too-short series — the error is then a lower bound).
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 2 * min_blocks:
        raise ConfigurationError(
            f"blocking needs >= {2 * min_blocks} samples, got {data.size}")
    mean = float(data.mean())
    naive = float(data.std(ddof=1) / math.sqrt(data.size))
    levels: List[BlockingLevel] = []
    x = data
    level = 0
    while x.size >= min_blocks:
        n = x.size
        se = float(x.std(ddof=1) / math.sqrt(n))
        eoe = se / math.sqrt(2.0 * (n - 1))
        levels.append(BlockingLevel(level=level, n_blocks=n,
                                    std_error=se, error_of_error=eoe))
        if x.size % 2:
            x = x[:-1]
        x = 0.5 * (x[0::2] + x[1::2])
        level += 1
    error = _plateau(levels)
    tau = 0.5 * (error / naive) ** 2 if naive > 0 else 0.5
    return BlockingResult(mean=mean, naive_error=naive, error=error,
                          correlation_time=tau, levels=levels)


def _plateau(levels: List[BlockingLevel]) -> float:
    for current, nxt in zip(levels, levels[1:]):
        gap = abs(nxt.std_error - current.std_error)
        if gap <= nxt.error_of_error + current.error_of_error:
            return current.std_error
    return max(lvl.std_error for lvl in levels)


def autocorrelated_series(n: int, tau: float,
                          rng: np.random.Generator) -> np.ndarray:
    """AR(1) series with correlation time ``tau`` (test/demo helper)."""
    if tau <= 0:
        raise ConfigurationError("tau must be positive")
    phi = math.exp(-1.0 / tau)
    noise = rng.standard_normal(n) * math.sqrt(1.0 - phi * phi)
    out = np.empty(n)
    out[0] = rng.standard_normal()
    for i in range(1, n):
        out[i] = phi * out[i - 1] + noise[i]
    return out
