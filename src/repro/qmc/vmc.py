"""Variational Monte Carlo: Metropolis sampling of |ψ|².

Two movers, matching QMCPACK's example problem in the paper ("the VMC
method with no drift, then the VMC method with drift"):

* **no-drift** — symmetric Gaussian proposals, plain Metropolis
  acceptance min(1, |ψ'/ψ|²);
* **drift** — importance-sampled Langevin proposals
  r' = r + D·τ·v(r) + χ, with the drift velocity v = ∇ln|ψ| and the
  Green's-function-ratio correction in the acceptance (detailed
  balance for the smart Monte Carlo move).

Both movers are fully vectorised over the walker ensemble; each call
to :meth:`VMC.block` advances every walker ``steps`` times and returns
block statistics (energy mean/variance, acceptance ratio).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import substream
from .wavefunction import TrialWavefunction


@dataclasses.dataclass
class BlockStats:
    """Per-block observables."""

    energy: float
    variance: float
    acceptance: float
    n_walkers: int

    @property
    def error_bar(self) -> float:
        return math.sqrt(max(self.variance, 0.0) / max(self.n_walkers, 1))


class VMC:
    """Vectorised VMC driver (no-drift or drift mover)."""

    #: Diffusion constant D = ħ²/2m = 1/2 in our units.
    DIFFUSION = 0.5

    def __init__(self, psi: TrialWavefunction, n_walkers: int = 512,
                 timestep: float = 0.3, drift: bool = False,
                 seed: Optional[int] = None):
        if n_walkers <= 0:
            raise ConfigurationError("need at least one walker")
        if timestep <= 0:
            raise ConfigurationError("timestep must be positive")
        self.psi = psi
        self.timestep = timestep
        self.use_drift = drift
        self.rng = substream(seed, "vmc", "drift" if drift else "nodrift")
        self.walkers = psi.initial_walkers(n_walkers, self.rng)
        self.log_psi = psi.log_psi(self.walkers)
        self.total_moves = 0
        self.accepted_moves = 0

    # ------------------------------------------------------------------
    @property
    def n_walkers(self) -> int:
        return self.walkers.shape[0]

    @property
    def acceptance_ratio(self) -> float:
        return (self.accepted_moves / self.total_moves
                if self.total_moves else 0.0)

    # ------------------------------------------------------------------
    def step(self) -> float:
        """One Monte Carlo sweep over all walkers; returns acceptance."""
        tau = self.timestep
        d = self.DIFFUSION
        sigma = math.sqrt(2.0 * d * tau)
        chi = sigma * self.rng.standard_normal(self.walkers.shape)
        if self.use_drift:
            v_old = self.psi.drift(self.walkers)
            proposal = self.walkers + d * tau * v_old + chi
        else:
            proposal = self.walkers + chi
        log_new = self.psi.log_psi(proposal)
        log_ratio = 2.0 * (log_new - self.log_psi)
        if self.use_drift:
            # Green's function ratio G(r→r')/G(r'→r) for the Langevin
            # proposal (importance-sampled detailed balance).
            v_new = self.psi.drift(proposal)
            fwd = proposal - self.walkers - d * tau * v_old
            bwd = self.walkers - proposal - d * tau * v_new
            log_g = (np.sum(fwd * fwd, axis=1)
                     - np.sum(bwd * bwd, axis=1)) / (4.0 * d * tau)
            log_ratio += log_g
        accept = (np.log(self.rng.random(self.n_walkers))
                  < np.minimum(0.0, log_ratio))
        self.walkers[accept] = proposal[accept]
        self.log_psi[accept] = log_new[accept]
        n_acc = int(accept.sum())
        self.accepted_moves += n_acc
        self.total_moves += self.n_walkers
        return n_acc / self.n_walkers

    def block(self, steps: int = 20) -> BlockStats:
        """Advance ``steps`` sweeps and measure E_L on the final state."""
        if steps <= 0:
            raise ConfigurationError("block needs at least one step")
        acc = 0.0
        for _ in range(steps):
            acc += self.step()
        e_loc = self.psi.local_energy(self.walkers)
        return BlockStats(
            energy=float(e_loc.mean()),
            variance=float(e_loc.var()),
            acceptance=acc / steps,
            n_walkers=self.n_walkers,
        )

    def run(self, n_blocks: int = 20, steps_per_block: int = 20,
            warmup_blocks: int = 2) -> List[BlockStats]:
        """Standard VMC run: warm-up (discarded) then measured blocks."""
        for _ in range(warmup_blocks):
            self.block(steps_per_block)
        return [self.block(steps_per_block) for _ in range(n_blocks)]


def mean_energy(blocks: List[BlockStats]) -> float:
    """Walker-weighted mean energy over blocks."""
    total_w = sum(b.n_walkers for b in blocks)
    return sum(b.energy * b.n_walkers for b in blocks) / total_w
