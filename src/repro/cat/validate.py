"""Counter Analysis Toolkit: validating hardware events against
known-traffic microbenchmarks.

"One of PAPI's commitments as a portability layer is the thorough
validation of the hardware events exposed to the user to account for
unreliable counters, especially when there are multiple sources of
events." This module reproduces that methodology (the paper's
reference [9]): run microbenchmarks whose memory traffic is known in
closed form, read the candidate events around each run, and classify
every event by how well its counts match:

* ``VALIDATED`` — counts within ``tolerance`` of expectation on every
  probe (at the probe sizes where traffic dominates noise);
* ``NOISY`` — correct to within ``noisy_tolerance`` but perturbed (the
  small-kernel regime of Figs 2/5: use repetitions);
* ``UNRELIABLE`` — counts that do not track the expected traffic;
* ``DEAD`` — counts that never move.

Probes are STREAM kernels plus a DOT and a batched GEMM; nest events
count per-channel, so per-event expectations divide the socket total
by the channel count (hardware interleave makes the split even to
within one transaction).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..kernels.blas import Dot, Gemm
from ..kernels.stream import stream_suite
from ..measure.report import format_table
from ..measure.repetition import repetitions_for
from ..measure.session import MeasurementSession


class Classification(enum.Enum):
    VALIDATED = "validated"
    NOISY = "noisy"
    UNRELIABLE = "unreliable"
    DEAD = "dead"


@dataclasses.dataclass
class ProbeResult:
    """One (event, probe) comparison."""

    event: str
    probe: str
    expected: float
    measured: float

    @property
    def relative_error(self) -> float:
        if self.expected == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured - self.expected) / self.expected


@dataclasses.dataclass
class ValidationReport:
    """Per-event classification plus the underlying probe data."""

    machine: str
    via: str
    results: List[ProbeResult]
    classifications: Dict[str, Classification]

    def events(self, classification: Classification) -> List[str]:
        return sorted(e for e, c in self.classifications.items()
                      if c is classification)

    def render(self) -> str:
        rows = []
        for event in sorted(self.classifications):
            probes = [r for r in self.results if r.event == event]
            worst = max(probes, key=lambda r: r.relative_error)
            rows.append([
                event, self.classifications[event].value,
                f"{worst.relative_error * 100:.2f}%", worst.probe,
            ])
        return format_table(
            ["event", "classification", "worst error", "worst probe"],
            rows,
            title=(f"Counter Analysis Toolkit — {self.machine} via "
                   f"{self.via}"),
        )


class CounterAnalysisToolkit:
    """Event validator bound to one measurement session."""

    def __init__(self, session: MeasurementSession,
                 tolerance: float = 0.05, noisy_tolerance: float = 0.5,
                 probe_size: int = 1 << 20):
        if not 0 < tolerance < noisy_tolerance:
            raise ConfigurationError(
                "need 0 < tolerance < noisy_tolerance")
        self.session = session
        self.tolerance = tolerance
        self.noisy_tolerance = noisy_tolerance
        self.probe_size = probe_size

    # ------------------------------------------------------------------
    def default_probes(self) -> List:
        """Known-traffic probes: STREAM ops, DOT, and a batched GEMM."""
        n = self.probe_size
        probes: List = list(stream_suite(n))
        probes.append(Dot(4 * n))
        # GEMM small enough that its working set fits the local L3
        # share — past that, slice-spill traffic is real behaviour, not
        # a counter defect, and must not fail validation.
        probes.append(Gemm(384))
        return probes

    # ------------------------------------------------------------------
    def run_suite(self, probes: Optional[Sequence] = None,
                  socket_id: int = 0) -> ValidationReport:
        """Measure every probe and classify every nest event."""
        probes = list(probes) if probes is not None else self.default_probes()
        events = self.session.nest_event_names(socket_id)
        n_channels = self.session.machine.socket.n_memory_channels
        results: List[ProbeResult] = []
        moved: Dict[str, bool] = {e: False for e in events}
        for probe in probes:
            reps = repetitions_for(getattr(probe, "n", 2048))
            per_event = self._measure_per_event(probe, events, socket_id,
                                                reps)
            expected = probe.expected_traffic()
            for event, measured in per_event.items():
                if measured:
                    moved[event] = True
                total = (expected.write_bytes if "WRITE" in event
                         else expected.read_bytes)
                if total == 0:
                    # A probe with no expected traffic in this direction
                    # cannot validate the counter (any background byte
                    # would register as infinite error); it still
                    # contributes to dead-counter detection above.
                    continue
                results.append(ProbeResult(
                    event=event, probe=probe.name,
                    expected=total / n_channels, measured=measured,
                ))
        classifications = self._classify(results, moved)
        return ValidationReport(
            machine=self.session.machine.name, via=self.session.via,
            results=results, classifications=classifications,
        )

    # ------------------------------------------------------------------
    def _measure_per_event(self, probe, events, socket_id: int,
                           repetitions: int) -> Dict[str, int]:
        es = self.session._make_eventset(socket_id)
        es.start()
        self.session.executor.run(probe, socket_id=socket_id,
                                  repetitions=repetitions)
        values = es.stop_dict()
        return {e: values[e] // repetitions for e in events}

    def _classify(self, results: List[ProbeResult],
                  moved: Dict[str, bool]) -> Dict[str, Classification]:
        out: Dict[str, Classification] = {}
        by_event: Dict[str, List[ProbeResult]] = {}
        for r in results:
            by_event.setdefault(r.event, []).append(r)
        for event, probes in by_event.items():
            if not moved[event]:
                out[event] = Classification.DEAD
                continue
            worst = max(p.relative_error for p in probes)
            if worst <= self.tolerance:
                out[event] = Classification.VALIDATED
            elif worst <= self.noisy_tolerance:
                out[event] = Classification.NOISY
            else:
                out[event] = Classification.UNRELIABLE
        return out
