"""Counter Analysis Toolkit: microbenchmark-driven validation of the
memory-traffic events exposed by the PAPI components (paper ref. [9])."""

from .validate import (
    Classification,
    CounterAnalysisToolkit,
    ProbeResult,
    ValidationReport,
)

__all__ = [
    "Classification",
    "CounterAnalysisToolkit",
    "ProbeResult",
    "ValidationReport",
]
