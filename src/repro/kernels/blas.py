"""Reference BLAS kernels: DOT, GEMV, capped GEMV, and GEMM.

These mirror the paper's Listings 1-4: *reference* (unblocked,
unoptimised) implementations, used purely to validate memory-traffic
measurements — "the absolute performance achieved by these kernels is
not relevant to this work".

Each kernel is a :class:`~repro.engine.trace.KernelModel` carrying

* ``compute()`` — the numerics (NumPy), for correctness tests;
* ``streams()`` — the access-site declarations the store-bypass policy
  and prefetcher act on;
* ``traffic(ctx)`` — the analytic traffic law (validated against the
  exact cache simulator at small sizes);
* ``exact_accesses()`` — the program-ordered trace for the exact
  engine;
* ``expected_traffic()`` — the *paper's* expectation (dashed lines):
  element counts × 8 bytes, caching assumed.

Batched execution (one independent instance per core, Listings 2/4) is
expressed by running the same model with ``Executor(n_cores=...)``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

import numpy as np

from ..engine.analytic import (
    CacheContext,
    combine,
    reused_read,
    sequential_read,
    sequential_write,
)
from ..engine.envconfig import resolve_segment_rows
from ..engine.stream import (
    Access,
    BatchTrace,
    StreamDecl,
    resolve_policies,
)
from ..engine.trace import KernelModel
from ..errors import ConfigurationError
from ..machine.cache import TrafficCounters
from ..machine.prefetch import SoftwarePrefetch
from ..rng import substream
from ..units import DOUBLE


def _layout(*sizes: int, gap: int = 256, align: int = 128) -> List[int]:
    """Base addresses for arrays allocated back-to-back with a gap.

    Bases are cache-line aligned, as any allocator handling large
    numerical arrays would; the traffic laws assume aligned streams.
    """
    bases = []
    addr = 0
    for size in sizes:
        bases.append(addr)
        addr += size + gap
        addr = -(-addr // align) * align
    return bases


# ======================================================================
# DOT
# ======================================================================
@dataclasses.dataclass
class Dot(KernelModel):
    """z = x · y — the kernel used in the paper's prior work [9]."""

    n: int
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError("DOT needs n >= 1")
        self.name = f"dot-{self.n}"

    # numerics ---------------------------------------------------------
    def make_inputs(self):
        rng = substream(self.seed, self.name)
        return (rng.standard_normal(self.n), rng.standard_normal(self.n))

    def compute(self) -> float:
        x, y = self.make_inputs()
        return float(x @ y)

    # streams / traffic --------------------------------------------------
    def streams(self) -> List[StreamDecl]:
        nbytes = self.n * DOUBLE
        bx, by = _layout(nbytes, nbytes)
        return [
            StreamDecl("x", False, self.n, DOUBLE, DOUBLE, nbytes, base=bx),
            StreamDecl("y", False, self.n, DOUBLE, DOUBLE, nbytes, base=by),
        ]

    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        nbytes = self.n * DOUBLE
        return combine(sequential_read(nbytes, ctx),
                       sequential_read(nbytes, ctx))

    def exact_accesses(self) -> Iterator[Access]:
        nbytes = self.n * DOUBLE
        bx, by = _layout(nbytes, nbytes)
        for i in range(self.n):
            yield Access("x", bx + i * DOUBLE, DOUBLE, False)
            yield Access("y", by + i * DOUBLE, DOUBLE, False)

    def _range_trace(self, i0: int, i1: int) -> BatchTrace:
        nbytes = self.n * DOUBLE
        bx, by = _layout(nbytes, nbytes)
        idx = np.arange(i0, i1, dtype=np.int64) * DOUBLE
        return BatchTrace.interleaved([
            ("x", bx + idx, DOUBLE, False),
            ("y", by + idx, DOUBLE, False),
        ])

    def exact_trace(self) -> BatchTrace:
        return self._range_trace(0, self.n)

    def segments(self, target_rows: Optional[int] = None):
        """Bounded emitter over iteration ranges (2 rows per i)."""
        target_rows = resolve_segment_rows(target_rows)
        step = max(1, target_rows // 2)
        for i0 in range(0, self.n, step):
            yield self._range_trace(i0, min(i0 + step, self.n))

    def flops(self) -> float:
        return 2.0 * self.n

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        return TrafficCounters(read_bytes=2 * self.n * DOUBLE)


# ======================================================================
# GEMV (Listing 1) and capped GEMV (Listing 2 / Eq. 1)
# ======================================================================
@dataclasses.dataclass
class CappedGemv(KernelModel):
    """y_i = Σ_k A[i % P, k] · x_k for 0 ≤ i < M (paper Eq. 1).

    With ``p == m == n`` this *is* the plain reference GEMV of
    Listing 1; capping ``p`` below ``m`` reuses the rows of A so that
    the output (and hence the write traffic) can grow without the
    matrix exhausting memory — the construction of Fig 1.
    """

    m: int
    n: int
    p: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.p is None:
            self.p = min(self.m, self.n)
        if self.m <= 0 or self.n <= 0 or self.p <= 0:
            raise ConfigurationError("capped GEMV needs positive M, N, P")
        if self.p > self.m:
            raise ConfigurationError("cap P cannot exceed M")
        self.name = f"capped-gemv-{self.m}x{self.n}p{self.p}"

    @property
    def square(self) -> bool:
        """Is this the unmodified GEMV (no row reuse)?"""
        return self.p == self.m

    # numerics ---------------------------------------------------------
    def make_inputs(self):
        rng = substream(self.seed, self.name)
        a = rng.standard_normal((self.p, self.n))
        x = rng.standard_normal(self.n)
        return a, x

    def compute(self) -> np.ndarray:
        """Vectorised evaluation of Eq. 1 (row i uses A[i % P])."""
        a, x = self.make_inputs()
        ax = a @ x  # P dot products; rows repeat with period P
        reps = -(-self.m // self.p)
        return np.tile(ax, reps)[: self.m]

    # streams ------------------------------------------------------------
    def streams(self) -> List[StreamDecl]:
        a_bytes = self.p * self.n * DOUBLE
        x_bytes = self.n * DOUBLE
        y_bytes = self.m * DOUBLE
        ba, bx, by = _layout(a_bytes, x_bytes, y_bytes)
        per_row = 2 * self.n  # loads of A and x between two y stores
        return [
            StreamDecl("A", False, self.m * self.n, DOUBLE, DOUBLE,
                       a_bytes, base=ba),
            StreamDecl("x", False, self.m * self.n, DOUBLE, DOUBLE,
                       x_bytes, base=bx),
            StreamDecl("y", True, self.m, DOUBLE, DOUBLE, y_bytes,
                       base=by, interarrival=per_row),
        ]

    # traffic ------------------------------------------------------------
    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        a_bytes = self.p * self.n * DOUBLE
        passes = max(1.0, self.m / self.p)
        a = reused_read(a_bytes, passes, ctx)
        x = reused_read(self.n * DOUBLE, min(self.m, 2), ctx)
        y = sequential_write(self.m * DOUBLE, ctx, policies["y"])
        return combine(a, x, y)

    def exact_accesses(self) -> Iterator[Access]:
        a_bytes = self.p * self.n * DOUBLE
        x_bytes = self.n * DOUBLE
        y_bytes = self.m * DOUBLE
        ba, bx, by = _layout(a_bytes, x_bytes, y_bytes)
        for i in range(self.m):
            row = i % self.p
            for k in range(self.n):
                yield Access("A", ba + (row * self.n + k) * DOUBLE,
                             DOUBLE, False)
                yield Access("x", bx + k * DOUBLE, DOUBLE, False)
            yield Access("y", by + i * DOUBLE, DOUBLE, True)

    def _trace_template(self):
        """Template of one row of i = 0 (2n interleaved A/x loads then
        the y store); later rows shift only A (by ``(i % p)·n·8``) and
        y (by ``i·8``) at their slots."""
        n, p = self.n, self.p
        a_bytes = p * n * DOUBLE
        x_bytes = n * DOUBLE
        y_bytes = self.m * DOUBLE
        ba, bx, by = _layout(a_bytes, x_bytes, y_bytes)
        per_row = 2 * n + 1
        k_idx = np.arange(n, dtype=np.int64)
        tmpl_addr = np.empty(per_row, np.int64)
        tmpl_addr[0:2 * n:2] = ba + k_idx * DOUBLE
        tmpl_addr[1:2 * n:2] = bx + k_idx * DOUBLE
        tmpl_addr[2 * n] = by
        tmpl_sid = np.empty(per_row, np.int16)
        tmpl_sid[0:2 * n:2] = 0
        tmpl_sid[1:2 * n:2] = 1
        tmpl_sid[2 * n] = 2
        tmpl_w = np.zeros(per_row, bool)
        tmpl_w[2 * n] = True
        a_slots = np.zeros(per_row, np.int64)
        a_slots[0:2 * n:2] = 1
        y_slots = np.zeros(per_row, np.int64)
        y_slots[2 * n] = 1
        return tmpl_addr, tmpl_sid, tmpl_w, a_slots, y_slots, per_row

    def _row_range_trace(self, i0: int, i1: int, tmpl_addr, tmpl_sid,
                         tmpl_w, a_slots, y_slots,
                         per_row) -> BatchTrace:
        """Columns of output rows ``i0 <= i < i1`` (tiled template)."""
        n, p = self.n, self.p
        cnt = i1 - i0
        rows = np.arange(i0, i1, dtype=np.int64)
        addr = np.tile(tmpl_addr, cnt)
        addr += np.repeat((rows % p) * (n * DOUBLE), per_row) \
            * np.tile(a_slots, cnt)
        addr += np.repeat(rows * DOUBLE, per_row) * np.tile(y_slots, cnt)
        return BatchTrace(
            streams=("A", "x", "y"),
            stream_id=np.tile(tmpl_sid, cnt),
            addr=addr,
            size=np.full(addr.size, DOUBLE, np.int32),
            is_write=np.tile(tmpl_w, cnt),
        )

    def exact_trace(self) -> BatchTrace:
        return self._row_range_trace(0, self.m, *self._trace_template())

    def segments(self, target_rows: Optional[int] = None):
        """Bounded emitter over whole output rows (2n+1 rows each)."""
        target_rows = resolve_segment_rows(target_rows)
        parts = self._trace_template()
        step = max(1, target_rows // parts[-1])
        for i0 in range(0, self.m, step):
            yield self._row_range_trace(
                i0, min(i0 + step, self.m), *parts)

    # work ---------------------------------------------------------------
    def flops(self) -> float:
        return 2.0 * self.m * self.n

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Paper §II-A: M·N + M + N element reads, M element writes.

        The M term is the read-per-write on y; the expectation treats A
        as streamed from memory every pass (true once A exceeds the
        cache, which holds throughout the capped regime)."""
        reads = (self.m * self.n + self.m + self.n) * DOUBLE
        return TrafficCounters(read_bytes=reads,
                               write_bytes=self.m * DOUBLE)


def Gemv(m: int, n: int, seed: Optional[int] = None) -> CappedGemv:
    """Plain reference GEMV (Listing 1): a capped GEMV with P = M."""
    return CappedGemv(m=m, n=n, p=m, seed=seed)


# ======================================================================
# GEMM (Listing 3 / Eq. 2)
# ======================================================================
@dataclasses.dataclass
class Gemm(KernelModel):
    """C = A·B with square N×N double matrices (paper Eq. 2)."""

    n: int
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError("GEMM needs n >= 1")
        self.name = f"gemm-{self.n}"

    # numerics ---------------------------------------------------------
    def make_inputs(self):
        rng = substream(self.seed, self.name)
        a = rng.standard_normal((self.n, self.n))
        b = rng.standard_normal((self.n, self.n))
        return a, b

    def compute(self) -> np.ndarray:
        a, b = self.make_inputs()
        return a @ b

    # streams ------------------------------------------------------------
    def streams(self) -> List[StreamDecl]:
        nn = self.n * self.n
        nbytes = nn * DOUBLE
        ba, bb, bc = _layout(nbytes, nbytes, nbytes)
        return [
            # A[i][k]: k innermost -> sequential within a row.
            StreamDecl("A", False, self.n * nn, DOUBLE, DOUBLE,
                       nbytes, base=ba),
            # B[k][j]: k innermost -> stride of one row (N·8 bytes); the
            # strided stream the POWER9 prefetcher detects, which is why
            # C's writes do not bypass the cache.
            StreamDecl("B", False, self.n * nn, DOUBLE,
                       self.n * DOUBLE, nbytes, base=bb),
            # C[i][j]: one store per dot product (sparse).
            StreamDecl("C", True, nn, DOUBLE, DOUBLE, nbytes,
                       base=bc, interarrival=2 * self.n),
        ]

    # traffic ------------------------------------------------------------
    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        nbytes = self.n * self.n * DOUBLE
        # A: each row is reused back-to-back across j while it sits in
        # cache, then never again -> one cold read of the matrix.
        a = sequential_read(nbytes, ctx)
        # B: the full matrix is swept once per outer iteration (N
        # passes); it only avoids re-fetch if it stays cached.
        b = reused_read(nbytes, self.n, ctx)
        # C: written once; read-for-ownership unless bypassed (it never
        # is: B's strided stream plus sparse stores force allocation).
        c = sequential_write(nbytes, ctx, policies["C"])
        return combine(a, b, c)

    def exact_accesses(self) -> Iterator[Access]:
        n = self.n
        nbytes = n * n * DOUBLE
        ba, bb, bc = _layout(nbytes, nbytes, nbytes)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    yield Access("A", ba + (i * n + k) * DOUBLE, DOUBLE, False)
                    yield Access("B", bb + (k * n + j) * DOUBLE, DOUBLE, False)
                yield Access("C", bc + (i * n + j) * DOUBLE, DOUBLE, True)

    def _trace_template(self):
        """Template of one full i = 0 outer iteration ((2n+1)·n
        accesses). Later outer iterations shift only the A and C
        addresses (both by i·n·8 bytes, both at even slots of each
        j-block); B repeats unchanged, so only one add per outer
        iteration is needed."""
        n = self.n
        nbytes = n * n * DOUBLE
        ba, bb, bc = _layout(nbytes, nbytes, nbytes)
        per_j = 2 * n + 1
        block = per_j * n
        k_idx = np.arange(n, dtype=np.int64)
        j_idx = np.arange(n, dtype=np.int64)
        tmpl = np.empty(block, np.int64)
        view = tmpl.reshape(n, per_j)
        view[:, 0:2 * n:2] = ba + (k_idx * DOUBLE)[None, :]
        view[:, 1:2 * n:2] = bb + (k_idx[None, :] * n
                                   + j_idx[:, None]) * DOUBLE
        view[:, 2 * n] = bc + j_idx * DOUBLE
        jb_sid = np.empty(per_j, np.int16)
        jb_sid[0:2 * n:2] = 0
        jb_sid[1:2 * n:2] = 1
        jb_sid[2 * n] = 2
        jb_w = np.zeros(per_j, bool)
        jb_w[2 * n] = True
        ac_slots = np.zeros(per_j, np.int64)
        ac_slots[0::2] = 1  # A at even k-slots, C at slot 2n (also even)
        ac_block = np.tile(ac_slots, n)
        return tmpl, jb_sid, jb_w, ac_block, block

    def _outer_range_trace(self, i0: int, i1: int, tmpl, jb_sid, jb_w,
                           ac_block, block) -> BatchTrace:
        """Columns of outer iterations ``i0 <= i < i1``."""
        n = self.n
        addr = np.empty(block * (i1 - i0), np.int64)
        for i in range(i0, i1):
            out = addr[(i - i0) * block:(i - i0 + 1) * block]
            np.multiply(ac_block, i * n * DOUBLE, out=out)
            out += tmpl
        reps = n * (i1 - i0)
        return BatchTrace(
            streams=("A", "B", "C"),
            stream_id=np.tile(jb_sid, reps),
            addr=addr,
            size=np.full(addr.size, DOUBLE, np.int32),
            is_write=np.tile(jb_w, reps),
        )

    def exact_trace(self) -> BatchTrace:
        return self._outer_range_trace(0, self.n, *self._trace_template())

    def segments(self, target_rows: Optional[int] = None):
        """Bounded-memory emitter: segments of whole outer iterations,
        ~``target_rows`` rows each, concatenating byte-identically to
        :meth:`exact_trace`. A Gemm N=512 trace (~4 GB of columns)
        streams through this without ever materializing in RAM."""
        target_rows = resolve_segment_rows(target_rows)
        parts = self._trace_template()
        block = parts[-1]
        iters = max(1, target_rows // block)
        for i0 in range(0, self.n, iters):
            yield self._outer_range_trace(
                i0, min(i0 + iters, self.n), *parts)

    # work ---------------------------------------------------------------
    def flops(self) -> float:
        return 2.0 * self.n ** 3

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Paper §II-B: 3·N² element reads (A, B, and the read-per-write
        on C), N² element writes — valid while the matrices cache."""
        nn = self.n * self.n
        return TrafficCounters(read_bytes=3 * nn * DOUBLE,
                               write_bytes=nn * DOUBLE)
