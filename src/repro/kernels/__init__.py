"""Reference computational kernels (paper Listings 1-4) and the
compiler-flag model for ``-fprefetch-loop-arrays``."""

from .blas import CappedGemv, Dot, Gemm, Gemv
from .sparse import (
    CSRMatrix,
    SpmvKernel,
    conjugate_gradient,
    dense_to_csr,
    laplacian_3d,
    random_csr,
)
from .stream import StreamKernel, stream_suite
from .compiler import (
    NO_EXTRA_FLAGS,
    PREFETCH_LOOP_ARRAYS,
    CompilerConfig,
    compile_kernel,
)

__all__ = [
    "CSRMatrix",
    "CappedGemv",
    "CompilerConfig",
    "Dot",
    "Gemm",
    "Gemv",
    "NO_EXTRA_FLAGS",
    "PREFETCH_LOOP_ARRAYS",
    "SpmvKernel",
    "StreamKernel",
    "compile_kernel",
    "conjugate_gradient",
    "dense_to_csr",
    "laplacian_3d",
    "random_csr",
    "stream_suite",
]
