"""STREAM-style bandwidth kernels: Copy, Scale, Add, Triad.

McCalpin's STREAM operations are the canonical known-traffic
microbenchmarks; the Counter Analysis Toolkit (:mod:`repro.cat`) uses
them as probes whose exact expected byte counts validate the identity
and reliability of memory-traffic events — the paper's stated
commitment that PAPI performs "thorough validation of the hardware
events exposed to the user to account for unreliable counters".

All four operations stream dense unit-stride data, so on POWER9 their
stores bypass the cache (no read-for-ownership) and the expected
traffic is simply the element counts:

========  ================  ==============  ==============
op        definition        reads (elems)   writes (elems)
========  ================  ==============  ==============
copy      c[i] = a[i]       N               N
scale     b[i] = q·c[i]     N               N
add       c[i] = a[i]+b[i]  2N              N
triad     a[i] = b[i]+q·c[i] 2N             N
========  ================  ==============  ==============
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

import numpy as np

from ..engine.analytic import CacheContext, combine, sequential_read, sequential_write
from ..engine.envconfig import resolve_segment_rows
from ..engine.stream import (
    Access,
    BatchTrace,
    StreamDecl,
    resolve_policies,
)
from ..engine.trace import KernelModel
from ..errors import ConfigurationError
from ..machine.cache import TrafficCounters
from ..machine.prefetch import SoftwarePrefetch
from ..rng import substream
from ..units import DOUBLE

#: op name -> (number of source arrays, flops per element)
_OPS = {
    "copy": (1, 0.0),
    "scale": (1, 1.0),
    "add": (2, 1.0),
    "triad": (2, 2.0),
}


@dataclasses.dataclass
class StreamKernel(KernelModel):
    """One STREAM operation over N doubles per array."""

    op: str
    n: int
    q: float = 3.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigurationError(
                f"unknown STREAM op {self.op!r}; choose from {sorted(_OPS)}")
        if self.n <= 0:
            raise ConfigurationError("STREAM needs n >= 1")
        self.name = f"stream-{self.op}-{self.n}"

    @property
    def n_sources(self) -> int:
        return _OPS[self.op][0]

    # ------------------------------------------------------- numerics
    def make_inputs(self):
        rng = substream(self.seed, self.name)
        return [rng.standard_normal(self.n) for _ in range(self.n_sources)]

    def compute(self) -> np.ndarray:
        srcs = self.make_inputs()
        if self.op == "copy":
            return srcs[0].copy()
        if self.op == "scale":
            return self.q * srcs[0]
        if self.op == "add":
            return srcs[0] + srcs[1]
        return srcs[0] + self.q * srcs[1]  # triad

    # -------------------------------------------------------- streams
    def _bases(self) -> List[int]:
        """Line-aligned base addresses for the source and dest arrays."""
        from .blas import _layout

        nbytes = self.n * DOUBLE
        return _layout(*([nbytes] * (self.n_sources + 1)))

    def streams(self) -> List[StreamDecl]:
        nbytes = self.n * DOUBLE
        bases = self._bases()
        decls = []
        for i in range(self.n_sources):
            decls.append(StreamDecl(f"src{i}", False, self.n, DOUBLE,
                                    DOUBLE, nbytes, base=bases[i]))
        decls.append(StreamDecl("dst", True, self.n, DOUBLE, DOUBLE,
                                nbytes, base=bases[-1], interarrival=1))
        return decls

    # -------------------------------------------------------- traffic
    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        nbytes = self.n * DOUBLE
        parts = [sequential_read(nbytes, ctx)
                 for _ in range(self.n_sources)]
        parts.append(sequential_write(nbytes, ctx, policies["dst"]))
        return combine(*parts)

    def exact_accesses(self) -> Iterator[Access]:
        bases = self._bases()
        for i in range(self.n):
            for idx in range(self.n_sources):
                yield Access(f"src{idx}", bases[idx] + i * DOUBLE,
                             DOUBLE, False)
            yield Access("dst", bases[-1] + i * DOUBLE, DOUBLE, True)

    def _range_trace(self, i0: int, i1: int) -> BatchTrace:
        bases = self._bases()
        idx = np.arange(i0, i1, dtype=np.int64) * DOUBLE
        sites = [(f"src{i}", bases[i] + idx, DOUBLE, False)
                 for i in range(self.n_sources)]
        sites.append(("dst", bases[-1] + idx, DOUBLE, True))
        return BatchTrace.interleaved(sites)

    def exact_trace(self) -> BatchTrace:
        return self._range_trace(0, self.n)

    def segments(self, target_rows: Optional[int] = None):
        """Bounded emitter over whole loop iterations."""
        target_rows = resolve_segment_rows(target_rows)
        per_iter = self.n_sources + 1
        step = max(1, target_rows // per_iter)
        for i0 in range(0, self.n, step):
            yield self._range_trace(i0, min(i0 + step, self.n))

    # ----------------------------------------------------------- work
    def flops(self) -> float:
        return _OPS[self.op][1] * self.n

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Known traffic: element counts × 8 B, stores bypassing."""
        nbytes = self.n * DOUBLE
        return TrafficCounters(read_bytes=self.n_sources * nbytes,
                               write_bytes=nbytes)


def stream_suite(n: int, seed: Optional[int] = None) -> List[StreamKernel]:
    """All four STREAM kernels at size ``n``."""
    return [StreamKernel(op, n, seed=seed) for op in sorted(_OPS)]
