"""Compiler-flag model: what ``-fprefetch-loop-arrays`` does to a kernel.

The paper toggles one GCC flag to flip a micro-architectural behaviour:
"We can prevent cache-avoidant writes to memory by compiling the
application using the -fprefetch-loop-arrays flag with GCC", which
inserts ``dcbt`` (load prefetch) and ``dcbtst`` (store-target prefetch
— "causes a single-line prefetch into the L3 cache") instructions into
the loop body (paper Listing 6).

:class:`CompilerConfig` parses a flag string into the
:class:`~repro.machine.prefetch.SoftwarePrefetch` effect consumed by
the traffic laws, and can render the schematic POWER9 assembly of a
copy-loop body so tests/examples can show *why* the flag changes the
traffic.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..machine.prefetch import SoftwarePrefetch

#: Flag sets used throughout the paper's experiments.
NO_EXTRA_FLAGS = ""
PREFETCH_LOOP_ARRAYS = "-fprefetch-loop-arrays"


@dataclasses.dataclass(frozen=True)
class CompilerConfig:
    """A GCC invocation's optimisation-relevant state."""

    flags: str = NO_EXTRA_FLAGS

    @property
    def prefetch(self) -> SoftwarePrefetch:
        return SoftwarePrefetch.from_compiler_flags(self.flags)

    @property
    def prefetches_store_targets(self) -> bool:
        return self.prefetch.dcbtst

    def loop_body_assembly(self, load_array: str = "in",
                           store_array: str = "tmp") -> List[str]:
        """Schematic POWER9 assembly of a copy-loop body (Listing 6).

        With the flag enabled the body gains the two prefetch
        instructions; ``dcbtst`` is the one that forces the store
        target to be read into L3.
        """
        body = []
        if self.prefetch.dcbt:
            body.append(f"dcbt    0,r9        # prefetch {load_array} (loads)")
        if self.prefetch.dcbtst:
            body.append(f"dcbtst  0,r10       # prefetch {store_array} (stores)")
        body.extend([
            f"lxv     vs0,0(r9)   # load 16B from {load_array}",
            f"stxv    vs0,0(r10)  # store 16B to {store_array}",
            "addi    r9,r9,16",
            "addi    r10,r10,16",
            "bdnz    .loop",
        ])
        return body


def compile_kernel(flags: str = NO_EXTRA_FLAGS) -> CompilerConfig:
    """'Compile' a kernel: returns the configuration whose ``prefetch``
    the executor and traffic laws consume."""
    return CompilerConfig(flags=flags)
