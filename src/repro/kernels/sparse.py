"""Sparse kernels: CSR SpMV and a conjugate-gradient solver.

Sparse matrix–vector products are the memory-traffic counterpoint to
the paper's dense kernels: the row pointers, values and column indices
stream sequentially, but the source-vector gather is *irregular* — the
access pattern the stream prefetcher cannot help and whose traffic
depends entirely on whether the vector stays cached. The traffic law
captures both regimes and is validated against the exact simulator.

The CG solver exercises SpMV the way applications do (one product per
iteration plus AXPY/DOT vector work) and is verified against direct
solves on 3-D Laplacian systems.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..engine.analytic import (
    CacheContext,
    cache_fit_fraction,
    combine,
    sequential_read,
    sequential_write,
)
from ..engine.envconfig import resolve_segment_rows
from ..engine.stream import (
    Access,
    BatchTrace,
    StreamDecl,
    resolve_policies,
)
from ..engine.trace import KernelModel
from ..errors import ConfigurationError
from ..machine.cache import TrafficCounters
from ..machine.prefetch import SoftwarePrefetch
from ..rng import substream
from ..units import DOUBLE, round_up

#: Column indices stored as 4-byte integers (CSR convention).
INDEX_BYTES = 4


@dataclasses.dataclass
class CSRMatrix:
    """Compressed sparse row matrix."""

    n_rows: int
    n_cols: int
    indptr: np.ndarray   # int64[n_rows + 1]
    indices: np.ndarray  # int32[nnz]
    values: np.ndarray   # float64[nnz]

    def __post_init__(self) -> None:
        if len(self.indptr) != self.n_rows + 1:
            raise ConfigurationError("indptr length must be n_rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.values):
            raise ConfigurationError("indptr endpoints inconsistent")
        if len(self.indices) != len(self.values):
            raise ConfigurationError("indices/values length mismatch")

    @property
    def nnz(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A·x (vectorised CSR product)."""
        if len(x) != self.n_cols:
            raise ConfigurationError(
                f"x has {len(x)} entries for {self.n_cols} columns")
        products = self.values * x[self.indices]
        if len(products) == 0:
            return np.zeros(self.n_rows)
        # Sum each row's product segment; reduceat cannot take start
        # offsets equal to len(products) (trailing empty rows), so clip
        # and zero the empty rows afterwards.
        starts = self.indptr[:-1]
        empty = starts == self.indptr[1:]
        safe = np.minimum(starts, len(products) - 1)
        y = np.add.reduceat(products, safe, dtype=np.float64)
        y[empty] = 0.0
        return y

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols))
        for row in range(self.n_rows):
            lo, hi = self.indptr[row], self.indptr[row + 1]
            out[row, self.indices[lo:hi]] += self.values[lo:hi]
        return out


def laplacian_3d(nx: int, ny: int, nz: int) -> CSRMatrix:
    """7-point finite-difference Laplacian on an nx×ny×nz grid (SPD)."""
    if min(nx, ny, nz) < 1:
        raise ConfigurationError("grid dimensions must be >= 1")
    n = nx * ny * nz
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []

    def idx(i, j, k):
        return (i * ny + j) * nz + k

    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                me = idx(i, j, k)
                rows.append(me)
                cols.append(me)
                vals.append(6.0)
                for di, dj, dk in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                   (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                    ii, jj, kk = i + di, j + dj, k + dk
                    if 0 <= ii < nx and 0 <= jj < ny and 0 <= kk < nz:
                        rows.append(me)
                        cols.append(idx(ii, jj, kk))
                        vals.append(-1.0)
    order = np.lexsort((cols, rows))
    rows_a = np.asarray(rows)[order]
    cols_a = np.asarray(cols, dtype=np.int32)[order]
    vals_a = np.asarray(vals)[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows_a + 1, 1)
    indptr = np.cumsum(indptr)
    return CSRMatrix(n_rows=n, n_cols=n, indptr=indptr,
                     indices=cols_a, values=vals_a)


def random_csr(n: int, nnz_per_row: int, seed: Optional[int] = None,
               spd_boost: float = 0.0) -> CSRMatrix:
    """Random CSR matrix with a fixed number of entries per row."""
    if nnz_per_row > n:
        raise ConfigurationError("nnz_per_row cannot exceed n")
    rng = substream(seed, f"csr-{n}-{nnz_per_row}")
    indices = np.empty(n * nnz_per_row, dtype=np.int32)
    values = rng.standard_normal(n * nnz_per_row)
    for row in range(n):
        cols = rng.choice(n, size=nnz_per_row, replace=False)
        cols.sort()
        indices[row * nnz_per_row:(row + 1) * nnz_per_row] = cols
    indptr = np.arange(0, (n + 1) * nnz_per_row, nnz_per_row,
                       dtype=np.int64)
    mat = CSRMatrix(n_rows=n, n_cols=n, indptr=indptr, indices=indices,
                    values=values)
    if spd_boost:
        # Make it diagonally dominant: add spd_boost to the diagonal.
        dense = mat.to_dense()
        dense = 0.5 * (dense + dense.T) + spd_boost * np.eye(n)
        return dense_to_csr(dense)
    return mat


def dense_to_csr(dense: np.ndarray, tol: float = 0.0) -> CSRMatrix:
    n_rows, n_cols = dense.shape
    indptr = [0]
    indices: List[int] = []
    values: List[float] = []
    for row in range(n_rows):
        nz = np.nonzero(np.abs(dense[row]) > tol)[0]
        indices.extend(int(c) for c in nz)
        values.extend(float(v) for v in dense[row, nz])
        indptr.append(len(values))
    return CSRMatrix(
        n_rows=n_rows, n_cols=n_cols,
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int32),
        values=np.asarray(values),
    )


# ======================================================================
# SpMV as a kernel model
# ======================================================================
class SpmvKernel(KernelModel):
    """y = A·x for a CSR matrix: the irregular-gather traffic law."""

    def __init__(self, matrix: CSRMatrix, seed: Optional[int] = None):
        self.matrix = matrix
        self.seed = seed
        self.name = f"spmv-{matrix.n_rows}x{matrix.n_cols}-nnz{matrix.nnz}"

    @classmethod
    def from_shape(cls, n: int, nnz_per_row: int,
                   seed: Optional[int] = None) -> "SpmvKernel":
        """Kernel over a *shape-only* CSR matrix (zero pattern/values).

        The traffic law depends only on the sparsity shape, so large
        problem sizes can be analysed without materialising gigabytes
        of matrix data. ``compute``/``exact_accesses`` still work (they
        see an all-zeros matrix with uniform structure).
        """
        if nnz_per_row > n:
            raise ConfigurationError("nnz_per_row cannot exceed n")
        nnz = n * nnz_per_row
        matrix = CSRMatrix(
            n_rows=n, n_cols=n,
            indptr=np.arange(0, (n + 1) * nnz_per_row, nnz_per_row,
                             dtype=np.int64),
            indices=np.zeros(nnz, dtype=np.int32),
            values=np.zeros(nnz),
        )
        return cls(matrix, seed=seed)

    # ------------------------------------------------------- numerics
    def make_input(self) -> np.ndarray:
        rng = substream(self.seed, self.name)
        return rng.standard_normal(self.matrix.n_cols)

    def compute(self, x: Optional[np.ndarray] = None) -> np.ndarray:
        return self.matrix.matvec(self.make_input() if x is None else x)

    # -------------------------------------------------------- streams
    def _sizes(self) -> Tuple[int, int, int, int]:
        m = self.matrix
        return (m.nnz * DOUBLE,            # values
                m.nnz * INDEX_BYTES,       # column indices
                m.n_cols * DOUBLE,         # x
                m.n_rows * DOUBLE)         # y

    def streams(self) -> List[StreamDecl]:
        vals, idxs, xb, yb = self._sizes()
        m = self.matrix
        nnz_per_row = max(1, m.nnz // max(1, m.n_rows))
        base = 0
        decls = []
        for name, nbytes, elem, n_acc, stride in (
                ("values", vals, DOUBLE, m.nnz, DOUBLE),
                ("colidx", idxs, INDEX_BYTES, m.nnz, INDEX_BYTES),
                # x: irregular gather — declare the average hop as the
                # stride so the detector sees a non-constant stream.
                ("x", xb, DOUBLE, m.nnz,
                 max(DOUBLE, xb // max(1, nnz_per_row))),
        ):
            decls.append(StreamDecl(name, False, n_acc, elem, stride,
                                    nbytes, base=base))
            base = round_up(base + nbytes + 256, 128)
        decls.append(StreamDecl("y", True, m.n_rows, DOUBLE, DOUBLE, yb,
                                base=base,
                                interarrival=3 * nnz_per_row))
        return decls

    # -------------------------------------------------------- traffic
    def traffic(self, ctx: CacheContext,
                prefetch: SoftwarePrefetch = SoftwarePrefetch()
                ) -> TrafficCounters:
        policies = resolve_policies(self.streams(), prefetch)
        vals, idxs, xb, yb = self._sizes()
        m = self.matrix
        parts = [sequential_read(vals, ctx), sequential_read(idxs, ctx)]
        # x gather: cached -> one cold read of x; uncached -> one
        # granule per non-zero (the irregular-gather worst case).
        fit = cache_fit_fraction(xb, ctx.capacity_bytes)
        cold_x = round_up(xb, ctx.granule)
        thrash_x = m.nnz * ctx.granule
        parts.append(TrafficCounters(read_bytes=int(
            round(fit * cold_x + (1 - fit) * thrash_x))))
        parts.append(sequential_write(yb, ctx, policies["y"]))
        return combine(*parts)

    def exact_accesses(self) -> Iterator[Access]:
        decls = {d.name: d for d in self.streams()}
        m = self.matrix
        for row in range(m.n_rows):
            lo, hi = int(m.indptr[row]), int(m.indptr[row + 1])
            for p in range(lo, hi):
                yield Access("values", decls["values"].base + p * DOUBLE,
                             DOUBLE, False)
                yield Access("colidx",
                             decls["colidx"].base + p * INDEX_BYTES,
                             INDEX_BYTES, False)
                yield Access("x", decls["x"].base
                             + int(m.indices[p]) * DOUBLE, DOUBLE, False)
            yield Access("y", decls["y"].base + row * DOUBLE, DOUBLE,
                         True)

    def _row_range_trace(self, r0: int, r1: int) -> BatchTrace:
        """Columns of matrix rows ``r0 <= row < r1``."""
        decls = {d.name: d for d in self.streams()}
        m = self.matrix
        lo, hi = int(m.indptr[r0]), int(m.indptr[r1])
        p = np.arange(lo, hi, dtype=np.int64)
        inner = BatchTrace.interleaved([
            ("values", decls["values"].base + p * DOUBLE, DOUBLE, False),
            ("colidx", decls["colidx"].base + p * INDEX_BYTES,
             INDEX_BYTES, False),
            ("x", decls["x"].base
             + m.indices[lo:hi].astype(np.int64) * DOUBLE, DOUBLE,
             False),
        ])
        # Insert the per-row y store after each row's nonzeros (three
        # interleaved accesses per nonzero); empty rows stack their
        # stores at the same insertion point in row order.
        at = (np.asarray(m.indptr[r0 + 1:r1 + 1], dtype=np.int64)
              - lo) * 3
        y_addr = decls["y"].base \
            + np.arange(r0, r1, dtype=np.int64) * DOUBLE
        return BatchTrace(
            streams=inner.streams + ("y",),
            stream_id=np.insert(inner.stream_id, at, np.int16(3)),
            addr=np.insert(inner.addr, at, y_addr),
            size=np.insert(inner.size, at, np.int32(DOUBLE)),
            is_write=np.insert(inner.is_write, at, True),
        )

    def exact_trace(self) -> BatchTrace:
        return self._row_range_trace(0, self.matrix.n_rows)

    def segments(self, target_rows: Optional[int] = None):
        """Bounded emitter over whole matrix rows (3·nnz+1 trace rows
        per matrix row, so segment sizes track the sparsity shape)."""
        target_rows = resolve_segment_rows(target_rows)
        m = self.matrix
        # Trace rows before matrix row r: 3·indptr[r] + r.
        cum = 3 * np.asarray(m.indptr, dtype=np.int64) \
            + np.arange(m.n_rows + 1, dtype=np.int64)
        r0 = 0
        while r0 < m.n_rows:
            r1 = int(np.searchsorted(cum, cum[r0] + target_rows,
                                     side="right")) - 1
            r1 = max(r0 + 1, min(r1, m.n_rows))
            yield self._row_range_trace(r0, r1)
            r0 = r1

    # ----------------------------------------------------------- work
    def flops(self) -> float:
        return 2.0 * self.matrix.nnz

    def expected_traffic(self, granule: int = 64) -> TrafficCounters:
        """Streaming expectation with a cached source vector."""
        vals, idxs, xb, yb = self._sizes()
        return TrafficCounters(read_bytes=vals + idxs + xb + yb,
                               write_bytes=yb)


# ======================================================================
# Conjugate gradient
# ======================================================================
@dataclasses.dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    residual_norms: List[float]
    converged: bool


def conjugate_gradient(matrix: CSRMatrix, b: np.ndarray,
                       tol: float = 1e-8, max_iter: Optional[int] = None
                       ) -> CGResult:
    """Solve A·x = b for SPD A (standard unpreconditioned CG)."""
    if matrix.n_rows != matrix.n_cols:
        raise ConfigurationError("CG needs a square matrix")
    if len(b) != matrix.n_rows:
        raise ConfigurationError("right-hand side has the wrong length")
    n = matrix.n_rows
    max_iter = 10 * n if max_iter is None else max_iter
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.sqrt(rs))]
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        ap = matrix.matvec(p)
        denom = float(p @ ap)
        if denom <= 0:
            raise ConfigurationError(
                "matrix is not positive definite (p^T A p <= 0)")
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        history.append(float(np.sqrt(rs_new)))
        if np.sqrt(rs_new) <= tol * b_norm:
            converged = True
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return CGResult(x=x, iterations=iterations,
                    residual_norms=history, converged=converged)
