"""Baseline comparison: the regression gate behind ``bench --compare``.

A *baseline* is a frozen benchmark report (see
:mod:`repro.bench.report`), optionally carrying a ``"thresholds"``
object that tunes the gate. Comparison rules:

* a benchmark present in the baseline must be present and ``ok`` in
  the current report (missing/erroring/timing out is a regression);
* wall time may grow at most ``wall_rel`` (default +25%) over the
  baseline, after rescaling by the two machines' calibration probe
  ratio (so a slower CI runner is not punished for being slower);
* metrics whose name marks them as accuracy deviations (suffixes
  ``_dev``/``_err``/``_gap``/``_excess``) are one-sided: they may
  improve freely but may not *worsen* beyond
  ``metric_abs + metric_rel * |baseline|``;
* metrics prefixed ``info_`` are machine-dependent observability
  readings (worker utilization, queue depths, ...): recorded in the
  report, never gated, and allowed to appear or disappear freely;
* every other metric is a determinism check: it must stay within the
  same tolerance of the frozen value in either direction;
* peak RSS is reported but gates only when ``rss_rel`` is set.

New benchmarks (present now, absent from the baseline) are reported
as notes, never failures — growth must not be penalised.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

#: Metric-name suffixes treated as "lower is better" deviations.
DEVIATION_SUFFIXES = ("_dev", "_err", "_gap", "_excess")

#: Metric-name prefix for machine-dependent observability readings
#: (utilization, queue depths): reported, never gated.
INFO_PREFIX = "info_"

#: Ignore wall regressions below this many seconds of slack — a
#: microbenchmark doubling from 20 ms to 40 ms is scheduler noise,
#: not a perf regression.
WALL_ABS_SLACK_S = 0.25

#: Calibration ratio is clamped to this band; a probe more than 4x
#: off suggests a broken probe, not a 4x machine.
_CAL_CLAMP = (0.25, 4.0)


@dataclasses.dataclass(frozen=True)
class Thresholds:
    """Gate tunables; may be embedded in the baseline file."""

    wall_rel: float = 0.25
    metric_rel: float = 0.10
    metric_abs: float = 0.01
    rss_rel: Optional[float] = None
    use_calibration: bool = True

    @classmethod
    def from_dict(cls, data: Dict) -> "Thresholds":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Regression:
    """One gate violation."""

    benchmark: str
    kind: str  # "missing" | "status" | "wall" | "metric" | "rss"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.benchmark}: {self.detail}"


@dataclasses.dataclass
class ComparisonResult:
    regressions: List[Regression]
    notes: List[str]
    wall_scale: float

    @property
    def ok(self) -> bool:
        return not self.regressions


def resolve_thresholds(
    baseline: Dict,
    overrides: Optional[Dict] = None,
) -> Thresholds:
    """Baseline-embedded thresholds, patched by CLI overrides."""
    data = dict(baseline.get("thresholds") or {})
    for key, value in (overrides or {}).items():
        if value is not None:
            data[key] = value
    return Thresholds.from_dict(data)


def _wall_scale(current: Dict, baseline: Dict) -> float:
    cur = current.get("environment", {}).get("calibration_s")
    base = baseline.get("environment", {}).get("calibration_s")
    if not cur or not base:
        return 1.0
    lo, hi = _CAL_CLAMP
    return min(hi, max(lo, float(cur) / float(base)))


def is_deviation_metric(name: str) -> bool:
    return name.endswith(DEVIATION_SUFFIXES)


def is_info_metric(name: str) -> bool:
    return name.startswith(INFO_PREFIX)


def compare_reports(
    current: Dict,
    baseline: Dict,
    thresholds: Optional[Thresholds] = None,
) -> ComparisonResult:
    """Gate ``current`` against ``baseline``; collect regressions."""
    if thresholds is None:
        thresholds = resolve_thresholds(baseline)
    scale = (
        _wall_scale(current, baseline)
        if thresholds.use_calibration
        else 1.0
    )
    cur_by_name = {r["name"]: r for r in current["benchmarks"]}
    base_by_name = {r["name"]: r for r in baseline["benchmarks"]}
    regressions: List[Regression] = []
    notes: List[str] = []
    for name in sorted(base_by_name):
        base = base_by_name[name]
        cur = cur_by_name.get(name)
        if cur is None:
            regressions.append(
                Regression(
                    name,
                    "missing",
                    "present in baseline but not in this run",
                )
            )
            continue
        if base["status"] != "ok":
            notes.append(
                f"{name}: baseline status is {base['status']!r}; "
                f"comparison skipped"
            )
            continue
        if cur["status"] != "ok":
            regressions.append(
                Regression(
                    name,
                    "status",
                    f"was ok in baseline, now {cur['status']!r}"
                    + _error_hint(cur),
                )
            )
            continue
        regressions.extend(_compare_wall(name, cur, base, thresholds, scale))
        regressions.extend(_compare_rss(name, cur, base, thresholds))
        regressions.extend(_compare_metrics(name, cur, base, thresholds))
    for name in sorted(set(cur_by_name) - set(base_by_name)):
        notes.append(
            f"{name}: new benchmark, not in baseline "
            f"(re-freeze to start gating it)"
        )
    return ComparisonResult(regressions, notes, scale)


def _error_hint(record: Dict) -> str:
    error = record.get("error")
    if not error:
        return ""
    last_line = str(error).strip().splitlines()[-1]
    return f" ({last_line})"


def _compare_wall(name, cur, base, thresholds, scale):
    base_wall = base.get("wall_s")
    cur_wall = cur.get("wall_s")
    if base_wall is None or cur_wall is None:
        return []
    allowed = (
        base_wall * scale * (1.0 + thresholds.wall_rel) + WALL_ABS_SLACK_S
    )
    if cur_wall <= allowed:
        return []
    return [
        Regression(
            name,
            "wall",
            f"wall time {cur_wall:.3f}s exceeds "
            f"{allowed:.3f}s allowed "
            f"(baseline {base_wall:.3f}s, scale x{scale:.2f}, "
            f"threshold +{thresholds.wall_rel:.0%})",
        )
    ]


def _compare_rss(name, cur, base, thresholds):
    if thresholds.rss_rel is None:
        return []
    base_rss = base.get("peak_rss_kb")
    cur_rss = cur.get("peak_rss_kb")
    if not base_rss or not cur_rss:
        return []
    allowed = base_rss * (1.0 + thresholds.rss_rel)
    if cur_rss <= allowed:
        return []
    return [
        Regression(
            name,
            "rss",
            f"peak RSS {cur_rss} kB exceeds {allowed:.0f} kB allowed "
            f"(baseline {base_rss} kB)",
        )
    ]


def _compare_metrics(name, cur, base, thresholds):
    regressions = []
    cur_metrics = cur.get("metrics") or {}
    for key, base_val in sorted((base.get("metrics") or {}).items()):
        if is_info_metric(key):
            continue
        if key not in cur_metrics:
            regressions.append(
                Regression(
                    name,
                    "metric",
                    f"metric {key!r} disappeared from the report",
                )
            )
            continue
        cur_val = cur_metrics[key]
        tol = thresholds.metric_abs + thresholds.metric_rel * abs(base_val)
        if is_deviation_metric(key):
            if cur_val > base_val + tol:
                regressions.append(
                    Regression(
                        name,
                        "metric",
                        f"deviation {key} worsened: "
                        f"{base_val:.6g} -> {cur_val:.6g} "
                        f"(tolerance {tol:.6g})",
                    )
                )
        elif abs(cur_val - base_val) > tol:
            regressions.append(
                Regression(
                    name,
                    "metric",
                    f"metric {key} drifted: "
                    f"{base_val:.6g} -> {cur_val:.6g} "
                    f"(tolerance +/-{tol:.6g})",
                )
            )
    return regressions


def format_comparison(result: ComparisonResult) -> str:
    lines: List[str] = []
    if result.wall_scale != 1.0:
        lines.append(
            f"wall-time thresholds rescaled x{result.wall_scale:.2f} "
            f"by machine calibration"
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    if result.ok:
        lines.append("baseline comparison: OK (no regressions)")
    else:
        n = len(result.regressions)
        lines.append(f"baseline comparison: {n} regression(s)")
        for regression in result.regressions:
            lines.append(f"  {regression}")
    return "\n".join(lines)
