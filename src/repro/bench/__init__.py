"""Parallel benchmark orchestration (`repro.bench`).

The paper's argument is quantitative, so the reproduction's
benchmarks must be runnable as one measured, machine-checkable unit
rather than 21 hand-invoked scripts. This subsystem provides:

* a registry (:mod:`repro.bench.registry`): benchmark scripts under
  ``benchmarks/bench_*.py`` register a callable with the
  :func:`benchmark` decorator and return a flat dict of numeric
  metrics (the *result-dict convention*);
* a runner (:mod:`repro.bench.runner`): executes registered
  benchmarks in parallel worker processes with per-benchmark
  timeouts and crash isolation — a hung or crashed figure script is
  reported, never fatal;
* a reporter (:mod:`repro.bench.report`): emits one
  ``BENCH_<git-sha>.json`` with per-benchmark wall time, peak RSS,
  accuracy metrics and environment metadata;
* a comparator (:mod:`repro.bench.compare`): diffs a report against
  a frozen baseline (``benchmarks/baseline.json``) and fails on wall
  time or accuracy-deviation regressions beyond thresholds.

``python -m repro.cli bench`` is the command-line entry point.
"""

from .compare import (
    ComparisonResult,
    Regression,
    Thresholds,
    compare_reports,
    format_comparison,
)
from .registry import (
    BenchContext,
    BenchmarkSpec,
    all_benchmarks,
    benchmark,
    discover,
    get_benchmark,
)
from .report import (
    SCHEMA,
    build_report,
    environment_metadata,
    load_report,
    report_filename,
    validate_report,
    write_report,
)
from .runner import RunnerConfig, run_benchmarks

__all__ = [
    "BenchContext",
    "BenchmarkSpec",
    "ComparisonResult",
    "Regression",
    "RunnerConfig",
    "SCHEMA",
    "Thresholds",
    "all_benchmarks",
    "benchmark",
    "build_report",
    "compare_reports",
    "discover",
    "environment_metadata",
    "format_comparison",
    "get_benchmark",
    "load_report",
    "report_filename",
    "run_benchmarks",
    "validate_report",
    "write_report",
]
