"""Parallel benchmark execution with timeouts and crash isolation.

Benchmarks run in worker processes from a
:class:`~concurrent.futures.ProcessPoolExecutor` (spawn start
method, one task per worker where the interpreter supports it, so a
worker's ``ru_maxrss`` high-water mark is that benchmark's peak
RSS). The orchestrating loop enforces a *per-benchmark* deadline
measured from the moment the worker actually picks the benchmark up
(workers stamp a start time into a shared dict), so queueing delay
never counts against a benchmark.

Failure containment:

* an exception inside a benchmark is caught in the worker and comes
  back as a ``status="error"`` record;
* a benchmark overrunning its deadline is recorded as
  ``status="timeout"`` and its hung worker is killed on the spot, so
  a stuck benchmark can never pin a worker slot for the rest of the
  run (hung workers filling the pool would otherwise starve queued
  benchmarks forever). Killing a worker breaks the whole
  ``ProcessPoolExecutor``, so the runner rebuilds the pool and
  resubmits every other in-flight or queued benchmark — the
  innocents restart with a fresh deadline rather than being blamed
  for the teardown;
* a worker that dies outright (``os._exit``, segfault, OOM kill)
  breaks the pool; the runner marks the benchmarks that were running
  at that moment ``status="crashed"``, rebuilds the pool, and
  resubmits the benchmarks that had not started yet.

Nothing a benchmark does can abort the run as a whole.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from .registry import (
    DEFAULT_SEED,
    BenchContext,
    BenchmarkSpec,
    get_benchmark,
    load_script,
)

#: Poll interval of the orchestration loop (seconds).
_POLL_SECONDS = 0.1


@dataclasses.dataclass(frozen=True)
class RunnerConfig:
    """Knobs for one parallel benchmark run."""

    max_workers: Optional[int] = None
    timeout_s: float = 120.0
    seed: int = DEFAULT_SEED
    #: When set, each worker runs its benchmark under :mod:`cProfile`
    #: and dumps ``<name>.prof`` into this directory (loadable with
    #: ``python -m pstats`` or snakeviz).
    profile_dir: Optional[str] = None

    def resolved_workers(self, n_benchmarks: int) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        cores = os.cpu_count() or 2
        return max(1, min(8, cores, n_benchmarks))


def _worker_run(source, name, seed, started, profile_dir=None):
    """Worker-side entry: import the script, run one benchmark.

    Returns a complete result record; ordinary benchmark failures are
    folded into the record rather than raised, so only a dying worker
    process surfaces as an executor error. With ``profile_dir`` the
    benchmark body runs under :mod:`cProfile` and the stats are
    dumped to ``<profile_dir>/<name>.prof`` (the profiler's overhead
    is inside the recorded ``wall_s``, so profiled wall times must
    not be compared against unprofiled baselines).
    """
    started[name] = (os.getpid(), time.monotonic())
    record = {
        "name": name,
        "tags": [],
        "status": "error",
        "wall_s": None,
        "peak_rss_kb": None,
        "metrics": {},
        "profile": None,
        "error": None,
    }
    try:
        load_script(Path(source))
        spec = get_benchmark(name)
        record["tags"] = list(spec.tags)
        cpu0 = _cpu_seconds()
        begun = time.perf_counter()
        if profile_dir is not None:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                metrics = spec.run(BenchContext(seed))
            finally:
                profiler.disable()
                prof_path = Path(profile_dir) / f"{name}.prof"
                prof_path.parent.mkdir(parents=True, exist_ok=True)
                profiler.dump_stats(str(prof_path))
                record["profile"] = str(prof_path)
        else:
            metrics = spec.run(BenchContext(seed))
        wall = time.perf_counter() - begun
        cpu1 = _cpu_seconds()
        record["wall_s"] = wall
        if cpu0 is not None and cpu1 is not None and wall > 0:
            # CPU seconds burned per wall second, counting reaped
            # children (a pipelined benchmark's workers do their CPU
            # work in child processes). > 1.0 means real parallelism;
            # informational only, never gated.
            metrics = dict(metrics)
            metrics["info_cpu_util"] = round((cpu1 - cpu0) / wall, 4)
        record["metrics"] = metrics
        record["status"] = "ok"
    except Exception:
        record["error"] = traceback.format_exc(limit=20)
    record["peak_rss_kb"] = _peak_rss_kb()
    return record


def _cpu_seconds() -> Optional[float]:
    """User+system CPU seconds of this process and reaped children."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    own = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    return (own.ru_utime + own.ru_stime
            + kids.ru_utime + kids.ru_stime)


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes there
        rss //= 1024
    return int(rss)


def _failure_record(spec: BenchmarkSpec, status: str, error: str):
    return {
        "name": spec.name,
        "tags": list(spec.tags),
        "status": status,
        "wall_s": None,
        "peak_rss_kb": None,
        "metrics": {},
        "error": error,
    }


def _make_pool(ctx, workers: int) -> ProcessPoolExecutor:
    kwargs = {"max_workers": workers, "mp_context": ctx}
    if sys.version_info >= (3, 11):
        # Fresh interpreter per benchmark: per-benchmark peak RSS and
        # no state bleed between figure scripts.
        kwargs["max_tasks_per_child"] = 1
    return ProcessPoolExecutor(**kwargs)


def _force_shutdown(pool: ProcessPoolExecutor) -> None:
    """Shut down without waiting; reap stragglers (hung workers)."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    procs_map = getattr(pool, "_processes", None)
    procs = list(procs_map.values()) if isinstance(procs_map, dict) else []
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:  # pragma: no cover - defensive
            pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
        except Exception:  # pragma: no cover - defensive
            pass


def run_benchmarks(
    specs: List[BenchmarkSpec],
    config: Optional[RunnerConfig] = None,
    progress: Optional[Callable[[dict], None]] = None,
) -> List[dict]:
    """Run every spec in parallel workers; return result records.

    ``progress`` (if given) is called with each record as it lands.
    The returned list is sorted by benchmark name and contains
    exactly one record per input spec, whatever happened to it.
    """
    config = config or RunnerConfig()
    if not specs:
        raise ConfigurationError("no benchmarks to run")
    for spec in specs:
        if not spec.source:
            raise ConfigurationError(
                f"benchmark {spec.name!r} has no source file; "
                f"parallel workers re-import benchmarks from disk"
            )
    workers = config.resolved_workers(len(specs))
    ctx = multiprocessing.get_context("spawn")
    manager = ctx.Manager()
    records: Dict[str, dict] = {}

    def emit(record: dict) -> None:
        records[record["name"]] = record
        if progress is not None:
            progress(record)

    try:
        started = manager.dict()
        pool = _make_pool(ctx, workers)
        rebuilds = 0
        killed_pids: set = set()
        pending: Dict[object, BenchmarkSpec] = {}

        def submit(spec: BenchmarkSpec) -> None:
            future = pool.submit(
                _worker_run,
                str(spec.source),
                spec.name,
                config.seed,
                started,
                config.profile_dir,
            )
            pending[future] = spec

        for spec in specs:
            submit(spec)
        while pending:
            done, _ = futures_wait(
                set(pending),
                timeout=_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            stranded: List[BenchmarkSpec] = []
            for future in done:
                spec = pending.pop(future)
                try:
                    emit(future.result())
                except BrokenProcessPool:
                    broken = True
                    stranded.append(spec)
                except Exception as exc:
                    emit(
                        _failure_record(
                            spec,
                            "error",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
            if broken:
                stranded.extend(pending.values())
                if killed_pids:
                    # We broke the pool ourselves terminating a hung
                    # worker; the other benchmarks it stranded are
                    # innocent — restart them with fresh deadlines.
                    survivors = list(stranded)
                    for spec in survivors:
                        started.pop(spec.name, None)
                else:
                    rebuilds += 1
                    survivors = _split_crash_victims(stranded, started, emit)
                killed_pids.clear()
                pending.clear()
                _force_shutdown(pool)
                if rebuilds > len(specs) + 1:
                    for spec in survivors:
                        emit(
                            _failure_record(
                                spec,
                                "crashed",
                                "worker pool kept breaking",
                            )
                        )
                    break
                pool = _make_pool(ctx, workers)
                for spec in survivors:
                    submit(spec)
                continue
            expired_pids = _expire_deadlines(
                pending, started, config.timeout_s, emit
            )
            for pid in expired_pids:
                killed_pids.add(pid)
                _terminate_worker(pool, pid)
        _force_shutdown(pool)
    finally:
        manager.shutdown()
    ordered = sorted(records.values(), key=lambda r: r["name"])
    return ordered


def _crash_record(spec: BenchmarkSpec) -> dict:
    return _failure_record(
        spec,
        "crashed",
        "worker process died (crash or kill) while running this "
        "benchmark (or a pool-mate torn down with it)",
    )


def _split_crash_victims(stranded, started, emit):
    """The pool broke on its own: blame the in-flight, keep the rest.

    Every stranded benchmark that had stamped a start time was running
    in some worker when the pool died (the executor tears all workers
    down); each is reported as crashed. Benchmarks that never reached
    a worker are returned for resubmission to a fresh pool.
    """
    survivors = []
    for spec in stranded:
        if spec.name in started:
            emit(_crash_record(spec))
        else:
            survivors.append(spec)
    return survivors


def _expire_deadlines(pending, started, timeout_s, emit) -> List[int]:
    """Abandon benchmarks running past their deadline.

    Returns the pids of the workers that were running the expired
    benchmarks; the caller kills them so a hung benchmark frees its
    worker slot instead of occupying it until the end of the run.
    """
    now = time.monotonic()
    expired_pids: List[int] = []
    for future, spec in list(pending.items()):
        if future.done():
            # Finished between the futures_wait and this poll — let
            # the next loop iteration emit the real result.
            continue
        stamp = started.get(spec.name)
        if stamp is None:
            continue
        elapsed = now - stamp[1]
        if elapsed <= timeout_s:
            continue
        del pending[future]
        future.cancel()
        expired_pids.append(stamp[0])
        emit(
            _failure_record(
                spec,
                "timeout",
                f"exceeded {timeout_s:.1f}s deadline "
                f"(ran {elapsed:.1f}s); worker killed",
            )
        )
    return expired_pids


def _terminate_worker(pool: ProcessPoolExecutor, pid: int) -> None:
    """Kill one hung worker by pid (breaks the pool; caller rebuilds)."""
    procs_map = getattr(pool, "_processes", None)
    proc = procs_map.get(pid) if isinstance(procs_map, dict) else None
    if proc is None:
        return
    try:
        proc.kill()
    except Exception:  # pragma: no cover - defensive
        try:
            proc.terminate()
        except Exception:
            pass
