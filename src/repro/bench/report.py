"""Benchmark report assembly: one ``BENCH_<git-sha>.json`` per run.

The report is the machine-readable artifact CI uploads and the
comparator consumes. Schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "git_sha": "<40 hex or 'unknown'>",
      "created_at": "<ISO-8601 UTC>",
      "environment": {python, platform, machine, cpu_count, numpy,
                      calibration_s},
      "config": {seed, timeout_s, max_workers},
      "summary": {total, ok, error, timeout, crashed, wall_s},
      "benchmarks": [
        {"name", "tags", "status", "wall_s", "peak_rss_kb",
         "metrics": {str: number}, "error"},
        ...
      ]
    }

``environment.calibration_s`` times a fixed numpy workload on the
reporting machine; the comparator uses the baseline/current ratio to
rescale wall-time thresholds, so a baseline frozen on one machine
still gates a faster or slower CI runner sensibly.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ConfigurationError

SCHEMA = "repro-bench/1"

_STATUSES = ("ok", "error", "timeout", "crashed")

_RECORD_KEYS = {
    "name",
    "tags",
    "status",
    "wall_s",
    "peak_rss_kb",
    "metrics",
    "error",
}


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def git_sha(repo_dir: Optional[Path] = None) -> str:
    """Current commit hash, or ``"unknown"`` outside a checkout."""
    cwd = str(repo_dir) if repo_dir is not None else None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    if out.returncode != 0 or not sha:
        return "unknown"
    return sha


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed numpy workload (machine speed probe).

    Deliberately small (a few hundred ms) and deterministic; the
    best-of-``repeats`` damps scheduler noise.
    """
    import numpy

    rng = numpy.random.default_rng(12345)
    a = rng.standard_normal((384, 384))
    b = rng.standard_normal((384, 384))
    best = float("inf")
    for _ in range(max(1, repeats)):
        begun = time.perf_counter()
        for _ in range(8):
            a @ b
        best = min(best, time.perf_counter() - begun)
    return best


def environment_metadata(with_calibration: bool = True) -> Dict:
    import numpy

    meta = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
    }
    if with_calibration:
        meta["calibration_s"] = round(calibrate(), 6)
    return meta


def build_report(
    records: List[dict],
    config: Optional[Dict] = None,
    sha: Optional[str] = None,
    environment: Optional[Dict] = None,
) -> Dict:
    """Assemble the schema-`repro-bench/1` report for one run."""
    records = sorted(records, key=lambda r: r["name"])
    counts = {status: 0 for status in _STATUSES}
    wall = 0.0
    for record in records:
        counts[record["status"]] = counts.get(record["status"], 0) + 1
        wall += record["wall_s"] or 0.0
    now = datetime.datetime.now(datetime.timezone.utc)
    report = {
        "schema": SCHEMA,
        "git_sha": sha if sha is not None else git_sha(),
        "created_at": now.isoformat(timespec="seconds"),
        "environment": environment or environment_metadata(),
        "config": dict(config or {}),
        "summary": {
            "total": len(records),
            "wall_s": round(wall, 3),
            **counts,
        },
        "benchmarks": records,
    }
    validate_report(report)
    return report


def report_filename(report: Dict) -> str:
    sha = report.get("git_sha") or "unknown"
    return f"BENCH_{sha[:12]}.json"


def write_report(report: Dict, out_dir=".") -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / report_filename(report)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(path) -> Dict:
    path = Path(path)
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot read benchmark report {path}: {exc}"
        ) from exc
    validate_report(report)
    return report


def validate_report(report: Dict) -> Dict:
    """Structural schema check; raises ConfigurationError on drift."""

    def fail(detail: str):
        raise ConfigurationError(f"invalid benchmark report: {detail}")

    if not isinstance(report, dict):
        fail("not an object")
    if report.get("schema") != SCHEMA:
        fail(f"schema {report.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("git_sha", "created_at"):
        if not isinstance(report.get(key), str):
            fail(f"{key} must be a string")
    for key in ("environment", "config", "summary"):
        if not isinstance(report.get(key), dict):
            fail(f"{key} must be an object")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list):
        fail("benchmarks must be a list")
    seen = set()
    for record in benchmarks:
        if not isinstance(record, dict):
            fail("benchmark record must be an object")
        missing = _RECORD_KEYS - set(record)
        if missing:
            fail(f"record missing keys {sorted(missing)}")
        name = record["name"]
        if not isinstance(name, str):
            fail("record name must be a string")
        if name in seen:
            fail(f"duplicate benchmark record {name!r}")
        seen.add(name)
        if record["status"] not in _STATUSES:
            fail(f"{name}: bad status {record['status']!r}")
        for key in ("wall_s", "peak_rss_kb"):
            value = record[key]
            if not (value is None or _is_number(value)):
                fail(f"{name}: {key} must be a number or null")
        if not isinstance(record["metrics"], dict):
            fail(f"{name}: metrics must be an object")
        for mkey, mval in record["metrics"].items():
            if not (isinstance(mkey, str) and _is_number(mval)):
                fail(f"{name}: metric {mkey!r} must map str -> number")
    summary = report["summary"]
    if summary.get("total") != len(benchmarks):
        fail("summary.total does not match benchmark count")
    return report
