"""Benchmark registry and script discovery.

A benchmark is a callable taking a :class:`BenchContext` and
returning a flat ``{str: number}`` dict of accuracy/shape metrics
(the *result-dict convention*). Scripts under
``benchmarks/bench_*.py`` register theirs with the :func:`benchmark`
decorator; :func:`discover` imports every such script so the registry
is populated, both in the orchestrating process (to learn what to
run) and inside worker processes (to run one of them).
"""

from __future__ import annotations

import hashlib
import importlib.util
import math
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError

#: Default seed benchmarks measure under (kept stable so frozen
#: baselines stay comparable across PRs).
DEFAULT_SEED = 20230613

MetricDict = Dict[str, float]


class BenchContext:
    """Per-run services handed to every benchmark callable.

    ``run_experiment`` proxies :func:`repro.experiments.run_experiment`
    with the run's seed defaulted in, and keeps each result in
    ``results`` so shape-asserting tests can inspect the full
    table/figure while the runner only ships the metric dict.
    ``log`` collects human-readable tables for surfaces that want
    them (pytest ``-s``); the parallel runner discards them.
    """

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = seed
        self.results: Dict[str, object] = {}
        self.logs: List[str] = []

    def run_experiment(self, experiment_id: str, **kwargs):
        from ..experiments import run_experiment

        kwargs.setdefault("seed", self.seed)
        result = run_experiment(experiment_id, **kwargs)
        self.results[experiment_id] = result
        return result

    def log(self, text: str) -> None:
        self.logs.append(text)


class BenchmarkSpec:
    """Registry entry: a named, tagged benchmark callable."""

    __slots__ = ("name", "tags", "func", "source")

    def __init__(
        self,
        name: str,
        tags: Tuple[str, ...],
        func: Callable[[BenchContext], MetricDict],
        source: Optional[str],
    ):
        self.name = name
        self.tags = tags
        self.func = func
        self.source = source

    def run(self, ctx: Optional[BenchContext] = None) -> MetricDict:
        """Execute the benchmark and validate its result dict."""
        metrics = self.func(ctx if ctx is not None else BenchContext())
        return validate_metrics(self.name, metrics)


def validate_metrics(name: str, metrics) -> MetricDict:
    """Enforce the result-dict convention: flat, finite, numeric."""
    if not isinstance(metrics, dict) or not metrics:
        raise ConfigurationError(
            f"benchmark {name!r} must return a non-empty dict of "
            f"metrics, got {type(metrics).__name__}"
        )
    clean: MetricDict = {}
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise ConfigurationError(
                f"benchmark {name!r}: metric keys must be strings, "
                f"got {key!r}"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"benchmark {name!r}: metric {key!r} must be a "
                f"number, got {value!r}"
            )
        if not math.isfinite(value):
            raise ConfigurationError(
                f"benchmark {name!r}: metric {key!r} is not finite "
                f"({value!r})"
            )
        clean[key] = value
    return clean


_REGISTRY: Dict[str, BenchmarkSpec] = {}


def benchmark(name: str, tags: Iterable[str] = ()):
    """Decorator registering a benchmark callable under ``name``.

    Re-registering the same name from the same source file replaces
    the entry (re-imports are normal during discovery); two different
    files claiming one name is a configuration error.
    """

    def wrap(func: Callable[[BenchContext], MetricDict]):
        module = sys.modules.get(func.__module__)
        source = getattr(module, "__file__", None)
        spec = BenchmarkSpec(name, tuple(tags), func, source)
        existing = _REGISTRY.get(name)
        if existing is not None and existing.source and source:
            if Path(existing.source).resolve() != Path(source).resolve():
                raise ConfigurationError(
                    f"benchmark {name!r} registered by both "
                    f"{existing.source} and {source}"
                )
        _REGISTRY[name] = spec
        func.benchmark_spec = spec
        return func

    return wrap


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_benchmarks() -> List[BenchmarkSpec]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def clear_registry() -> None:
    """Forget every registration (test isolation)."""
    _REGISTRY.clear()


def _module_name_for(path: Path) -> str:
    raw = str(path.resolve()).encode("utf-8")
    digest = hashlib.sha1(raw).hexdigest()[:12]
    return f"repro_bench_script_{path.stem}_{digest}"


def _registered_from(path: Path) -> List[BenchmarkSpec]:
    resolved = path.resolve()
    return [
        spec
        for spec in all_benchmarks()
        if spec.source and Path(spec.source).resolve() == resolved
    ]


def load_script(path: Path) -> List[BenchmarkSpec]:
    """Import one benchmark script, returning what it registered."""
    path = Path(path)
    module_name = _module_name_for(path)
    if module_name in sys.modules:
        return _registered_from(path)
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover
        raise ConfigurationError(f"cannot import benchmark {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        del sys.modules[module_name]
        raise
    return _registered_from(path)


def discover(directory, pattern: str = "bench_*.py"):
    """Import every benchmark script in ``directory``.

    Returns the specs registered by those scripts, sorted by name.
    Scripts that register nothing are tolerated (plain pytest files);
    a script that fails to import raises — silent loss of a benchmark
    is exactly what this subsystem exists to prevent.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(
            f"benchmark directory {directory} does not exist"
        )
    found: List[BenchmarkSpec] = []
    for path in sorted(directory.glob(pattern)):
        found.extend(load_script(path))
    return sorted(found, key=lambda spec: spec.name)
