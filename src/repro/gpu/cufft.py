"""cuFFT-like batched 1-D FFT executor.

The distributed 3D-FFT mini-app offloads its 1-D transform batches to
the GPU exactly as the paper's modified code does ("adapted to utilize
the GPUs for the 1D-FFT operations"). :class:`CufftPlan1D` provides

* ``execute(data)`` — the *numerics*: a batched complex-to-complex 1-D
  FFT computed with :func:`numpy.fft.fft` (NumPy is our stand-in for
  the cuFFT math; results are bit-compatible with FFTW/cuFFT up to
  rounding), and
* ``simulate(device)`` — the *hardware activity*: H2D of the batch,
  a kernel burst of :math:`5 \\cdot B \\cdot N \\log_2 N` FLOPs (the
  standard radix-2 operation count), and D2H of the result, driving
  the device's power log and the host's memory-traffic counters.

Keeping the two paths on one plan object ensures tests can verify that
the simulated byte counts equal the byte size of the data actually
transformed.
"""

from __future__ import annotations

import math
import dataclasses
from typing import Optional

import numpy as np

from ..errors import GPUError
from ..units import DOUBLE_COMPLEX
from .device import GPUDevice


@dataclasses.dataclass(frozen=True)
class CufftPlan1D:
    """Plan for ``batch`` transforms of length ``n`` (complex double)."""

    n: int
    batch: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.batch <= 0:
            raise GPUError("FFT length and batch must be positive")

    # ------------------------------------------------------- numerics
    def execute(self, data: np.ndarray, inverse: bool = False) -> np.ndarray:
        """Transform ``data`` of shape ``(batch, n)`` (or reshapeable)."""
        arr = np.asarray(data, dtype=np.complex128).reshape(self.batch, self.n)
        if inverse:
            # cuFFT's inverse is unnormalised; match that convention.
            return np.fft.ifft(arr, axis=1) * self.n
        return np.fft.fft(arr, axis=1)

    # ------------------------------------------------------- hardware
    @property
    def bytes_in(self) -> int:
        return self.batch * self.n * DOUBLE_COMPLEX

    @property
    def bytes_out(self) -> int:
        return self.bytes_in

    @property
    def flops(self) -> float:
        """Standard 5·N·log2(N) per transform operation count."""
        return 5.0 * self.batch * self.n * math.log2(self.n)

    def simulate(self, device: GPUDevice,
                 power_w: Optional[float] = None) -> float:
        """Drive the device through H2D → kernel → D2H for this plan.

        Returns the total simulated duration. The H2D reads and D2H
        writes land in the host socket's memory controller — the
        high-read-then-high-write signature flanking each GPU power
        spike in Fig 11.
        """
        total = device.h2d(self.bytes_in)
        total += device.execute(self.flops, power_w=power_w)
        total += device.d2h(self.bytes_out)
        return total
