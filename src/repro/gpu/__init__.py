"""Simulated GPU devices (V100-class): DMA engines that generate host
memory traffic, a cuFFT-like batched 1-D FFT, and a power log sampled by
the PAPI ``nvml`` component."""

from .cufft import CufftPlan1D
from .device import GPUDevice
from .power import PowerLog

__all__ = ["CufftPlan1D", "GPUDevice", "PowerLog"]
