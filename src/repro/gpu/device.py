"""Simulated GPU (NVIDIA V100-class) attached to one socket.

The device matters to the paper in exactly three ways, all reproduced:

1. **Host memory traffic of DMA** — copying an array to the device
   *reads* host memory; copying results back *writes* it. In Fig 11
   the 1D-FFT phases show "a large amount of host memory being read"
   before the GPU power spike and "a large amount of host memory being
   written to" after it. H2D/D2H therefore record traffic into the
   owning socket's memory controller, where the nest counters see it.
2. **Power** — kernel execution raises board power to a busy level,
   producing the spikes the NVML component observes.
3. **Time** — DMA and kernel durations advance the node clock, giving
   the phases their extent on the profile's time axis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import GPUError
from ..machine.config import GPUConfig
from .power import PowerLog

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.node import Node


class GPUDevice:
    """One GPU with memory tracking, DMA engines and a power model."""

    def __init__(self, device_id: int, socket_id: int, config: GPUConfig,
                 node: "Node"):
        self.device_id = device_id
        self.socket_id = socket_id
        self.config = config
        self.node = node
        self.power = PowerLog(config.idle_power_w)
        self.allocated_bytes = 0
        #: Cumulative DMA byte counters (device lifetime).
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        #: Cumulative kernel FLOPs executed.
        self.flops_executed = 0.0

    # --------------------------------------------------------- memory
    def malloc(self, nbytes: int) -> int:
        """Reserve device memory; returns the new allocation total."""
        if nbytes < 0:
            raise GPUError("allocation size cannot be negative")
        if self.allocated_bytes + nbytes > self.config.memory_bytes:
            raise GPUError(
                f"device {self.device_id} out of memory: "
                f"{self.allocated_bytes + nbytes} > {self.config.memory_bytes}"
            )
        self.allocated_bytes += nbytes
        return self.allocated_bytes

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.allocated_bytes:
            raise GPUError("freeing more than allocated")
        self.allocated_bytes -= nbytes

    # ------------------------------------------------------------ DMA
    def h2d(self, nbytes: int, advance_clock: bool = True) -> float:
        """Host-to-device copy: reads host memory. Returns duration."""
        duration = self._dma(nbytes)
        self.h2d_bytes += nbytes
        self.node.socket(self.socket_id).record_traffic(read_bytes=nbytes)
        if advance_clock:
            self.node.advance(duration)
        return duration

    def d2h(self, nbytes: int, advance_clock: bool = True) -> float:
        """Device-to-host copy: writes host memory. Returns duration."""
        duration = self._dma(nbytes)
        self.d2h_bytes += nbytes
        self.node.socket(self.socket_id).record_traffic(write_bytes=nbytes)
        if advance_clock:
            self.node.advance(duration)
        return duration

    def _dma(self, nbytes: int) -> float:
        if nbytes < 0:
            raise GPUError("transfer size cannot be negative")
        return nbytes / self.config.dma_bandwidth

    # -------------------------------------------------------- kernels
    def execute(self, flops: float, power_w: Optional[float] = None,
                advance_clock: bool = True) -> float:
        """Run a kernel of ``flops`` on the device. Returns duration.

        Board power rises to ``power_w`` (default: configured peak)
        for the duration; the interval is logged for NVML sampling.
        """
        if flops < 0:
            raise GPUError("flops cannot be negative")
        duration = flops / self.config.flops
        watts = self.config.peak_power_w if power_w is None else power_w
        t0 = self.node.clock
        self.power.add_interval(t0, t0 + duration, watts)
        self.flops_executed += flops
        if advance_clock:
            self.node.advance(duration)
        return duration

    # ------------------------------------------------------- sampling
    def power_at(self, t: Optional[float] = None) -> float:
        """Instantaneous board power (NVML semantics)."""
        return self.power.power_at(self.node.clock if t is None else t)

    @property
    def name(self) -> str:
        return self.config.name
