"""GPU power accounting as a time-interval log.

NVML exposes instantaneous board power; the paper samples it through
the PAPI ``nvml`` component to correlate GPU activity with host memory
traffic (Fig 11). The simulated device records every busy interval with
its power level; :class:`PowerLog` answers both instantaneous
(``power_at``) and window-average (``average_power``) queries, the
latter being what a sampling profiler effectively observes.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Tuple

from ..errors import GPUError


class PowerLog:
    """Piecewise-constant power history above an idle baseline."""

    def __init__(self, idle_power_w: float):
        if idle_power_w < 0:
            raise GPUError("idle power cannot be negative")
        self.idle_power_w = idle_power_w
        # Sorted, non-overlapping (t0, t1, watts) busy intervals.
        self._intervals: List[Tuple[float, float, float]] = []

    # ------------------------------------------------------------------
    def add_interval(self, t0: float, t1: float, watts: float) -> None:
        """Record a busy interval at ``watts`` total board power."""
        if t1 < t0:
            raise GPUError(f"interval ends before it starts: [{t0}, {t1}]")
        if watts < self.idle_power_w:
            raise GPUError("busy power below idle baseline")
        if t1 == t0:
            return
        insort(self._intervals, (t0, t1, watts))

    # ------------------------------------------------------------------
    def power_at(self, t: float) -> float:
        """Instantaneous board power at time ``t``."""
        for t0, t1, w in self._intervals:
            if t0 <= t < t1:
                return w
            if t0 > t:
                break
        return self.idle_power_w

    def energy_joules(self, t0: float, t1: float) -> float:
        """Energy consumed in ``[t0, t1]`` (idle baseline included)."""
        if t1 < t0:
            raise GPUError("window ends before it starts")
        energy = self.idle_power_w * (t1 - t0)
        for a, b, w in self._intervals:
            lo = max(a, t0)
            hi = min(b, t1)
            if hi > lo:
                energy += (w - self.idle_power_w) * (hi - lo)
        return energy

    def average_power(self, t0: float, t1: float) -> float:
        """Average board power over ``[t0, t1]`` — what a sampling
        profiler reading NVML at both endpoints effectively measures."""
        if t1 <= t0:
            return self.power_at(t0)
        return self.energy_joules(t0, t1) / (t1 - t0)

    def busy_seconds(self, t0: float, t1: float) -> float:
        total = 0.0
        for a, b, _ in self._intervals:
            lo, hi = max(a, t0), min(b, t1)
            if hi > lo:
                total += hi - lo
        return total
