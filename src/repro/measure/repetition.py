"""Adaptive kernel repetition (paper Eq. 5) and averaging strategies.

"To amortize the noisy component of the memory traffic measurements,
we can execute multiple GEMM operations and take the average of their
aggregate memory traffic. But how many repetitions are necessary?" —
larger problems run longer, so counters capture them accurately with
fewer repetitions. Eq. 5 linearly anneals ~500 repetitions for the
smallest problems down to 10 for N ≥ 2048.

The paper's earlier work [9] also used the *minimum* or *median* of
multiple runs on Intel; :func:`aggregate` implements all three so the
ablation benchmark can compare them.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RepetitionPolicy:
    """Parameters of Eq. 5 (defaults are the paper's constants)."""

    intercept: float = 514.0
    slope: float = 0.246
    cutoff: int = 2048
    floor: int = 10

    def repetitions(self, n: int) -> int:
        """Eq. 5: ``⌊514 − 0.246·N⌋`` for N < 2048, else 10."""
        if n < 0:
            raise ConfigurationError("problem size cannot be negative")
        if n >= self.cutoff:
            return self.floor
        return max(self.floor, math.floor(self.intercept - self.slope * n))


#: The policy exactly as printed in the paper.
PAPER_POLICY = RepetitionPolicy()


def repetitions_for(n: int, policy: RepetitionPolicy = PAPER_POLICY) -> int:
    """Number of kernel repetitions for problem size ``n`` (Eq. 5)."""
    return policy.repetitions(n)


def aggregate(samples: Sequence[float], how: str = "mean") -> float:
    """Collapse per-repetition readings into one value.

    ``mean`` is what the paper uses on POWER9; ``min`` and ``median``
    are the Intel-era alternatives from [9].
    """
    if len(samples) == 0:
        raise ConfigurationError("cannot aggregate zero samples")
    arr = np.asarray(samples, dtype=float)
    if how == "mean":
        return float(arr.mean())
    if how == "min":
        return float(arr.min())
    if how == "median":
        return float(np.median(arr))
    raise ConfigurationError(
        f"unknown aggregation {how!r}; use mean, min, or median")


def sweep_sizes(start: int = 64, stop: int = 4096,
                points_per_octave: int = 4) -> List[int]:
    """Log-spaced problem sizes for the figure sweeps (deduplicated,
    rounded to multiples of 16 so grids stay divisible)."""
    if start <= 0 or stop < start:
        raise ConfigurationError("bad sweep range")
    sizes = []
    n = float(start)
    ratio = 2.0 ** (1.0 / points_per_octave)
    while n <= stop * 1.0001:
        rounded = max(16, int(round(n / 16.0)) * 16)
        if not sizes or rounded != sizes[-1]:
            sizes.append(rounded)
        n *= ratio
    return sizes
