"""Plain-text reporting helpers for experiments and benchmarks.

Every benchmark regenerates its table/figure as rows printed through
these helpers, so the output format is uniform across experiments and
easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..units import fmt_bytes


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-2:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_traffic_row(label, measured_read, measured_write,
                       expected_read=None, expected_write=None) -> List:
    """One figure-style row: measured vs expected with ratios."""
    row = [label, fmt_bytes(measured_read), fmt_bytes(measured_write)]
    if expected_read is not None:
        ratio = measured_read / expected_read if expected_read else float("nan")
        row += [fmt_bytes(expected_read), f"{ratio:.2f}x"]
    if expected_write is not None:
        ratio = (measured_write / expected_write if expected_write
                 else float("nan"))
        row += [fmt_bytes(expected_write), f"{ratio:.2f}x"]
    return row


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact ASCII rendering of a time series (for example scripts)."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    # Resample to the requested width.
    out = []
    n = len(values)
    for i in range(min(width, n)):
        idx = int(i * n / min(width, n))
        level = (values[idx] - lo) / span
        out.append(blocks[min(len(blocks) - 1, int(level * (len(blocks) - 1)))])
    return "".join(out)
