"""Derived metrics: bandwidth, arithmetic intensity, roofline position.

The paper's methodology descends from the authors' arithmetic-
intensity work (ref. [9], "Effortless Monitoring of Arithmetic
Intensity with PAPI's Counter Analysis Toolkit"): once memory-traffic
counters are validated, FLOP counts divided by measured bytes give the
operational intensity that places a kernel on the roofline. This
module computes those quantities from measurement results so examples
and benchmarks can report them consistently.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import ConfigurationError
from ..machine.config import MachineConfig


@dataclasses.dataclass(frozen=True)
class DerivedMetrics:
    """Bandwidth/intensity metrics of one measured kernel execution."""

    #: Total bytes moved to/from memory (read + write).
    bytes_moved: int
    #: Floating point operations executed.
    flops: float
    #: Wall-clock of the execution (seconds).
    seconds: float

    def __post_init__(self) -> None:
        if self.bytes_moved < 0 or self.flops < 0 or self.seconds < 0:
            raise ConfigurationError("derived metrics need non-negative inputs")

    # ------------------------------------------------------------------
    @property
    def bandwidth(self) -> float:
        """Achieved memory bandwidth (bytes/second)."""
        return self.bytes_moved / self.seconds if self.seconds else 0.0

    @property
    def flop_rate(self) -> float:
        """Achieved arithmetic rate (FLOP/s)."""
        return self.flops / self.seconds if self.seconds else 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Operational intensity (FLOP per byte of memory traffic)."""
        if self.bytes_moved == 0:
            return float("inf") if self.flops else 0.0
        return self.flops / self.bytes_moved

    # ------------------------------------------------------------------
    def roofline_bound(self, machine: MachineConfig,
                       n_cores: int = 1) -> str:
        """Which roof limits this kernel on ``machine``: memory|compute."""
        ridge = self.ridge_intensity(machine, n_cores)
        return "memory" if self.arithmetic_intensity < ridge else "compute"

    def attainable_flop_rate(self, machine: MachineConfig,
                             n_cores: int = 1) -> float:
        """Roofline ceiling for this intensity (FLOP/s)."""
        peak = machine.socket.core_flops * n_cores
        bw = machine.socket.memory_bandwidth
        return min(peak, self.arithmetic_intensity * bw)

    @staticmethod
    def ridge_intensity(machine: MachineConfig, n_cores: int = 1) -> float:
        """Intensity at the roofline ridge point (FLOP/byte)."""
        peak = machine.socket.core_flops * n_cores
        return peak / machine.socket.memory_bandwidth

    def efficiency(self, machine: MachineConfig, n_cores: int = 1) -> float:
        """Achieved / attainable FLOP rate (0..1, roofline terms)."""
        ceiling = self.attainable_flop_rate(machine, n_cores)
        return self.flop_rate / ceiling if ceiling else 0.0


def from_measurement(result, kernel, machine: Optional[MachineConfig] = None
                     ) -> DerivedMetrics:
    """Build :class:`DerivedMetrics` from a
    :class:`~repro.measure.session.MeasurementResult` and its kernel."""
    return DerivedMetrics(
        bytes_moved=result.measured.total_bytes,
        flops=kernel.flops() * result.n_cores,
        seconds=result.runtime_per_rep,
    )
