"""Noise-model calibration: estimate a system's noise parameters from
measurements, the way the paper's empirical observations calibrate its
repetition formula (Eq. 5).

Measurements of a kernel with known traffic ``T`` over ``R``
repetitions decompose as

    measured(R) ≈ T + per_rep + (background_rate · t_kernel)
                     + (fixed + background_rate · t_overhead) / R

so sweeping R and regressing measured-vs-1/R separates the amortisable
(fixed per window) component from the per-repetition one. The
estimates feed directly back into designing a repetition policy: the
number of repetitions needed for a target accuracy is

    R* = window_excess / (tolerance · T − steady_excess)

:class:`NoiseCalibrator` implements the sweep, the regression (plain
least squares on the two-parameter model), and the policy derivation —
all through the ordinary measurement path, so it works identically on
simulated Summit/Tellico or (conceptually) real hardware.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .session import MeasurementSession


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Fitted excess-traffic model for one kernel size."""

    kernel: str
    true_read_bytes: float
    #: Excess read bytes that do NOT amortise with repetitions
    #: (per-repetition overheads, steady background during the kernel).
    steady_excess: float
    #: Excess read bytes charged once per window (amortises as 1/R).
    window_excess: float
    #: Residual RMS of the fit (bytes).
    residual_rms: float

    def repetitions_for_tolerance(self, tolerance: float) -> Optional[int]:
        """Repetitions needed so the expected error <= tolerance·T.

        Returns None when the steady excess alone already exceeds the
        tolerance (no number of repetitions can fix a bias)."""
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        budget = tolerance * self.true_read_bytes - self.steady_excess
        if budget <= 0:
            return None
        if self.window_excess <= 0:
            return 1
        return max(1, math.ceil(self.window_excess / budget))


class NoiseCalibrator:
    """Fits the excess-traffic model by sweeping repetition counts."""

    def __init__(self, session: MeasurementSession,
                 rep_sweep: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
                 runs_per_point: int = 5):
        if len(rep_sweep) < 2:
            raise ConfigurationError("need >= 2 repetition counts to fit")
        if runs_per_point < 1:
            raise ConfigurationError("runs_per_point must be >= 1")
        self.session = session
        self.rep_sweep = sorted(set(int(r) for r in rep_sweep))
        self.runs_per_point = runs_per_point

    # ------------------------------------------------------------------
    def calibrate(self, kernel, n_cores: int = 1) -> CalibrationResult:
        """Measure ``kernel`` across the repetition sweep and fit."""
        inv_r: List[float] = []
        excess: List[float] = []
        true_read = None
        for reps in self.rep_sweep:
            for _ in range(self.runs_per_point):
                result = self.session.measure_kernel(
                    kernel, n_cores=n_cores, repetitions=reps)
                if true_read is None:
                    true_read = float(result.true_traffic.read_bytes)
                inv_r.append(1.0 / reps)
                excess.append(result.measured.read_bytes - true_read)
        # Least squares: excess = steady + window * (1/R).
        a = np.vstack([np.ones(len(inv_r)), np.asarray(inv_r)]).T
        coeffs, *_ = np.linalg.lstsq(a, np.asarray(excess), rcond=None)
        steady, window = float(coeffs[0]), float(coeffs[1])
        fitted = a @ coeffs
        rms = float(np.sqrt(np.mean((np.asarray(excess) - fitted) ** 2)))
        return CalibrationResult(
            kernel=kernel.name,
            true_read_bytes=true_read or 0.0,
            steady_excess=steady,
            window_excess=window,
            residual_rms=rms,
        )
