"""Export timelines as Chrome/Perfetto trace JSON.

The paper visualises its multi-component profiles (Figs 11-12) as time
series; tools like Vampir render them as trace views. This module
converts a :class:`~repro.measure.timeline.Timeline` into the Chrome
trace-event format (`chrome://tracing` / Perfetto compatible): one
duration event per profiled step plus counter tracks for memory
read/write rates, GPU power, and network receive rate.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import ConfigurationError
from .timeline import Timeline

#: Chrome traces use microseconds.
_US = 1e6


def timeline_to_chrome_trace(timeline: Timeline, pid: int = 1,
                             process_name: str = "rank0") -> Dict:
    """Build the trace dict (``json.dump``-ready)."""
    if not timeline.samples:
        raise ConfigurationError("cannot export an empty timeline")
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": process_name},
    }]
    for sample in timeline.samples:
        events.append({
            "name": sample.label,
            "ph": "X",
            "pid": pid,
            "tid": 1,
            "ts": sample.t_start * _US,
            "dur": sample.duration * _US,
            "args": {
                "mem_read_GBps": round(sample.mem_read_rate / 1e9, 3),
                "mem_write_GBps": round(sample.mem_write_rate / 1e9, 3),
                "gpu_power_W": round(sample.gpu_power_w, 1),
                "net_recv_GBps": round(sample.net_recv_rate / 1e9, 3),
            },
        })
        # Counter tracks (ph="C") sampled at each step start.
        events.append({
            "name": "memory traffic", "ph": "C", "pid": pid,
            "ts": sample.t_start * _US,
            "args": {
                "read_GBps": round(sample.mem_read_rate / 1e9, 3),
                "write_GBps": round(sample.mem_write_rate / 1e9, 3),
            },
        })
        events.append({
            "name": "gpu power", "ph": "C", "pid": pid,
            "ts": sample.t_start * _US,
            "args": {"watts": round(sample.gpu_power_w, 1)},
        })
        events.append({
            "name": "network", "ph": "C", "pid": pid,
            "ts": sample.t_start * _US,
            "args": {"recv_GBps": round(sample.net_recv_rate / 1e9, 3)},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str, pid: int = 1,
                       process_name: str = "rank0") -> None:
    """Write the trace to ``path`` (open in chrome://tracing/Perfetto)."""
    trace = timeline_to_chrome_trace(timeline, pid=pid,
                                     process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
