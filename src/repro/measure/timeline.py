"""Multi-component timeline profiling (Figs 11-12).

"We use PAPI to simultaneously monitor three disparate performance
metrics — GPU power, network traffic, and memory traffic — of a
GPU-enabled application running on a distributed memory machine."

:class:`MultiComponentProfiler` holds one PAPI event set per component
(nest memory counters via PCP, InfiniBand ``port_recv_data``, NVML GPU
power), starts them together, and samples all of them at every
application *step*. Applications expose their execution as an iterable
of labelled :class:`Step` objects (phases split into slices); the
profiler turns counter deltas into rates and produces a
:class:`Timeline` whose per-phase signatures make each region of the
execution uniquely identifiable — the paper's headline demonstration.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from ..machine.node import Node
from ..papi.papi import Papi
from ..pmu.events import all_pcp_events, all_uncore_events


@dataclasses.dataclass(frozen=True)
class Step:
    """One profiled slice of application execution."""

    label: str
    run: Callable[[], None]


@dataclasses.dataclass
class TimelineSample:
    """Rates observed over one step's window."""

    label: str
    t_start: float
    t_end: float
    mem_read_rate: float = 0.0     # bytes / second
    mem_write_rate: float = 0.0    # bytes / second
    gpu_power_w: float = 0.0       # average board power over the window
    net_recv_rate: float = 0.0     # bytes / second
    cpu_power_w: float = 0.0       # average package power (rapl)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def mem_read_bytes(self) -> float:
        return self.mem_read_rate * self.duration

    @property
    def mem_write_bytes(self) -> float:
        return self.mem_write_rate * self.duration


@dataclasses.dataclass
class Timeline:
    """The full profile of one rank."""

    samples: List[TimelineSample]

    def series(self, metric: str) -> List[float]:
        return [getattr(s, metric) for s in self.samples]

    def labels(self) -> List[str]:
        return [s.label for s in self.samples]

    def phase(self, label: str) -> List[TimelineSample]:
        return [s for s in self.samples if s.label == label]

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregate bytes/energy per distinct phase label."""
        out: Dict[str, Dict[str, float]] = {}
        for s in self.samples:
            agg = out.setdefault(s.label, {
                "seconds": 0.0, "read_bytes": 0.0, "write_bytes": 0.0,
                "gpu_energy_j": 0.0, "net_recv_bytes": 0.0,
            })
            agg["seconds"] += s.duration
            agg["read_bytes"] += s.mem_read_bytes
            agg["write_bytes"] += s.mem_write_bytes
            agg["gpu_energy_j"] += s.gpu_power_w * s.duration
            agg["net_recv_bytes"] += s.net_recv_rate * s.duration
        return out


class MultiComponentProfiler:
    """Correlated sampling of nest + NVML + InfiniBand counters."""

    def __init__(self, papi: Papi, socket_id: int = 0,
                 use_pcp: Optional[bool] = None,
                 gpu_index: Optional[int] = None,
                 nic_index: Optional[int] = None):
        self.papi = papi
        self.node: Node = papi.node
        self.socket_id = socket_id
        machine = self.node.config
        if use_pcp is None:
            use_pcp = not machine.user_privileged
        # --- nest memory events --------------------------------------
        self.mem_es = papi.create_eventset()
        if use_pcp:
            self.mem_es.add_events(all_pcp_events(machine, socket_id))
        else:
            threads = machine.socket.n_cores * 4
            self.mem_es.add_events(
                all_uncore_events(machine, cpu=socket_id * threads))
        # --- GPU power ------------------------------------------------
        self.gpu = None
        gpus = self.node.gpus_on_socket(socket_id)
        if gpus:
            self.gpu = gpus[gpu_index or 0] if gpu_index is None \
                else gpus[gpu_index]
            self.nvml_es = papi.create_eventset()
            self.nvml_es.add_event(
                f"nvml:::{self.gpu.name}:device_{self.gpu.device_id}:power")
        else:
            self.nvml_es = None
        # --- CPU package power (extension component) -------------------
        try:
            self.rapl_es = papi.create_eventset()
            self.rapl_es.add_event(
                f"rapl:::PACKAGE_ENERGY:PACKAGE{socket_id}")
        except Exception:
            self.rapl_es = None
        # --- network ---------------------------------------------------
        if self.node.nics:
            nic = self.node.nics[(nic_index if nic_index is not None
                                  else socket_id % len(self.node.nics))]
            self.ib_es = papi.create_eventset()
            self.ib_es.add_event(
                f"infiniband:::{nic.name}:port_recv_data")
        else:
            self.ib_es = None

    # ------------------------------------------------------------------
    def profile(self, steps: Iterable[Step]) -> Timeline:
        """Run the application steps under correlated measurement."""
        self.mem_es.start()
        if self.ib_es is not None:
            self.ib_es.start()
        if self.nvml_es is not None:
            self.nvml_es.start()
        if self.rapl_es is not None:
            self.rapl_es.start()
        samples: List[TimelineSample] = []
        prev_mem = self._read_mem()
        prev_ib = self._read_ib()
        for step in steps:
            # Bracket the step tightly with the (cheap) energy reads so
            # the power average excludes other components' read latency.
            prev_uj = self._read_rapl()
            t0 = self.node.clock
            step.run()
            t1 = self.node.clock
            if t1 <= t0:
                raise ConfigurationError(
                    f"step {step.label!r} did not advance the clock; "
                    "profiled steps must consume simulated time"
                )
            uj = self._read_rapl()
            mem = self._read_mem()
            ib = self._read_ib()
            dt = t1 - t0
            sample = TimelineSample(
                label=step.label, t_start=t0, t_end=t1,
                mem_read_rate=(mem[0] - prev_mem[0]) / dt,
                mem_write_rate=(mem[1] - prev_mem[1]) / dt,
                net_recv_rate=(ib - prev_ib) / dt,
                gpu_power_w=self._gpu_power(t0, t1),
                cpu_power_w=(uj - prev_uj) / 1e6 / dt,
            )
            samples.append(sample)
            prev_mem, prev_ib = mem, ib
        self.mem_es.stop()
        if self.ib_es is not None:
            self.ib_es.stop()
        if self.nvml_es is not None:
            self.nvml_es.stop()
        if self.rapl_es is not None:
            self.rapl_es.stop()
        return Timeline(samples=samples)

    # ------------------------------------------------------------------
    def _read_mem(self):
        values = self.mem_es.read_dict()
        read = sum(v for k, v in values.items() if "READ" in k)
        write = sum(v for k, v in values.items() if "WRITE" in k)
        return read, write

    def _read_ib(self) -> int:
        if self.ib_es is None:
            return 0
        # port_recv_data counts 4-byte words.
        return self.ib_es.read()[0] * 4

    def _read_rapl(self) -> int:
        if self.rapl_es is None:
            return 0
        return self.rapl_es.read()[0]

    def _gpu_power(self, t0: float, t1: float) -> float:
        """Average power over the window, as a high-rate NVML sampler
        (what production profilers run) would report."""
        if self.gpu is None:
            return 0.0
        return self.gpu.power.average_power(t0, t1)
