"""Expected-traffic formulas and divergence boundaries (Eqs. 3, 4, 7).

The paper draws dashed "expected" lines — element counts × 8 bytes,
64 B transactions — and shades the problem-size band where caching
assumptions break down. This module computes those boundaries from the
machine's cache geometry so they stay consistent with the simulated
hardware:

* Eq. 3: all three GEMM matrices cached — ``8·3N² = L3`` → N ≈ 467
  (5 MB per-core slice);
* Eq. 4: only one matrix cached — ``8·N² = L3`` → N ≈ 809;
* Eq. 7: S1CF loop-nest-2 working set — ``4·16N²/8 + 16N²/8 = L3`` →
  N ≈ 724 (2×4 grid, 8 processes).
"""

from __future__ import annotations

import dataclasses
import math

from ..units import DOUBLE, DOUBLE_COMPLEX, MIB


@dataclasses.dataclass(frozen=True)
class Band:
    """A problem-size interval where measurements may diverge."""

    lower: float
    upper: float

    def contains(self, n: float) -> bool:
        return self.lower <= n <= self.upper


def gemm_divergence_band(l3_bytes: int = 5 * MIB) -> Band:
    """Shaded region of Fig 2: between all-matrices-cached (Eq. 3) and
    one-matrix-cached (Eq. 4)."""
    lower = math.sqrt(l3_bytes / (3 * DOUBLE))
    upper = math.sqrt(l3_bytes / DOUBLE)
    return Band(lower=lower, upper=upper)


def s1cf_ln2_boundary(l3_bytes: int = 5 * MIB, n_processes: int = 8) -> float:
    """Eq. 7: N above which every S1CF loop-nest-2 iteration must read
    a whole cache line — 4 granules of tmp plus 1 of out per element.

    ``4·(16N²/p) + (16N²/p) = L3``  →  ``N = sqrt(L3·p / (5·16))``.
    """
    return math.sqrt(l3_bytes * n_processes / (5 * DOUBLE_COMPLEX))


#: The problem size at which the paper's capped-GEMV sweep switches
#: from square (M=N=P) to capped (N=P fixed, M grows): "Since each
#: thread has access to 5MB of L3 cache, this transition happens when
#: M=N=P=1280" — a design constant of the paper's experiment.
CAPPED_GEMV_TRANSITION = 1280


def gemm_expected_bytes(n: int) -> dict:
    """Dashed lines of Figs 2-4: 3N² element reads, N² element writes."""
    nn = n * n
    return {"read_bytes": 3 * nn * DOUBLE, "write_bytes": nn * DOUBLE}


def gemv_expected_bytes(m: int, n: int) -> dict:
    """Dashed lines of Fig 5: M·N+M+N element reads, M element writes."""
    return {
        "read_bytes": (m * n + m + n) * DOUBLE,
        "write_bytes": m * DOUBLE,
    }


def resort_expected_bytes(elements: int, reads_per_write: float,
                          elem_bytes: int = DOUBLE_COMPLEX) -> dict:
    """Expectations for the 3D-FFT re-sorting routines, expressed as a
    read:write ratio per element copied (§IV): e.g. S1CF combined nest
    → 2 reads : 1 write; S2CF → 1 read : 1 write."""
    write = elements * elem_bytes
    return {"read_bytes": int(round(reads_per_write * write)),
            "write_bytes": write}
