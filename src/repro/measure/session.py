"""Measurement sessions: kernel × machine × PAPI component.

A :class:`MeasurementSession` wires together everything the paper's
benchmark methodology needs on one simulated machine:

* a :class:`~repro.machine.node.Node` (Summit, Tellico, or Skylake),
* a PMCD daemon plus an initialised :class:`~repro.papi.Papi` library,
* an :class:`~repro.engine.executor.Executor`.

``measure_kernel`` then reproduces the paper's measurement loop: open
the 16 nest events of the target socket through the chosen component
(``pcp``, as on Summit, or ``perf_event_uncore``, as on Tellico),
start the event set, run the kernel ``repetitions`` times back to
back, stop, and average — reporting measured alongside expected
traffic. All noise enters through the same counter path a real
measurement would see.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from ..engine.executor import Executor
from ..errors import ConfigurationError
from ..kernels.compiler import CompilerConfig, compile_kernel
from ..machine.cache import TrafficCounters
from ..machine.config import MachineConfig, get_machine
from ..machine.node import Node
from ..noise import NoiseConfig
from ..papi.papi import Papi, library_init
from ..pcp.pmcd import start_pmcd_for_node
from ..pmu.events import all_pcp_events, all_uncore_events

#: Measurement paths.
VIA_PCP = "pcp"
VIA_PERF_UNCORE = "perf_event_uncore"


@dataclasses.dataclass
class MeasurementResult:
    """One (kernel, size, core-count) measurement, per-repetition avg."""

    kernel: str
    machine: str
    via: str
    n_cores: int
    repetitions: int
    #: Average measured traffic per repetition, whole batch (bytes).
    measured: TrafficCounters
    #: Paper-expected traffic for the whole batch (bytes), if defined.
    expected: Optional[TrafficCounters]
    #: Noise-free analytic traffic of one repetition (whole batch).
    true_traffic: TrafficCounters
    runtime_per_rep: float

    @property
    def read_ratio(self) -> Optional[float]:
        """measured / expected reads (1.0 = matches the dashed line)."""
        if self.expected is None or self.expected.read_bytes == 0:
            return None
        return self.measured.read_bytes / self.expected.read_bytes

    @property
    def write_ratio(self) -> Optional[float]:
        if self.expected is None or self.expected.write_bytes == 0:
            return None
        return self.measured.write_bytes / self.expected.write_bytes

    @property
    def reads_per_write(self) -> float:
        if self.measured.write_bytes == 0:
            return float("inf")
        return self.measured.read_bytes / self.measured.write_bytes


class MeasurementSession:
    """One machine set up for repeated kernel measurements."""

    def __init__(self, machine: Union[str, MachineConfig] = "summit",
                 via: Optional[str] = None, seed: Optional[int] = None,
                 noise: Optional[NoiseConfig] = None):
        self.machine = (get_machine(machine) if isinstance(machine, str)
                        else machine)
        self.node = Node(self.machine, seed=seed, noise=noise)
        self.pmcd = start_pmcd_for_node(self.node)
        self.papi: Papi = library_init(self.node, pmcd=self.pmcd)
        self.executor = Executor(self.node)
        if via is None:
            # The natural path for the machine: direct where privileged
            # (Tellico/Skylake), PCP otherwise (Summit).
            via = (VIA_PERF_UNCORE if self.machine.user_privileged
                   else VIA_PCP)
        if via not in (VIA_PCP, VIA_PERF_UNCORE):
            raise ConfigurationError(
                f"via must be {VIA_PCP!r} or {VIA_PERF_UNCORE!r}, got {via!r}")
        self.via = via

    # ------------------------------------------------------------------
    def nest_event_names(self, socket_id: int = 0) -> list:
        """The 16 memory-traffic events of one socket, in the spelling
        of the session's measurement path (paper Table I)."""
        if self.via == VIA_PCP:
            return all_pcp_events(self.machine, socket_id)
        threads_per_socket = self.machine.socket.n_cores * 4
        return all_uncore_events(self.machine,
                                 cpu=socket_id * threads_per_socket)

    def _make_eventset(self, socket_id: int):
        es = self.papi.create_eventset()
        es.add_events(self.nest_event_names(socket_id))
        return es

    # ------------------------------------------------------------------
    def measure_kernel(self, kernel, n_cores: int = 1, repetitions: int = 1,
                       compiler: Optional[CompilerConfig] = None,
                       socket_id: int = 0, noisy: bool = True,
                       assume_socket_busy: bool = False,
                       ) -> MeasurementResult:
        """Measure ``repetitions`` back-to-back runs of ``kernel``.

        Returns per-repetition averages of the summed 16-channel
        read/write byte counts — the quantity every figure plots.
        """
        if repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        compiler = compiler or compile_kernel()
        es = self._make_eventset(socket_id)
        sock = self.node.socket(socket_id)
        es.start()
        if noisy:
            # Fixed per-window traffic (harness setup, page-table churn)
            # lands INSIDE the measurement window, after the start read.
            fixed = self.node.noise_model(socket_id).window_fixed_traffic()
            sock.record_traffic(fixed.read_bytes, fixed.write_bytes)
        record = self.executor.run(
            kernel, socket_id=socket_id, n_cores=n_cores,
            repetitions=repetitions, prefetch=compiler.prefetch,
            noisy=noisy, assume_socket_busy=assume_socket_busy,
        )
        values = es.stop_dict()
        read = sum(v for k, v in values.items() if "READ" in k)
        write = sum(v for k, v in values.items() if "WRITE" in k)
        measured = TrafficCounters(
            read_bytes=read // repetitions,
            write_bytes=write // repetitions,
        )
        expected_one = kernel.expected_traffic()
        expected = (expected_one.scaled(n_cores)
                    if expected_one is not None else None)
        return MeasurementResult(
            kernel=kernel.name,
            machine=self.machine.name,
            via=self.via,
            n_cores=n_cores,
            repetitions=repetitions,
            measured=measured,
            expected=expected,
            true_traffic=record.true_traffic,
            runtime_per_rep=record.runtime_per_rep,
        )

    # ------------------------------------------------------------------
    def daemon_overhead(self) -> dict:
        """Overhead of the daemon-mediated measurement path itself.

        Returns the merged client/daemon/service counters (round
        trips, simulated latency, lookup-cache behaviour, coalescing)
        for sessions measuring via PCP — the paper's Table 2 overhead
        analysis as live data. Empty for direct-uncore sessions, which
        have no daemon in the loop.
        """
        if self.via != VIA_PCP:
            return {}
        return self.papi.component(VIA_PCP).daemon_overhead()

    # ------------------------------------------------------------------
    def batch_core_count(self, socket_id: int = 0) -> int:
        """Cores used by the paper's batched kernels: every usable core
        of the socket (21 on Summit, 16 on Tellico)."""
        return len(self.node.socket(socket_id).usable_cores)
