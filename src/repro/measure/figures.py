"""ASCII figure rendering: log-log plots in the terminal.

The paper's figures are log-log traffic-vs-problem-size plots.
:func:`ascii_plot` renders the same shapes in plain text so the
examples and the CLI (``repro-experiments figN --plot``) can *show*
the crossovers — the noise floor, the divergence band, the batched
jump — rather than only tabulating them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

Point = Tuple[float, float]

#: Marker characters assigned to series in insertion order.
MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ConfigurationError(
                "log-scale plots need strictly positive values")
        return math.log10(value)
    return value


def ascii_plot(series: Dict[str, Sequence[Point]], width: int = 72,
               height: int = 20, logx: bool = True, logy: bool = True,
               title: Optional[str] = None,
               xlabel: str = "", ylabel: str = "") -> str:
    """Render named (x, y) series as an ASCII scatter plot."""
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ConfigurationError("nothing to plot")
    if width < 16 or height < 6:
        raise ConfigurationError("plot area too small")
    xs: List[float] = []
    ys: List[float] = []
    for pts in series.values():
        for x, y in pts:
            xs.append(_transform(x, logx))
            ys.append(_transform(y, logy))
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = MARKERS[idx % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = int(round((_transform(x, logx) - x_lo) / x_span
                            * (width - 1)))
            row = int(round((_transform(y, logy) - y_lo) / y_span
                            * (height - 1)))
            grid[height - 1 - row][col] = marker

    def y_label(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        value = y_lo + frac * y_span
        return f"{10 ** value:9.3g}" if logy else f"{value:9.3g}"

    lines = []
    if title:
        lines.append(title)
    if legend:
        lines.append("   ".join(legend))
    for row in range(height):
        label = y_label(row) if row % max(1, height // 5) == 0 else " " * 9
        lines.append(f"{label} |{''.join(grid[row])}")
    lines.append(" " * 9 + "+" + "-" * width)
    x_left = f"{10 ** x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_right = f"{10 ** x_hi:.3g}" if logx else f"{x_hi:.3g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * 10 + x_left + " " * max(1, pad) + x_right)
    if xlabel or ylabel:
        lines.append(f"          x: {xlabel}    y: {ylabel}")
    return "\n".join(lines)


def plot_ratio_sweep(rows: Sequence[Sequence], n_col: int,
                     ratio_cols: Dict[str, int], title: str = "",
                     **kwargs) -> str:
    """Plot measured/expected ratio columns of an experiment's rows."""
    series: Dict[str, List[Point]] = {}
    for name, col in ratio_cols.items():
        series[name] = [(row[n_col], row[col]) for row in rows
                        if row[col] and row[col] > 0]
    return ascii_plot(series, title=title,
                      xlabel="problem size", ylabel="measured/expected",
                      **kwargs)
