"""Measurement methodology: expectations and divergence bands (Eqs.
3/4/7), adaptive repetitions (Eq. 5), measurement sessions, and the
multi-component timeline profiler."""

from .derived import DerivedMetrics, from_measurement
from .expectations import (
    CAPPED_GEMV_TRANSITION,
    Band,
    gemm_divergence_band,
    gemm_expected_bytes,
    gemv_expected_bytes,
    resort_expected_bytes,
    s1cf_ln2_boundary,
)
from .repetition import (
    PAPER_POLICY,
    RepetitionPolicy,
    aggregate,
    repetitions_for,
    sweep_sizes,
)
from .report import format_table, format_traffic_row, sparkline
from .session import (
    VIA_PCP,
    VIA_PERF_UNCORE,
    MeasurementResult,
    MeasurementSession,
)
from .timeline import MultiComponentProfiler, Step, Timeline, TimelineSample
from .traceexport import timeline_to_chrome_trace, write_chrome_trace

__all__ = [
    "Band",
    "CAPPED_GEMV_TRANSITION",
    "DerivedMetrics",
    "MeasurementResult",
    "MeasurementSession",
    "MultiComponentProfiler",
    "PAPER_POLICY",
    "RepetitionPolicy",
    "Step",
    "Timeline",
    "TimelineSample",
    "VIA_PCP",
    "VIA_PERF_UNCORE",
    "aggregate",
    "format_table",
    "format_traffic_row",
    "from_measurement",
    "gemm_divergence_band",
    "gemm_expected_bytes",
    "gemv_expected_bytes",
    "repetitions_for",
    "resort_expected_bytes",
    "s1cf_ln2_boundary",
    "sparkline",
    "sweep_sizes",
    "timeline_to_chrome_trace",
    "write_chrome_trace",
]
