"""Seeded measurement-noise models (background traffic, capture jitter,
window overhead). See :mod:`repro.noise.models`."""

from .models import QUIET, NoiseConfig, NoiseModel

__all__ = ["NoiseConfig", "NoiseModel", "QUIET"]
