"""Measurement-noise models for the simulated systems.

The paper's central empirical theme is that memory-traffic measurements
of *small* kernels are "fraught with noise, regardless of the measuring
infrastructure or architecture", while large kernels measure cleanly.
Three mechanisms produce that behaviour here, all seeded and
deterministic:

1. **Background traffic** — the OS, service daemons (including PMCD
   itself) and the measurement harness continuously move memory. The
   nest counters are socket-wide, so this traffic lands inside every
   measurement window, proportional to the window's wall-clock length.
2. **Capture jitter** — nest counters aggregate and post updates with
   finite latency; a kernel that runs for microseconds sees a
   multiplicative error that shrinks as runtime grows ("smaller
   operations execute too quickly for the counters to accurately
   reflect the hardware activity").
3. **Window overhead** — reading counters is not free. The PCP path
   pays a daemon round-trip per fetch (milliseconds), the direct
   perf_uncore path a syscall (microseconds). Both extend the window
   and therefore admit more background traffic; this is the *only*
   systematic difference between the two measurement paths, which is
   why PCP measurements are "as accurate as" direct ones once problems
   are large.

Averaging over repetitions (Eq. 5) amortises mechanisms 1 and 3 and
suppresses 2 by :math:`1/\\sqrt{reps}` — exactly the paper's remedy.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..machine.cache import TrafficCounters
from ..rng import substream


@dataclasses.dataclass(frozen=True)
class NoiseConfig:
    """Tunable parameters of the noise model."""

    #: Mean background read traffic per socket (bytes / second).
    background_read_rate: float = 30e6
    #: Mean background write traffic per socket (bytes / second).
    background_write_rate: float = 6e6
    #: Sigma of the lognormal jitter applied to background rates.
    background_sigma: float = 0.6
    #: Fixed traffic per measurement *window* (bytes), independent of
    #: window length: page-table churn, harness setup, daemon bursts
    #: triggered by the measurement itself. Amortised by repetitions;
    #: responsible for the slow convergence of small write volumes
    #: (capped GEMV, Fig 5) and the small-problem noise floor (Fig 2).
    fixed_read_bytes: float = 1.2e6
    fixed_write_bytes: float = 0.8e6
    #: Fixed traffic per kernel *repetition* (bytes): the paper uses a
    #: fresh matrix per repetition, so every repetition pays page
    #: faults / first-touch zeroing outside the kernel's own traffic.
    #: NOT amortised by averaging — this is why small write volumes
    #: (capped GEMV) stay above expectation until M ≈ 10⁴ (Fig 5).
    per_rep_read_bytes: float = 1.2e5
    per_rep_write_bytes: float = 2.0e5
    #: Multiplicative capture-jitter magnitude at zero runtime.
    capture_sigma0: float = 0.35
    #: Runtime scale (seconds) over which capture jitter decays.
    capture_time_scale: float = 2.0e-3
    #: Extra wall-clock overhead per counter-read round trip (seconds).
    #: PCP pays a daemon round trip; direct reads a syscall.
    window_overhead_pcp: float = 2.5e-3
    #: Direct (perf_uncore) read overhead (seconds).
    window_overhead_direct: float = 2.0e-5

    def window_overhead(self, via_pcp: bool) -> float:
        return self.window_overhead_pcp if via_pcp else self.window_overhead_direct


#: Noise configuration with every mechanism disabled, for deterministic
#: traffic-law tests.
QUIET = NoiseConfig(
    background_read_rate=0.0,
    background_write_rate=0.0,
    background_sigma=0.0,
    fixed_read_bytes=0.0,
    fixed_write_bytes=0.0,
    per_rep_read_bytes=0.0,
    per_rep_write_bytes=0.0,
    capture_sigma0=0.0,
    window_overhead_pcp=0.0,
    window_overhead_direct=0.0,
)


class NoiseModel:
    """Seeded sampler for the three noise mechanisms.

    One instance per (machine, experiment) pair; every call draws from
    an independent deterministic substream so the simulated "runs" are
    reproducible yet mutually independent.
    """

    def __init__(self, config: Optional[NoiseConfig] = None,
                 seed: Optional[int] = None, label: str = "noise"):
        self.config = config or NoiseConfig()
        self._rng = substream(seed, label)

    # ------------------------------------------------------------------
    def background_traffic(self, window_seconds: float) -> TrafficCounters:
        """Background bytes landing in a window of given length."""
        cfg = self.config
        if window_seconds <= 0:
            return TrafficCounters()
        jitter_r = self._lognormal(cfg.background_sigma)
        jitter_w = self._lognormal(cfg.background_sigma)
        return TrafficCounters(
            read_bytes=int(cfg.background_read_rate * window_seconds * jitter_r),
            write_bytes=int(cfg.background_write_rate * window_seconds * jitter_w),
        )

    def window_fixed_traffic(self) -> TrafficCounters:
        """Fixed per-measurement-window traffic (jittered sample).

        Charged once per start/stop window regardless of its length —
        the harness, page-table churn and daemon bursts triggered by
        the measurement itself."""
        cfg = self.config
        return TrafficCounters(
            read_bytes=int(cfg.fixed_read_bytes
                           * self._lognormal(cfg.background_sigma)),
            write_bytes=int(cfg.fixed_write_bytes
                            * self._lognormal(cfg.background_sigma)),
        )

    def per_rep_traffic(self) -> TrafficCounters:
        """Fixed traffic per kernel repetition (jittered sample) — the
        fresh-buffer first-touch cost; see :class:`NoiseConfig`."""
        cfg = self.config
        return TrafficCounters(
            read_bytes=int(cfg.per_rep_read_bytes
                           * self._lognormal(cfg.background_sigma)),
            write_bytes=int(cfg.per_rep_write_bytes
                            * self._lognormal(cfg.background_sigma)),
        )

    def capture_factor(self, runtime_seconds: float) -> float:
        """Multiplicative counter-capture factor for one kernel run.

        Approaches 1.0 as runtime grows; noisy (but never negative) for
        very short kernels.
        """
        cfg = self.config
        if cfg.capture_sigma0 == 0.0:
            return 1.0
        sigma = cfg.capture_sigma0 / (1.0 + runtime_seconds / cfg.capture_time_scale)
        return float(max(0.0, self._rng.normal(1.0, sigma)))

    def perturb(self, true_traffic: TrafficCounters, runtime_seconds: float,
                via_pcp: bool, repetitions: int = 1) -> TrafficCounters:
        """Measured traffic for ``repetitions`` back-to-back kernel runs.

        The kernels run inside a *single* measurement window (the
        paper's repetition scheme), so the window overhead is paid once
        while the true traffic scales with ``repetitions``. Returns the
        per-repetition average, which is what the experiments plot.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        window = runtime_seconds * repetitions + self.config.window_overhead(via_pcp)
        bg = self.background_traffic(window)
        fixed_r = self.config.fixed_read_bytes * self._lognormal(
            self.config.background_sigma)
        fixed_w = self.config.fixed_write_bytes * self._lognormal(
            self.config.background_sigma)
        total_read = 0.0
        total_write = 0.0
        for _ in range(repetitions):
            factor = self.capture_factor(runtime_seconds)
            rep_fixed = self.per_rep_traffic()
            total_read += true_traffic.read_bytes * factor + rep_fixed.read_bytes
            total_write += (true_traffic.write_bytes * factor
                            + rep_fixed.write_bytes)
        return TrafficCounters(
            read_bytes=int((total_read + bg.read_bytes + fixed_r) / repetitions),
            write_bytes=int((total_write + bg.write_bytes + fixed_w) / repetitions),
        )

    # ------------------------------------------------------------------
    def _lognormal(self, sigma: float) -> float:
        if sigma == 0.0:
            return 1.0
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
        return float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))
