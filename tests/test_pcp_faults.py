"""Fault injection: the PCP service degrades loudly and recoverably.

Covers the degraded modes introduced by the service layer: dropped
connections, slow responses (client timeout → retry with backoff →
PCPError), truncated PDUs, and daemon restart mid-session (gap flag,
never corrupted counters).
"""

import pytest

from repro.errors import PCPError, PCPTimeout
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp.client import PmapiContext
from repro.pcp.faults import FaultInjector, FaultKind
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.pmlogger import PmLogger
from repro.pcp.server import PMCDServer, RemotePMCD
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)


@pytest.fixture
def node():
    return Node(SUMMIT, seed=21, noise=QUIET)


@pytest.fixture
def faults():
    return FaultInjector()


@pytest.fixture
def server(node, faults):
    server = PMCDServer(start_pmcd_for_node(node),
                        fault_injector=faults).start()
    yield server
    server.stop()


def _remote(server, **kwargs):
    kwargs.setdefault("round_trip_seconds", 0.0)
    return RemotePMCD(*server.address, **kwargs)


class TestFaultInjector:
    def test_fifo_plan(self, faults):
        faults.drop_connections(1)
        faults.slow_responses(2, seconds=0.5)
        assert faults.pending() == 3
        assert faults.next_action().kind is FaultKind.DROP_CONNECTION
        assert faults.next_action().seconds == 0.5
        assert faults.pending() == 1
        assert faults.next_action() is not None
        assert faults.next_action() is None
        assert faults.injected == 3
        faults.truncate_pdus(2)
        assert faults.pending() == 2
        faults.clear()
        assert faults.pending() == 0
        assert faults.next_action() is None
        assert faults.injected == 3  # cleared actions never fired

    def test_empty_plan_is_noop(self, faults):
        assert faults.next_action() is None
        assert faults.injected == 0


class TestDroppedConnection:
    def test_drop_without_reconnect_raises(self, server, faults):
        remote = _remote(server, auto_reconnect=False)
        client = PmapiContext(remote)
        pmids = client.lookup_names([METRIC])
        faults.drop_connections(1)
        with pytest.raises(PCPError):
            client.fetch(pmids)
        remote.close()

    def test_drop_with_reconnect_recovers(self, server, faults):
        remote = _remote(server, auto_reconnect=True, max_retries=3,
                         backoff_base_seconds=0.005)
        client = PmapiContext(remote)
        pmids = client.lookup_names([METRIC])
        faults.drop_connections(1)
        values = client.fetch(pmids)
        assert set(values) == set(pmids)
        assert remote.reconnects >= 1
        assert remote.retries >= 1
        remote.close()


class TestTruncatedPDU:
    def test_truncated_pdu_is_pcp_error(self, server, faults):
        remote = _remote(server, auto_reconnect=False)
        client = PmapiContext(remote)
        faults.truncate_pdus(1)
        with pytest.raises(PCPError):
            client.lookup_names([METRIC])
        remote.close()

    def test_truncated_pdu_recovers_with_reconnect(self, server, faults):
        remote = _remote(server, auto_reconnect=True, max_retries=3,
                         backoff_base_seconds=0.005)
        client = PmapiContext(remote)
        faults.truncate_pdus(1)
        assert client.lookup_names([METRIC])
        assert remote.reconnects >= 1
        remote.close()


class TestTimeoutRetryBackoff:
    def test_timed_out_fetch_retries_then_surfaces_pcp_error(
            self, server, faults):
        remote = _remote(server, request_timeout=0.08, max_retries=2,
                         backoff_base_seconds=0.01)
        client = PmapiContext(remote)
        pmids = client.lookup_names([METRIC])
        # Every attempt (1 original + 2 retries) hits a slow response
        # far beyond the request deadline.
        faults.slow_responses(5, seconds=0.5)
        with pytest.raises(PCPTimeout):
            client.fetch(pmids)
        assert remote.timeouts == 3
        assert remote.retries == 2
        remote.close()

    def test_timeout_then_recovery(self, server, faults):
        remote = _remote(server, request_timeout=0.08, max_retries=2,
                         backoff_base_seconds=0.01)
        client = PmapiContext(remote)
        pmids = client.lookup_names([METRIC])
        faults.slow_responses(1, seconds=0.5)  # only the first attempt
        values = client.fetch(pmids)
        assert set(values) == set(pmids)
        assert remote.timeouts == 1
        assert remote.retries >= 1
        remote.close()

    def test_stale_response_never_cross_wires(self, server, faults, node):
        """After a timeout the transport reconnects, so the stale
        response of the timed-out request cannot be mistaken for the
        answer to a later one."""
        remote = _remote(server, request_timeout=0.08, max_retries=2,
                         backoff_base_seconds=0.01)
        client = PmapiContext(remote)
        pmids = client.lookup_names([METRIC])
        faults.slow_responses(1, seconds=0.3)
        client.fetch(pmids)  # times out once, retried on a fresh socket
        for _ in range(5):
            values = client.fetch(pmids)
            assert set(values) == set(pmids)
        remote.close()


class TestDaemonRestart:
    def test_restart_mid_session_sets_gap_flag(self, server, node, faults):
        remote = _remote(server, auto_reconnect=True, max_retries=3,
                         backoff_base_seconds=0.005)
        client = PmapiContext(remote)
        pmids = client.lookup_names([METRIC])
        node.socket(0).record_traffic(read_bytes=8 * 64)
        before = client.fetch(pmids)
        assert not client.gap_detected

        server.restart()

        node.socket(0).record_traffic(read_bytes=8 * 64)
        after = client.fetch(pmids)
        assert client.gap_detected
        assert client.gaps == 1
        # Counters are not corrupted: the nest hardware kept counting
        # through the daemon outage.
        instance = next(iter(before[pmids[0]]))
        assert after[pmids[0]][instance] == 128
        remote.close()

    def test_restart_invalidates_lookup_cache(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd, cache_lookups=True)
        client.lookup_names([METRIC])
        assert client.lookup_names([METRIC])  # served from cache
        assert client.cached_lookups == 1
        round_trips = client.round_trips
        pmcd.restart()
        client.fetch(client.lookup_names([METRIC]))  # cache hit, then fetch
        # The fetch observes the new generation; the next lookup must
        # go back to the daemon.
        client.lookup_names([METRIC])
        assert client.round_trips > round_trips + 1

    def test_in_process_restart_gap(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd)
        pmids = client.lookup_names([METRIC])
        client.fetch(pmids)
        pmcd.restart()
        client.fetch(pmids)
        assert client.gaps == 1

    def test_pmlogger_marks_gap_and_rates_skip_it(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd, node=node)
        logger = PmLogger(client, [METRIC], interval_seconds=1.0)

        node.socket(0).record_traffic(read_bytes=64 * 64)
        logger.sample()
        node.advance(1.0)
        node.socket(0).record_traffic(read_bytes=64 * 64)
        logger.sample()

        pmcd.restart()  # daemon crash between samples

        node.advance(1.0)
        node.socket(0).record_traffic(read_bytes=64 * 64)
        logger.sample()
        node.advance(1.0)
        node.socket(0).record_traffic(read_bytes=64 * 64)
        logger.sample()

        records = logger.archive
        assert [r.gap for r in records] == [False, False, True, False]
        rates = logger.rates(METRIC, "cpu87")
        # 3 intervals, minus the one ending at the gap record.
        assert len(rates) == 2
        for _, rate in rates:
            # The nest counter ticks once per 8-byte word (64*64 bytes
            # -> 512 counts); interval is 1s plus the fetch round trip.
            assert rate == pytest.approx(64 * 64 / 8, rel=0.01)

    def test_stopped_daemon_still_refuses(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd)
        pmcd.running = False
        with pytest.raises(PCPError):
            client.lookup_names([METRIC])
        pmcd.restart()
        assert client.lookup_names([METRIC])
