"""Re-sorting routines: numerics, traffic ratios, prefetch effects."""

import numpy as np
import pytest

from repro.engine.analytic import CacheContext
from repro.engine.stream import resolve_policies
from repro.fft3d.decomp import LocalBlock
from repro.fft3d.resort import (
    ROUTINES,
    S1CFCombined,
    S1CFLoopNest1,
    S1CFLoopNest2,
    S1PF,
    S2CF,
    S2PF,
)
from repro.machine.prefetch import SoftwarePrefetch
from repro.machine.store import StorePolicy
from repro.units import MIB

BLOCK = LocalBlock(planes=8, rows=8, cols=16)
CTX = CacheContext(capacity_bytes=5 * MIB)
PF = SoftwarePrefetch(dcbt=True, dcbtst=True)


def ratios(kernel, ctx=CTX, prefetch=SoftwarePrefetch()):
    t = kernel.traffic(ctx, prefetch)
    nbytes = kernel.nbytes
    return t.read_bytes / nbytes, t.write_bytes / nbytes


class TestNumerics:
    def test_two_nests_equal_combined(self):
        data = S1CFLoopNest1(BLOCK, seed=7).make_input()
        tmp = S1CFLoopNest1(BLOCK).compute(data)
        out_two = S1CFLoopNest2(BLOCK).compute(tmp.ravel())
        out_one = S1CFCombined(BLOCK).compute(data)
        assert np.array_equal(out_two, out_one)

    def test_s1cf_is_the_expected_transpose(self):
        data = np.arange(BLOCK.elements, dtype=complex)
        out = S1CFCombined(BLOCK).compute(data)
        ref = data.reshape(BLOCK.shape).transpose(2, 0, 1).ravel()
        assert np.array_equal(out, ref)

    def test_s2cf_is_a_permutation(self):
        data = np.arange(BLOCK.elements, dtype=complex)
        out = S2CF(BLOCK).compute(data)
        assert sorted(out.real.astype(int)) == list(range(BLOCK.elements))
        assert not np.array_equal(out, data)  # actually reorders

    def test_planewise_variants_share_structure(self):
        data = np.arange(BLOCK.elements, dtype=complex)
        assert np.array_equal(S1PF(BLOCK).compute(data),
                              S1CFCombined(BLOCK).compute(data))
        assert np.array_equal(S2PF(BLOCK).compute(data),
                              S2CF(BLOCK).compute(data))


class TestTrafficRatios:
    def test_ln1_bypass_one_read_one_write(self):
        r, w = ratios(S1CFLoopNest1(BLOCK))
        assert r == pytest.approx(1.0, rel=0.01)
        assert w == pytest.approx(1.0, rel=0.01)

    def test_ln1_prefetch_two_reads(self):
        r, w = ratios(S1CFLoopNest1(BLOCK), prefetch=PF)
        assert r == pytest.approx(2.0, rel=0.01)

    def test_ln2_cached_two_reads(self):
        r, w = ratios(S1CFLoopNest2(BLOCK))
        assert r == pytest.approx(2.0, rel=0.01)

    def test_ln2_thrashing_five_reads(self):
        big = LocalBlock(planes=672, rows=336, cols=1344)  # N=1344, 2x4
        tiny = CacheContext(capacity_bytes=5 * MIB)
        r, w = ratios(S1CFLoopNest2(big), ctx=tiny)
        assert r == pytest.approx(5.0, rel=0.02)
        assert w == pytest.approx(1.0, rel=0.02)

    def test_combined_always_two_to_one(self):
        for planes, rows, cols in ((8, 8, 16), (672, 336, 1344)):
            blk = LocalBlock(planes=planes, rows=rows, cols=cols)
            r, w = ratios(S1CFCombined(blk))
            assert r == pytest.approx(2.0, rel=0.02)
            assert w == pytest.approx(1.0, rel=0.02)

    def test_s2cf_one_to_one(self):
        r, w = ratios(S2CF(BLOCK))
        assert r == pytest.approx(1.0, rel=0.01)
        assert w == pytest.approx(1.0, rel=0.01)

    def test_s2cf_prefetch_two_to_one(self):
        r, w = ratios(S2CF(BLOCK), prefetch=PF)
        assert r == pytest.approx(2.0, rel=0.01)


class TestPolicies:
    def test_ln1_stores_bypass(self):
        assert resolve_policies(S1CFLoopNest1(BLOCK).streams())["tmp"] is \
            StorePolicy.BYPASS

    def test_ln2_stores_allocate_due_to_strided_tmp(self):
        assert resolve_policies(S1CFLoopNest2(BLOCK).streams())["out"] is \
            StorePolicy.WRITE_ALLOCATE

    def test_combined_strided_stores_allocate(self):
        assert resolve_policies(S1CFCombined(BLOCK).streams())["out"] is \
            StorePolicy.WRITE_ALLOCATE

    def test_s2cf_stores_bypass(self):
        assert resolve_policies(S2CF(BLOCK).streams())["out"] is \
            StorePolicy.BYPASS


class TestBandwidthEfficiency:
    def test_ln2_gains_most_from_prefetch(self):
        # Fig 7b: "a significant improvement in performance".
        k = S1CFLoopNest2(BLOCK)
        assert k.bandwidth_efficiency(PF) > \
            2 * k.bandwidth_efficiency(SoftwarePrefetch())

    def test_s2cf_already_efficient(self):
        # "higher bandwidth due to better locality"
        k2 = S2CF(BLOCK)
        k1 = S1CFLoopNest2(BLOCK)
        assert k2.bandwidth_efficiency() > k1.bandwidth_efficiency()


class TestRegistry:
    def test_routine_names(self):
        forward = {"S1CF", "S1PF", "S2CF", "S2PF"}
        backward = {"S1CB", "S1PB", "S2CB", "S2PB"}
        assert set(ROUTINES) == forward | backward

    def test_expected_ratios(self):
        assert ROUTINES["S1CF"](BLOCK).expected_traffic().read_bytes == \
            2 * BLOCK.nbytes
        assert ROUTINES["S2CF"](BLOCK).expected_traffic().read_bytes == \
            BLOCK.nbytes

    def test_flops_zero(self):
        assert S1CFCombined(BLOCK).flops() == 0.0
