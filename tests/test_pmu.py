"""PMU event tables and the privileged perf_uncore path."""

import pytest

from repro.errors import PrivilegeError, SimulationError
from repro.machine.config import SUMMIT, TELLICO
from repro.machine.node import Node
from repro.pmu.events import (
    all_pcp_events,
    all_uncore_events,
    pcp_event_name,
    pcp_metric_name,
    socket_instance_cpu,
    socket_of_cpu,
    uncore_event_name,
)
from repro.pmu.perf import (
    open_uncore_event,
    parse_uncore_event,
    read_socket_traffic,
)


class TestEventNames:
    def test_uncore_spelling_matches_table1(self):
        assert uncore_event_name(0, write=False) == \
            "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"
        assert uncore_event_name(7, write=True, cpu=4) == \
            "power9_nest_mba7::PM_MBA7_WRITE_BYTES:cpu=4"

    def test_pcp_spelling_matches_table1(self):
        assert pcp_metric_name(0, write=False) == \
            "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value"
        assert pcp_event_name(3, write=True, cpu=87) == \
            ("pcp:::perfevent.hwcounters.nest_mba3_imc."
             "PM_MBA3_WRITE_BYTES.value:cpu87")

    def test_summit_socket_instances_are_cpu87_and_cpu175(self):
        # SMT4 x 22 cores = 88 hardware threads per socket.
        assert socket_instance_cpu(SUMMIT, 0) == 87
        assert socket_instance_cpu(SUMMIT, 1) == 175

    def test_socket_of_cpu_inverse(self):
        assert socket_of_cpu(SUMMIT, 87) == 0
        assert socket_of_cpu(SUMMIT, 88) == 1
        with pytest.raises(ValueError):
            socket_of_cpu(SUMMIT, 176)

    def test_full_event_lists(self):
        assert len(all_uncore_events(SUMMIT)) == 16
        assert len(all_pcp_events(SUMMIT, 0)) == 16
        assert all(":cpu87" in e for e in all_pcp_events(SUMMIT, 0))
        assert all(":cpu175" in e for e in all_pcp_events(SUMMIT, 1))


class TestParsing:
    def test_parse_roundtrip(self):
        spec = parse_uncore_event("power9_nest_mba5::PM_MBA5_WRITE_BYTES:cpu=3")
        assert spec.channel == 5
        assert spec.write
        assert spec.cpu == 3
        assert spec.counter_name == "PM_MBA5_WRITE_BYTES"

    def test_default_cpu_zero(self):
        assert parse_uncore_event(
            "power9_nest_mba1::PM_MBA1_READ_BYTES").cpu == 0

    def test_channel_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            parse_uncore_event("power9_nest_mba1::PM_MBA2_READ_BYTES:cpu=0")

    @pytest.mark.parametrize("bad", [
        "power9_nest::PM_MBA0_READ_BYTES",
        "PM_MBA0_READ_BYTES",
        "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=x",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SimulationError):
            parse_uncore_event(bad)


class TestPrivilege:
    def test_summit_open_denied(self):
        node = Node(SUMMIT, seed=1)
        with pytest.raises(PrivilegeError):
            open_uncore_event(node, "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")

    def test_tellico_open_and_read(self):
        node = Node(TELLICO, seed=1)
        handle = open_uncore_event(
            node, "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")
        assert handle.read() == 0
        node.socket(0).record_traffic(read_bytes=8 * 64)
        assert handle.read() == 64

    def test_cpu_qualifier_selects_socket(self):
        node = Node(TELLICO, seed=1)
        cpu_s1 = TELLICO.socket.n_cores * 4  # first thread of socket 1
        handle = open_uncore_event(
            node, f"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu={cpu_s1}")
        node.socket(1).record_traffic(read_bytes=8 * 64)
        assert handle.read() == 64

    def test_channel_out_of_range(self):
        node = Node(TELLICO, seed=1)
        with pytest.raises(SimulationError):
            open_uncore_event(node,
                              "power9_nest_mba9::PM_MBA9_READ_BYTES:cpu=0")

    def test_read_socket_traffic_sums_channels(self):
        node = Node(TELLICO, seed=1)
        node.socket(0).record_traffic(read_bytes=4096, write_bytes=2048)
        totals = read_socket_traffic(node, 0)
        assert totals == {"read_bytes": 4096, "write_bytes": 2048}

    def test_read_socket_traffic_privilege_override(self):
        node = Node(SUMMIT, seed=1)
        with pytest.raises(PrivilegeError):
            read_socket_traffic(node, 0)
        totals = read_socket_traffic(node, 0, privileged=True)
        assert totals["read_bytes"] == 0
