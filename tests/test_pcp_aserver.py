"""The asyncio multi-tenant PMCD fabric.

Covers the fabric's service invariants directly — shard coalescing,
supervisor-driven worker recovery, executor offload, the v2 handshake
and archive serving over TCP — plus the disconnect-accounting
regression shared with the threaded server.
"""

import asyncio
import warnings

import pytest

from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp import connect, protocol
from repro.pcp.archive import MetricArchive
from repro.pcp.aserver import AsyncPMCDServer, FabricStats
from repro.pcp.faults import FaultInjector
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.server import PMCDServer, RemoteTransport, ServiceStats
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)
METRICS = [pcp_metric_name(ch, write) for ch in range(2)
           for write in (False, True)]


@pytest.fixture
def node():
    return Node(SUMMIT, seed=11, noise=QUIET)


@pytest.fixture
def pmcd(node):
    return start_pmcd_for_node(node, round_trip_seconds=0.0)


async def drain_disconnects(server):
    """Give connection handlers a moment to observe client closes."""
    for _ in range(100):
        stats = server.stats.snapshot()
        if stats["disconnects"] >= stats["connections"]:
            return stats
        await asyncio.sleep(0.01)
    return server.stats.snapshot()


def run_fabric(pmcd, coro_factory, **server_kwargs):
    """Start a fabric in a fresh loop, run the coroutine, tear down."""
    async def main():
        server = await AsyncPMCDServer(pmcd, **server_kwargs).start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestFabricBasics:
    def test_fetch_over_tcp(self, pmcd):
        async def scenario(server):
            async with connect(server, mode="async") as session:
                pmids = await session.lookup_names(METRICS)
                values = await session.fetch(pmids)
                assert set(values) == set(pmids)
            return await drain_disconnects(server)

        stats = run_fabric(pmcd, scenario)
        assert stats["connections"] == 1
        assert stats["disconnects"] == 1
        assert stats["responses"] == 2

    def test_handshake_and_archive_over_tcp(self, pmcd, node, tmp_path):
        store = MetricArchive.create(str(tmp_path / "arch"))
        logger = connect(pmcd, node=node).log([METRIC], store=store)
        logger.run(3)
        pmcd.attach_archive(store)

        async def scenario(server):
            async with connect(server, mode="async") as session:
                assert (await session.handshake()
                        == protocol.PROTOCOL_VERSION)
                return await session.fetch_archive([METRIC])

        assert run_fabric(pmcd, scenario) == logger.archive

    def test_concurrent_sessions_not_cross_wired(self, pmcd):
        async def scenario(server):
            sessions = [connect(server, mode="async") for _ in range(16)]
            await asyncio.gather(*(s.open() for s in sessions))
            pmids = await sessions[0].lookup_names(METRICS)

            async def one(session, want):
                values = await session.fetch(want)
                assert set(values) == set(want)

            await asyncio.gather(*(
                one(s, pmids if i % 2 else pmids[:1])
                for i, s in enumerate(sessions)))
            await asyncio.gather(*(s.close() for s in sessions))
            return server.stats.snapshot()

        stats = run_fabric(pmcd, scenario)
        assert stats["connections"] == 16

    def test_coalescing_shares_pmda_reads(self, pmcd):
        async def scenario(server):
            sessions = [connect(server, mode="async") for _ in range(8)]
            await asyncio.gather(*(s.open() for s in sessions))
            pmids = await sessions[0].lookup_names(METRICS)
            await asyncio.gather(*(s.fetch(pmids) for s in sessions))
            await asyncio.gather(*(s.close() for s in sessions))
            return server.stats.snapshot()

        stats = run_fabric(pmcd, scenario)
        assert stats["coalesced"] > 0
        # Coalesced fetches never cost extra PMDA reads.
        assert pmcd.stats.pmda_fetch_calls < 9 * len(METRICS)

    def test_unknown_domain_is_clean_error(self, pmcd):
        async def scenario(server):
            async with connect(server, mode="async") as session:
                bogus = 99 << 22 | 1
                with pytest.raises(Exception):
                    await session.fetch([bogus])

        run_fabric(pmcd, scenario)

    def test_executor_offload(self, pmcd):
        domain = pmcd.agents[0].domain

        async def scenario(server):
            async with connect(server, mode="async") as session:
                pmids = await session.lookup_names(METRICS)
                values = await session.fetch(pmids)
                assert set(values) == set(pmids)
                return server.stats.snapshot()

        stats = run_fabric(pmcd, scenario, executor_domains=(domain,))
        assert stats["executor_reads"] > 0


class TestShardRecovery:
    def test_kill_shard_restarts_and_serves(self, pmcd):
        domain = pmcd.agents[0].domain

        async def scenario(server):
            async with connect(server, mode="async") as session:
                pmids = await session.lookup_names(METRICS)
                await session.fetch(pmids)
                assert server.kill_shard(domain)
                await asyncio.sleep(0)
                values = await session.fetch(pmids)
                assert set(values) == set(pmids)
                return server.stats.snapshot()

        stats = run_fabric(pmcd, scenario)
        assert stats["shard_kills"] == 1
        assert stats["shard_restarts"] >= 1

    def test_kill_unknown_shard_returns_false(self, pmcd):
        async def scenario(server):
            return server.kill_shard(12345)

        assert run_fabric(pmcd, scenario) is False

    def test_slow_pmda_stalls_but_serves(self, pmcd):
        injector = FaultInjector()
        injector.slow_pmda(1, seconds=0.01)

        async def scenario(server):
            async with connect(server, mode="async") as session:
                pmids = await session.lookup_names(METRICS)
                values = await session.fetch(pmids)
                assert set(values) == set(pmids)
                return server.stats.snapshot()

        stats = run_fabric(pmcd, scenario, fault_injector=injector)
        assert stats["faults"] == 1
        assert injector.pending() == 0

    def test_stop_with_shards_killed_does_not_hang(self, pmcd):
        # Regression: a supervisor that swallowed external cancellation
        # wedged asyncio.run teardown whenever the run aborted early.
        domain = pmcd.agents[0].domain

        async def scenario(server):
            server.kill_shard(domain)
            await asyncio.sleep(0)

        run_fabric(pmcd, scenario)


class TestThreadedHosting:
    def test_sync_clients_against_threaded_fabric(self, pmcd, node):
        server = AsyncPMCDServer(pmcd).start_in_thread()
        try:
            with connect(server, node=node) as session:
                assert session.fetch_one(METRIC, "cpu87") >= 0
                assert session.handshake() == protocol.PROTOCOL_VERSION
        finally:
            server.stop_in_thread()

    def test_restart_bumps_boot_id(self, pmcd, node):
        server = AsyncPMCDServer(pmcd).start_in_thread()
        try:
            with connect(server, node=node) as session:
                session.fetch_one(METRIC, "cpu87")
                server.restart()
                session.fetch_one(METRIC, "cpu87")
                assert session.gap_detected
        finally:
            server.stop_in_thread()


class TestDisconnectAccounting:
    """One disconnect per socket close — both service layers.

    Regression: the drop-connection fault path and the reader-loop
    unwind both unregistered the same socket, double-counting
    disconnects in the stress report.
    """

    def test_threaded_server_counts_drop_once(self, pmcd, node):
        injector = FaultInjector()
        injector.drop_connections(1)
        server = PMCDServer(pmcd, fault_injector=injector).start()
        try:
            transport = RemoteTransport(*server.address,
                                        round_trip_seconds=0.0,
                                        auto_reconnect=True)
            session = connect(transport, node=node)
            for _ in range(3):
                session.fetch_one(METRIC, "cpu87")
            session.close()
            deadline = 50
            while (server.stats.snapshot()["disconnects"]
                   < server.stats.snapshot()["connections"]
                   and deadline):
                deadline -= 1
                import time
                time.sleep(0.01)
            stats = server.stats.snapshot()
            assert stats["disconnects"] == stats["connections"]
        finally:
            server.stop()

    def test_fabric_counts_drop_once(self, pmcd):
        injector = FaultInjector()
        injector.drop_connections(1)

        async def scenario(server):
            session = connect(server, mode="async", request_timeout=5.0)
            await session.open()
            done = 0
            while done < 3:
                try:
                    pmids = await session.lookup_names(METRICS)
                    await session.fetch(pmids)
                    done += 1
                except Exception:
                    # The drop fault can hit any response, including
                    # the lookup: redial and retry.
                    await session.close()
                    await session.open()
            await session.close()
            return await drain_disconnects(server)

        stats = run_fabric(pmcd, scenario, fault_injector=injector)
        assert stats["faults"] == 1
        assert stats["disconnects"] == stats["connections"]


class TestFabricStats:
    def test_snapshot_superset_of_threaded_service_stats(self):
        fabric_keys = set(FabricStats().snapshot())
        threaded_keys = set(ServiceStats().snapshot())
        assert threaded_keys <= fabric_keys

    def test_latency_accounting(self):
        stats = FabricStats()
        stats.record_latency(0.001)
        stats.record_latency(0.003)
        snap = stats.snapshot()
        assert snap["latency_avg_usec"] == 2000
        assert snap["latency_max_usec"] == 3000
