"""Unit tests for the parallel benchmark runner.

These synthesise tiny benchmark scripts in a temp directory and drive
the real process pool against them, covering the three containment
guarantees: in-benchmark exceptions become ``error`` records, deadline
overruns become ``timeout`` records without stalling the queue, and a
worker killed outright becomes a ``crashed`` record while the
not-yet-started benchmarks still run to completion.
"""

import textwrap

import pytest

from repro.bench import RunnerConfig, run_benchmarks
from repro.bench.registry import _REGISTRY, load_script
from repro.errors import ConfigurationError

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _write_script(tmp_path, filename, body):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(body))
    return path


@pytest.fixture
def scratch_registry():
    """Track and evict the names the test registers."""
    before = set(_REGISTRY)
    yield None
    for name in set(_REGISTRY) - before:
        _REGISTRY.pop(name, None)


def _specs_from(tmp_path, scripts):
    specs = []
    for filename, body in scripts.items():
        specs.extend(load_script(_write_script(tmp_path, filename, body)))
    return sorted(specs, key=lambda s: s.name)


OK_SCRIPT = """
    from repro.bench import benchmark

    @benchmark("runner-ok-{n}", tags=("selftest",))
    def bench_ok(ctx):
        return {{"value": {value}, "seed_echo": float(ctx.seed)}}
"""

FAILING_SCRIPT = """
    from repro.bench import benchmark

    @benchmark("runner-raises", tags=("selftest",))
    def bench_raises(ctx):
        raise ValueError("deliberate benchmark failure")
"""

SLOW_SCRIPT = """
    import time

    from repro.bench import benchmark

    @benchmark("runner-sleeps", tags=("selftest",))
    def bench_sleeps(ctx):
        time.sleep(60.0)
        return {"never": 1.0}
"""

CRASH_SCRIPT = """
    import os

    from repro.bench import benchmark

    @benchmark("runner-crashes", tags=("selftest",))
    def bench_crashes(ctx):
        os._exit(17)
"""


def test_runner_requires_specs():
    with pytest.raises(ConfigurationError):
        run_benchmarks([])


def test_runner_happy_path_and_error_containment(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path,
        {
            "bench_a.py": OK_SCRIPT.format(n=1, value=1.25),
            "bench_b.py": OK_SCRIPT.format(n=2, value=2.5),
            "bench_c.py": FAILING_SCRIPT,
        },
    )
    seen = []
    records = run_benchmarks(
        specs,
        RunnerConfig(max_workers=2, timeout_s=60.0, seed=777),
        progress=seen.append,
    )
    assert [r["name"] for r in records] == [
        "runner-ok-1",
        "runner-ok-2",
        "runner-raises",
    ]
    assert sorted(r["name"] for r in seen) == [
        r["name"] for r in records
    ]
    by_name = {r["name"]: r for r in records}
    for name, value in (("runner-ok-1", 1.25), ("runner-ok-2", 2.5)):
        record = by_name[name]
        assert record["status"] == "ok"
        assert record["metrics"] == {"value": value, "seed_echo": 777.0}
        assert record["wall_s"] >= 0.0
        assert record["peak_rss_kb"] > 0
        assert record["tags"] == ["selftest"]
        assert record["error"] is None
    failed = by_name["runner-raises"]
    assert failed["status"] == "error"
    assert "deliberate benchmark failure" in failed["error"]
    assert failed["metrics"] == {}


def test_timeout_is_recorded_without_stalling_the_run(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path,
        {
            "bench_slow.py": SLOW_SCRIPT,
            "bench_fast.py": OK_SCRIPT.format(n=3, value=3.0),
        },
    )
    records = run_benchmarks(
        specs, RunnerConfig(max_workers=2, timeout_s=1.0)
    )
    by_name = {r["name"]: r for r in records}
    timed_out = by_name["runner-sleeps"]
    assert timed_out["status"] == "timeout"
    assert "deadline" in timed_out["error"]
    assert by_name["runner-ok-3"]["status"] == "ok"


def test_worker_crash_is_isolated_and_queue_drains(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path,
        {
            "bench_crash.py": CRASH_SCRIPT,
            "bench_d.py": OK_SCRIPT.format(n=4, value=4.0),
            "bench_e.py": OK_SCRIPT.format(n=5, value=5.0),
        },
    )
    # One worker makes attribution deterministic: the crasher is the
    # only benchmark in flight when the pool breaks, and the other two
    # must be resubmitted to the rebuilt pool.
    records = run_benchmarks(
        specs, RunnerConfig(max_workers=1, timeout_s=60.0)
    )
    by_name = {r["name"]: r for r in records}
    assert len(records) == 3
    assert by_name["runner-crashes"]["status"] == "crashed"
    assert by_name["runner-ok-4"]["status"] == "ok"
    assert by_name["runner-ok-5"]["status"] == "ok"


def test_resolved_workers_bounds():
    assert RunnerConfig(max_workers=3).resolved_workers(100) == 3
    assert RunnerConfig(max_workers=0).resolved_workers(100) == 1
    auto = RunnerConfig().resolved_workers(100)
    assert 1 <= auto <= 8
    assert RunnerConfig().resolved_workers(1) == 1
