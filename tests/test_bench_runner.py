"""Unit tests for the parallel benchmark runner.

These synthesise tiny benchmark scripts in a temp directory and drive
the real process pool against them, covering the three containment
guarantees: in-benchmark exceptions become ``error`` records, deadline
overruns become ``timeout`` records without stalling the queue, and a
worker killed outright becomes a ``crashed`` record while the
not-yet-started benchmarks still run to completion.
"""

import textwrap

import pytest

from repro.bench import RunnerConfig, run_benchmarks
from repro.bench.registry import _REGISTRY, load_script
from repro.errors import ConfigurationError

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _write_script(tmp_path, filename, body):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(body))
    return path


@pytest.fixture
def scratch_registry():
    """Track and evict the names the test registers."""
    before = set(_REGISTRY)
    yield None
    for name in set(_REGISTRY) - before:
        _REGISTRY.pop(name, None)


def _specs_from(tmp_path, scripts):
    specs = []
    for filename, body in scripts.items():
        specs.extend(load_script(_write_script(tmp_path, filename, body)))
    return sorted(specs, key=lambda s: s.name)


OK_SCRIPT = """
    from repro.bench import benchmark

    @benchmark("runner-ok-{n}", tags=("selftest",))
    def bench_ok(ctx):
        return {{"value": {value}, "seed_echo": float(ctx.seed)}}
"""

FAILING_SCRIPT = """
    from repro.bench import benchmark

    @benchmark("runner-raises", tags=("selftest",))
    def bench_raises(ctx):
        raise ValueError("deliberate benchmark failure")
"""

SLOW_SCRIPT = """
    import time

    from repro.bench import benchmark

    @benchmark("runner-sleeps", tags=("selftest",))
    def bench_sleeps(ctx):
        time.sleep(60.0)
        return {"never": 1.0}
"""

CRASH_SCRIPT = """
    import os

    from repro.bench import benchmark

    @benchmark("runner-crashes", tags=("selftest",))
    def bench_crashes(ctx):
        os._exit(17)
"""

HANG_SCRIPT = """
    import time

    from repro.bench import benchmark

    @benchmark("runner-hang-{n}", tags=("selftest",))
    def bench_hang(ctx):
        time.sleep(60.0)
        return {{"never": 1.0}}
"""

# Hangs on its first invocation, returns instantly on the second —
# distinguishes "restarted after being stranded" from "ran once".
RESTART_SCRIPT = """
    import time
    from pathlib import Path

    from repro.bench import benchmark

    MARKER = Path({marker!r})

    @benchmark("runner-z-restart", tags=("selftest",))
    def bench_restart(ctx):
        runs = 1
        if MARKER.exists():
            runs = int(MARKER.read_text()) + 1
        MARKER.write_text(str(runs))
        if runs == 1:
            time.sleep(60.0)
        return {{"runs": float(runs)}}
"""


def test_runner_requires_specs():
    with pytest.raises(ConfigurationError):
        run_benchmarks([])


def test_runner_happy_path_and_error_containment(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path,
        {
            "bench_a.py": OK_SCRIPT.format(n=1, value=1.25),
            "bench_b.py": OK_SCRIPT.format(n=2, value=2.5),
            "bench_c.py": FAILING_SCRIPT,
        },
    )
    seen = []
    records = run_benchmarks(
        specs,
        RunnerConfig(max_workers=2, timeout_s=60.0, seed=777),
        progress=seen.append,
    )
    assert [r["name"] for r in records] == [
        "runner-ok-1",
        "runner-ok-2",
        "runner-raises",
    ]
    assert sorted(r["name"] for r in seen) == [
        r["name"] for r in records
    ]
    by_name = {r["name"]: r for r in records}
    for name, value in (("runner-ok-1", 1.25), ("runner-ok-2", 2.5)):
        record = by_name[name]
        assert record["status"] == "ok"
        # info_cpu_util is injected by the worker and machine-dependent.
        assert record["metrics"].pop("info_cpu_util") >= 0.0
        assert record["metrics"] == {"value": value, "seed_echo": 777.0}
        assert record["wall_s"] >= 0.0
        assert record["peak_rss_kb"] > 0
        assert record["tags"] == ["selftest"]
        assert record["error"] is None
    failed = by_name["runner-raises"]
    assert failed["status"] == "error"
    assert "deliberate benchmark failure" in failed["error"]
    assert failed["metrics"] == {}


def test_timeout_is_recorded_without_stalling_the_run(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path,
        {
            "bench_slow.py": SLOW_SCRIPT,
            "bench_fast.py": OK_SCRIPT.format(n=3, value=3.0),
        },
    )
    records = run_benchmarks(
        specs, RunnerConfig(max_workers=2, timeout_s=1.0)
    )
    by_name = {r["name"]: r for r in records}
    timed_out = by_name["runner-sleeps"]
    assert timed_out["status"] == "timeout"
    assert "deadline" in timed_out["error"]
    assert by_name["runner-ok-3"]["status"] == "ok"


def test_hung_workers_do_not_starve_queued_benchmarks(
    tmp_path, scratch_registry
):
    """Two hung benchmarks fill both workers while a third is queued.

    The runner must kill the hung workers at their deadline so the
    queued benchmark still gets a slot — previously the hung workers
    kept their slots until the end of the run and the queued
    benchmark (never started, so never expirable) spun forever.
    """
    specs = _specs_from(
        tmp_path,
        {
            "bench_hang_a.py": HANG_SCRIPT.format(n="a"),
            "bench_hang_b.py": HANG_SCRIPT.format(n="b"),
            # Sorts after the hang benchmarks, so it is the queued one.
            "bench_zfast.py": OK_SCRIPT.format(n=9, value=9.0),
        },
    )
    records = run_benchmarks(
        specs, RunnerConfig(max_workers=2, timeout_s=1.5)
    )
    by_name = {r["name"]: r for r in records}
    assert len(records) == 3
    assert by_name["runner-hang-a"]["status"] == "timeout"
    assert by_name["runner-hang-b"]["status"] == "timeout"
    assert by_name["runner-ok-9"]["status"] == "ok"
    # Nobody gets blamed for the pool teardown the runner caused.
    assert not [r for r in records if r["status"] == "crashed"]


def test_innocent_inflight_benchmark_restarts_after_timeout_kill(
    tmp_path, scratch_registry
):
    """Killing a hung worker must not fail its pool-mates.

    hang-a and the instant ok-1 start first on the two workers; the
    restart benchmark is queued, starts once ok-1 finishes, and hangs
    on its first invocation. When hang-a hits the deadline the runner
    kills its worker, which tears down the whole pool while the
    restart benchmark is innocently in flight — it must be
    resubmitted (observed as a second invocation), not reported as
    crashed or timed out.
    """
    marker = tmp_path / "restart-marker.txt"
    specs = _specs_from(
        tmp_path,
        {
            "bench_hang_a.py": HANG_SCRIPT.format(n="a"),
            "bench_ok.py": OK_SCRIPT.format(n=1, value=1.0),
            "bench_restart.py": RESTART_SCRIPT.format(
                marker=str(marker)
            ),
        },
    )
    records = run_benchmarks(
        specs, RunnerConfig(max_workers=2, timeout_s=3.0)
    )
    by_name = {r["name"]: r for r in records}
    assert by_name["runner-hang-a"]["status"] == "timeout"
    assert by_name["runner-ok-1"]["status"] == "ok"
    restarted = by_name["runner-z-restart"]
    assert restarted["status"] == "ok"
    assert restarted["metrics"]["runs"] == 2.0


def test_worker_crash_is_isolated_and_queue_drains(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path,
        {
            "bench_crash.py": CRASH_SCRIPT,
            "bench_d.py": OK_SCRIPT.format(n=4, value=4.0),
            "bench_e.py": OK_SCRIPT.format(n=5, value=5.0),
        },
    )
    # One worker makes attribution deterministic: the crasher is the
    # only benchmark in flight when the pool breaks, and the other two
    # must be resubmitted to the rebuilt pool.
    records = run_benchmarks(
        specs, RunnerConfig(max_workers=1, timeout_s=60.0)
    )
    by_name = {r["name"]: r for r in records}
    assert len(records) == 3
    assert by_name["runner-crashes"]["status"] == "crashed"
    assert by_name["runner-ok-4"]["status"] == "ok"
    assert by_name["runner-ok-5"]["status"] == "ok"


def test_resolved_workers_bounds():
    assert RunnerConfig(max_workers=3).resolved_workers(100) == 3
    assert RunnerConfig(max_workers=0).resolved_workers(100) == 1
    auto = RunnerConfig().resolved_workers(100)
    assert 1 <= auto <= 8
    assert RunnerConfig().resolved_workers(1) == 1


def test_profile_dir_writes_pstats_dump(tmp_path, scratch_registry):
    import pstats

    specs = _specs_from(
        tmp_path, {"bench_a.py": OK_SCRIPT.format(n=9, value=9.0)}
    )
    prof_dir = tmp_path / "profiles"
    records = run_benchmarks(
        specs,
        RunnerConfig(max_workers=1, timeout_s=60.0,
                     profile_dir=str(prof_dir)),
    )
    [record] = records
    assert record["status"] == "ok"
    prof_path = prof_dir / "runner-ok-9.prof"
    assert record["profile"] == str(prof_path)
    assert prof_path.is_file()
    stats = pstats.Stats(str(prof_path))
    assert stats.total_calls > 0


def test_profile_written_even_when_benchmark_raises(
    tmp_path, scratch_registry
):
    specs = _specs_from(tmp_path, {"bench_c.py": FAILING_SCRIPT})
    records = run_benchmarks(
        specs,
        RunnerConfig(max_workers=1, timeout_s=60.0,
                     profile_dir=str(tmp_path)),
    )
    [record] = records
    assert record["status"] == "error"
    assert (tmp_path / "runner-raises.prof").is_file()


def test_no_profile_dir_leaves_record_unprofiled(
    tmp_path, scratch_registry
):
    specs = _specs_from(
        tmp_path, {"bench_a.py": OK_SCRIPT.format(n=8, value=8.0)}
    )
    [record] = run_benchmarks(
        specs, RunnerConfig(max_workers=1, timeout_s=60.0)
    )
    assert record["profile"] is None
    assert not list(tmp_path.glob("*.prof"))
