"""Shared fixtures: simulated nodes, PAPI instances, quiet sessions."""

from __future__ import annotations

import pytest

from repro.machine import SUMMIT, TELLICO, Node
from repro.measure.session import MeasurementSession
from repro.noise import QUIET
from repro.papi import library_init
from repro.pcp import start_pmcd_for_node


@pytest.fixture
def summit_node():
    return Node(SUMMIT, seed=1234)


@pytest.fixture
def tellico_node():
    return Node(TELLICO, seed=1234)


@pytest.fixture
def summit_papi(summit_node):
    return library_init(summit_node, pmcd=start_pmcd_for_node(summit_node))


@pytest.fixture
def tellico_papi(tellico_node):
    return library_init(tellico_node, pmcd=start_pmcd_for_node(tellico_node))


@pytest.fixture
def quiet_summit_node():
    return Node(SUMMIT, seed=1234, noise=QUIET)


@pytest.fixture
def quiet_summit_papi(quiet_summit_node):
    return library_init(quiet_summit_node,
                        pmcd=start_pmcd_for_node(quiet_summit_node))


@pytest.fixture
def quiet_summit_session():
    """Summit session with every noise mechanism disabled."""
    return MeasurementSession("summit", via="pcp", seed=1, noise=QUIET)


@pytest.fixture
def quiet_tellico_session():
    return MeasurementSession("tellico", via="perf_event_uncore", seed=1,
                              noise=QUIET)
