"""Counter Analysis Toolkit: validation classifications."""

import pytest

from repro.cat import Classification, CounterAnalysisToolkit
from repro.errors import ConfigurationError
from repro.kernels.stream import StreamKernel
from repro.measure.session import MeasurementSession
from repro.noise import QUIET


@pytest.fixture(scope="module")
def quiet_report():
    session = MeasurementSession("summit", seed=3, noise=QUIET)
    return CounterAnalysisToolkit(session).run_suite()


class TestQuietSystem:
    def test_all_nest_events_validated(self, quiet_report):
        assert len(quiet_report.events(Classification.VALIDATED)) == 16
        assert quiet_report.events(Classification.UNRELIABLE) == []
        assert quiet_report.events(Classification.DEAD) == []

    def test_report_renders(self, quiet_report):
        text = quiet_report.render()
        assert "PM_MBA0_READ_BYTES" in text
        assert "validated" in text

    def test_probe_errors_tiny(self, quiet_report):
        assert max(r.relative_error for r in quiet_report.results) < 0.02


class TestNoisySystem:
    def test_events_noisy_but_not_unreliable(self):
        session = MeasurementSession("tellico", seed=3)
        report = CounterAnalysisToolkit(session).run_suite()
        assert report.events(Classification.UNRELIABLE) == []
        assert report.events(Classification.DEAD) == []
        noisy = report.events(Classification.NOISY)
        validated = report.events(Classification.VALIDATED)
        assert len(noisy) + len(validated) == 16
        assert noisy  # realistic noise perturbs at least some events


class TestDefectDetection:
    def _session(self):
        return MeasurementSession("summit", seed=3, noise=QUIET)

    def test_dead_counter_detected(self, monkeypatch):
        session = self._session()
        cat = CounterAnalysisToolkit(session)
        real = cat._measure_per_event

        def lobotomise(probe, events, socket_id, reps):
            values = real(probe, events, socket_id, reps)
            dead = [e for e in events if "MBA3_READ" in e][0]
            values[dead] = 0
            return values

        monkeypatch.setattr(cat, "_measure_per_event", lobotomise)
        report = cat.run_suite()
        assert len(report.events(Classification.DEAD)) == 1

    def test_corrupted_counter_unreliable(self, monkeypatch):
        session = self._session()
        cat = CounterAnalysisToolkit(session)
        real = cat._measure_per_event

        def corrupt(probe, events, socket_id, reps):
            values = real(probe, events, socket_id, reps)
            bad = [e for e in events if "MBA5_WRITE" in e][0]
            values[bad] *= 7  # mis-scaled counter
            return values

        monkeypatch.setattr(cat, "_measure_per_event", corrupt)
        report = cat.run_suite()
        assert len(report.events(Classification.UNRELIABLE)) == 1
        assert len(report.events(Classification.VALIDATED)) == 15

    def test_custom_probes(self):
        session = self._session()
        cat = CounterAnalysisToolkit(session)
        report = cat.run_suite(probes=[StreamKernel("copy", 1 << 20)])
        assert len(report.classifications) == 16

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            CounterAnalysisToolkit(self._session(), tolerance=0.9,
                                   noisy_tolerance=0.5)
