"""Daemon overhead as a first-class metric.

The pmcd.* self-metrics PMDA, the client/daemon overhead report
surfaced through ``MeasurementSession``, and the ``pcp-stress`` CLI
command.
"""

import json

import pytest

from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp.client import PmapiContext
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.server import PMCDServer, RemotePMCD
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)


@pytest.fixture
def node():
    return Node(SUMMIT, seed=31, noise=QUIET)


class TestPmcdSelfMetrics:
    def test_pmcd_metrics_in_namespace(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd)
        metrics = client.traverse("pmcd")
        assert "pmcd.requests.total" in metrics
        assert "pmcd.fetch.pmda_calls" in metrics
        assert "pmcd.service.coalesced" in metrics

    def test_self_metrics_opt_out(self, node):
        pmcd = start_pmcd_for_node(node, self_metrics=False)
        assert len(pmcd.agents) == 1
        client = PmapiContext(pmcd)
        assert client.traverse("perfevent")

    def test_request_counts_readable_through_fetch(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd)
        client.lookup_names([METRIC])
        count = client.fetch_one("pmcd.requests.total", "pmcd")
        assert count >= 2  # the lookup(s) plus this fetch
        again = client.fetch_one("pmcd.requests.total", "pmcd")
        assert again > count  # measuring the measurement adds requests

    def test_papi_can_open_daemon_overhead_event(self, quiet_summit_papi):
        papi = quiet_summit_papi
        component = papi.component("pcp")
        daemon_events = component.daemon_events()
        assert any("pmcd.fetch.total" in e for e in daemon_events)
        es = papi.create_eventset()
        es.add_event("pcp:::pmcd.fetch.total:pmcd")
        es.start()
        values = es.stop()
        assert values[0] >= 0

    def test_list_events_unchanged_by_self_metrics(self, quiet_summit_papi):
        events = quiet_summit_papi.component("pcp").list_events()
        assert len(events) == 32  # paper Table I events only
        assert not any("pmcd." in e for e in events)

    def test_lookup_cache_hits_counted(self, node):
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd)
        client.lookup_names([METRIC])
        client.lookup_names([METRIC])  # same names tuple: daemon cache
        assert pmcd.stats.lookup_cache_hits >= 1
        assert pmcd.stats.lookup_cache_misses >= 1


class TestSessionOverheadReport:
    def test_pcp_session_reports_overhead(self, quiet_summit_session):
        from repro.kernels.stream import StreamKernel

        session = quiet_summit_session
        session.measure_kernel(StreamKernel("triad", 10_000))
        overhead = session.daemon_overhead()
        assert overhead["round_trips"] > 0
        assert overhead["latency_seconds"] > 0
        assert overhead["pmcd.fetches"] >= 1
        assert overhead["pmcd.pmda_fetch_calls"] >= 16

    def test_uncore_session_has_no_daemon(self, quiet_tellico_session):
        assert quiet_tellico_session.daemon_overhead() == {}

    def test_remote_context_includes_transport_stats(self, node):
        server = PMCDServer(start_pmcd_for_node(node)).start()
        try:
            remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
            client = PmapiContext(remote)
            client.lookup_names([METRIC])
            overhead = client.daemon_overhead()
            assert overhead["transport.requests"] >= 1
            assert overhead["transport.retries"] == 0
            remote.close()
        finally:
            server.stop()


class TestStressCLI:
    def test_pcp_stress_command(self, capsys):
        from repro.cli import main

        assert main(["pcp-stress", "--clients", "4", "--fetches", "6"]) == 0
        out = capsys.readouterr().out
        assert "cross_wired" in out
        assert "pmda_fetch_calls" in out

    def test_pcp_stress_json(self, capsys):
        from repro.cli import main

        assert main(["pcp-stress", "--clients", "2", "--fetches", "4",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clients"] == 2
        assert report["errors"] == []
        assert report["cross_wired"] == 0

    def test_listed_in_help(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        assert "pcp-stress" in capsys.readouterr().out
