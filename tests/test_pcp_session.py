"""The redesigned ``pcp.connect()`` session surface.

One entry point replaces the three historical clients; the old names
must keep working as deprecated shims whose behaviour is bit-identical
to the session classes they wrap (the golden figures pin the
measurement path itself).
"""

import asyncio
import warnings

import pytest

from repro.errors import ArchiveError, PCPError
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp import connect
from repro.pcp.archive import MetricArchive
from repro.pcp.client import PmapiContext
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.pmlogger import PmLogger
from repro.pcp.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    PCPStatus,
)
from repro.pcp.server import PMCDServer, RemotePMCD, RemoteTransport
from repro.pcp.session import AsyncPcpSession, PcpSession, SessionLogger
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)
METRICS = [pcp_metric_name(ch, write) for ch in range(2)
           for write in (False, True)]


def make_node(seed=7):
    return Node(SUMMIT, seed=seed, noise=QUIET)


@pytest.fixture
def node():
    return make_node()


@pytest.fixture
def pmcd(node):
    return start_pmcd_for_node(node, round_trip_seconds=0.0)


class TestConnect:
    def test_in_process_sync(self, pmcd, node):
        session = connect(pmcd, node=node)
        assert isinstance(session, PcpSession)
        pmids = session.lookup_names([METRIC])
        assert set(session.fetch(pmids)) == set(pmids)

    def test_server_object_dials_tcp(self, pmcd):
        server = PMCDServer(pmcd).start()
        try:
            with connect(server) as session:
                assert isinstance(session.pmcd, RemoteTransport)
                assert session.fetch_one(METRIC, "cpu87") >= 0
        finally:
            server.stop()

    def test_host_port_string(self, pmcd):
        server = PMCDServer(pmcd).start()
        try:
            with connect("%s:%d" % server.address) as session:
                assert session.traverse("pmcd")
        finally:
            server.stop()

    def test_async_mode_returns_async_session(self, pmcd):
        session = connect(pmcd, mode="async")
        assert isinstance(session, AsyncPcpSession)

    def test_unknown_mode_rejected(self, pmcd):
        with pytest.raises(PCPError):
            connect(pmcd, mode="telepathy")

    def test_bad_address_rejected(self):
        with pytest.raises(PCPError):
            connect("localhost")  # no port

    def test_unconnectable_target_rejected(self):
        with pytest.raises(PCPError):
            connect(object())

    def test_handshake_negotiates_v2(self, pmcd, node):
        session = connect(pmcd, node=node)
        assert session.protocol_version is None
        assert session.handshake() == PROTOCOL_VERSION
        assert session.protocol_version == PROTOCOL_VERSION

    def test_handshake_falls_back_to_v1(self, node):
        class V1Daemon:
            round_trip_seconds = 0.0

            def handle(self, request):
                # Seed daemons reject the unknown OpenRequest type.
                return ErrorResponse(status=PCPStatus.PM_ERR_PMID,
                                     detail="unknown request type")

        session = PcpSession(V1Daemon(), node=node)
        assert session.handshake() == 1
        assert session.protocol_version == 1


class TestDeprecatedShims:
    def test_pmapi_context_warns_once(self, pmcd, node):
        with pytest.deprecated_call():
            PmapiContext(pmcd, node=node)

    def test_pmlogger_warns_once(self, pmcd, node):
        session = connect(pmcd, node=node)
        with pytest.deprecated_call():
            PmLogger(session, [METRIC])

    def test_remote_pmcd_warns_once(self, pmcd):
        server = PMCDServer(pmcd).start()
        try:
            with pytest.deprecated_call():
                remote = RemotePMCD(*server.address,
                                    round_trip_seconds=0.0)
            remote.close()
        finally:
            server.stop()

    def test_session_classes_do_not_warn(self, pmcd, node):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = PcpSession(pmcd, node=node)
            SessionLogger(session, [METRIC])

    def _drive(self, context, node):
        """The fig2-style measurement loop: resolve, fetch, advance."""
        out = []
        pmids = context.lookup_names(METRICS)
        for step in range(4):
            node.socket(0).record_traffic(
                read_bytes=64 * (step + 1) * 100,
                write_bytes=64 * (step + 1) * 10)
            node.advance(0.5, background=False)
            values = context.fetch(pmids)
            out.append((context.last_fetch_timestamp,
                        sorted((pmid, tuple(sorted(v.items())))
                               for pmid, v in values.items())))
        out.append((context.round_trips, context.gaps))
        return out

    def test_shim_and_session_paths_identical(self):
        """The golden-figure acceptance: the shim and the redesigned
        session produce bit-identical accounting on the same seed."""
        node_a = make_node()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = PmapiContext(
                start_pmcd_for_node(node_a, round_trip_seconds=0.0),
                node=node_a)
        node_b = make_node()
        session = connect(
            start_pmcd_for_node(node_b, round_trip_seconds=0.0),
            node=node_b)
        assert self._drive(shim, node_a) == self._drive(session, node_b)

    def test_shim_is_a_session(self, pmcd, node):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = PmapiContext(pmcd, node=node)
        assert isinstance(shim, PcpSession)


class TestSessionLoggerStore:
    def test_log_mirrors_into_archive(self, pmcd, node, tmp_path):
        session = connect(pmcd, node=node)
        with MetricArchive.create(str(tmp_path / "arch")) as store:
            logger = session.log([METRIC], interval_seconds=0.5,
                                 store=store)
            node.socket(0).record_traffic(read_bytes=64 * 1000)
            logger.run(3)
            assert store.records() == logger.archive

    def test_fetch_archive_replays_live_samples(self, pmcd, node,
                                                tmp_path):
        """Replay through the daemon is byte-identical to the live
        logger's records — the tentpole acceptance criterion."""
        session = connect(pmcd, node=node)
        store = MetricArchive.create(str(tmp_path / "arch"))
        logger = session.log([METRIC], interval_seconds=0.5, store=store)
        node.socket(0).record_traffic(read_bytes=64 * 500)
        logger.run(4)
        pmcd.attach_archive(store)
        assert session.fetch_archive([METRIC]) == logger.archive
        # Windowed replay filters identically too.
        t_mid = logger.archive[1].timestamp
        assert session.fetch_archive([METRIC], t0=t_mid) == \
            logger.archive[1:]

    def test_fetch_archive_without_archive_raises(self, pmcd, node):
        session = connect(pmcd, node=node)
        with pytest.raises(ArchiveError):
            session.fetch_archive([METRIC])

    def test_logger_session_alias(self, pmcd, node):
        session = connect(pmcd, node=node)
        logger = session.log([METRIC])
        assert logger.session is session


class TestAsyncSession:
    def run(self, coro):
        return asyncio.run(coro)

    def test_in_process_surface(self, pmcd, node):
        async def go():
            session = connect(pmcd, mode="async", node=node)
            async with session:
                assert await session.handshake() == PROTOCOL_VERSION
                pmids = await session.lookup_names([METRIC])
                values = await session.fetch(pmids)
                assert set(values) == set(pmids)
                assert await session.fetch_one(METRIC, "cpu87") >= 0
                names = await session.traverse("pmcd")
                assert all(name.startswith("pmcd") for name in names)
                return session.round_trips

        assert self.run(go()) > 0

    def test_fetch_many_pipelines(self, pmcd):
        async def go():
            async with connect(pmcd, mode="async") as session:
                pmids = await session.lookup_names(METRICS)
                results = await session.fetch_many([pmids, pmids[:2]])
                assert [set(r) for r in results] == [set(pmids),
                                                     set(pmids[:2])]

        self.run(go())

    def test_archive_replay_async(self, pmcd, node, tmp_path):
        session = connect(pmcd, node=node)
        store = MetricArchive.create(str(tmp_path / "arch"))
        logger = session.log([METRIC], store=store)
        logger.run(3)
        pmcd.attach_archive(store)

        async def go():
            async with connect(pmcd, mode="async") as asession:
                return await asession.fetch_archive([METRIC])

        assert self.run(go()) == logger.archive

    def test_daemon_overhead_keys(self, pmcd, node):
        session = connect(pmcd, node=node)
        session.fetch_one(METRIC, "cpu87")
        info = session.daemon_overhead()
        assert info["round_trips"] == session.round_trips
        assert "pmcd.fetches" in info
