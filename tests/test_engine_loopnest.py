"""Affine loop-nest DSL: the generic traffic law vs ground truth."""

import pytest

from repro.engine.analytic import CacheContext
from repro.engine.exact import ExactEngine
from repro.engine.loopnest import AffineAccess, LoopNest
from repro.engine.stream import resolve_policies
from repro.errors import ConfigurationError
from repro.machine.config import CacheConfig
from repro.machine.prefetch import SoftwarePrefetch
from repro.machine.store import StorePolicy
from repro.units import MIB


def crossval(nest, capacity=4 * MIB, assoc=16, rel=0.03,
             prefetch=SoftwarePrefetch()):
    engine = ExactEngine(CacheConfig(capacity_bytes=capacity,
                                     associativity=assoc))
    exact = engine.run_nest(nest.streams(), nest.exact_accesses(),
                            prefetch=prefetch)
    analytic = nest.traffic(CacheContext(capacity_bytes=capacity),
                            prefetch)
    assert analytic.read_bytes == pytest.approx(exact.read_bytes, rel=rel)
    assert analytic.write_bytes == pytest.approx(exact.write_bytes,
                                                 rel=rel)
    return exact, analytic


def gemm_nest(n):
    return LoopNest("gemm", (n, n, n), [
        AffineAccess("A", (n, 0, 1)),
        AffineAccess("B", (0, 1, n)),
        AffineAccess("C", (n, 1, 0), is_write=True),
    ], flops_per_iteration=2.0)


class TestCrossValidation:
    def test_gemm_cached(self):
        exact, _ = crossval(gemm_nest(32))
        # Matches the paper's expectation: 3N^2 reads, N^2 writes.
        assert exact.read_bytes == 3 * 32 * 32 * 8
        assert exact.write_bytes == 32 * 32 * 8

    def test_gemm_one_matrix_cached(self):
        crossval(gemm_nest(64), capacity=64 * 1024)

    def test_gemm_thrashing(self):
        crossval(gemm_nest(64), capacity=4 * 1024, assoc=4, rel=0.05)

    def test_copy(self):
        nest = LoopNest("copy", (4096,), [
            AffineAccess("in", (1,)),
            AffineAccess("out", (1,), is_write=True),
        ])
        exact, _ = crossval(nest)
        assert exact.read_bytes == exact.write_bytes == 4096 * 8

    def test_strided_gather_cached_and_thrashing(self):
        c, p, r = 16, 8, 8
        nest = LoopNest("gather", (c, p, r), [
            AffineAccess("tmp", (1, r * c, c), elem_bytes=16),
            AffineAccess("out", (p * r, r, 1), is_write=True,
                         elem_bytes=16),
        ])
        exact, _ = crossval(nest)
        nbytes = c * p * r * 16
        assert exact.read_bytes == 2 * nbytes  # tmp + out RFO
        exact2, _ = crossval(nest, capacity=2 * 1024, assoc=4)
        assert exact2.read_bytes > exact.read_bytes  # amplification

    def test_stencil_neighbours_share_fetches(self):
        nest = LoopNest("stencil", (4096,), [
            AffineAccess("a", (1,), offset=0),
            AffineAccess("a", (1,), offset=1),
            AffineAccess("a", (1,), offset=2),
            AffineAccess("out", (1,), is_write=True),
        ], flops_per_iteration=2.0)
        exact, analytic = crossval(nest)
        # a is fetched ~once despite three sites reading it.
        assert exact.read_bytes < 1.02 * (4098 * 8 + 64)

    def test_2d_row_sum_reduction(self):
        n = 128
        nest = LoopNest("rowsum", (n, n), [
            AffineAccess("m", (n, 1)),
        ], flops_per_iteration=1.0)
        exact, _ = crossval(nest)
        assert exact.read_bytes == n * n * 8
        assert exact.write_bytes == 0

    def test_prefetch_flag_propagates(self):
        nest = LoopNest("copy", (2048,), [
            AffineAccess("in", (1,)),
            AffineAccess("out", (1,), is_write=True),
        ])
        pf = SoftwarePrefetch(dcbt=True, dcbtst=True)
        exact, analytic = crossval(nest, prefetch=pf)
        assert exact.read_bytes == 2 * 2048 * 8  # dcbtst read appears


class TestDSLSemantics:
    def test_store_policy_derivation(self):
        # GEMM: B's strided stream + sparse C stores -> write-allocate.
        policies = resolve_policies(gemm_nest(16).streams())
        assert policies["C"] is StorePolicy.WRITE_ALLOCATE
        # Pure copy -> bypass.
        cp = LoopNest("copy", (64,), [
            AffineAccess("in", (1,)),
            AffineAccess("out", (1,), is_write=True)])
        assert resolve_policies(cp.streams())["out"] is StorePolicy.BYPASS

    def test_flops(self):
        assert gemm_nest(8).flops() == 2 * 8 ** 3

    def test_footprint_counts_arrays_once(self):
        nest = LoopNest("stencil", (100,), [
            AffineAccess("a", (1,), offset=0),
            AffineAccess("a", (1,), offset=2),
            AffineAccess("out", (1,), is_write=True),
        ])
        # a spans 102 elements, out 100.
        assert nest.footprint_bytes() == (102 + 100) * 8

    def test_arrays_do_not_overlap(self):
        nest = gemm_nest(8)
        decls = {d.name: d for d in nest.streams()}
        a_end = decls["A"].base + decls["A"].footprint_bytes
        assert decls["B"].base >= a_end

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoopNest("bad", (), [AffineAccess("a", ())])
        with pytest.raises(ConfigurationError):
            LoopNest("bad", (4,), [])
        with pytest.raises(ConfigurationError):
            LoopNest("bad", (4, 4), [AffineAccess("a", (1,))])
        with pytest.raises(ConfigurationError):
            AffineAccess("a", (1,), elem_bytes=0)

    def test_iteration_count(self):
        assert LoopNest("x", (3, 4, 5),
                        [AffineAccess("a", (20, 5, 1))]).n_iterations == 60


class TestAgainstHandWrittenModels:
    def test_dsl_gemm_matches_blas_gemm(self):
        """The DSL derivation equals the hand-derived Gemm law."""
        from repro.kernels.blas import Gemm

        n = 96
        ctx = CacheContext(capacity_bytes=110 * MIB)
        hand = Gemm(n).traffic(ctx)
        dsl = gemm_nest(n).traffic(ctx)
        assert tuple(dsl) == tuple(hand)

    def test_dsl_copy_matches_stream_copy(self):
        from repro.kernels.stream import StreamKernel

        ctx = CacheContext(capacity_bytes=5 * MIB)
        hand = StreamKernel("copy", 8192).traffic(ctx)
        dsl = LoopNest("copy", (8192,), [
            AffineAccess("a", (1,)),
            AffineAccess("b", (1,), is_write=True),
        ]).traffic(ctx)
        assert tuple(dsl) == tuple(hand)
