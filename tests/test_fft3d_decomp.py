"""Pencil decomposition: scatter/gather and local block arithmetic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fft3d.decomp import gather, local_block, scatter
from repro.mpi.grid import ProcessorGrid


class TestLocalBlock:
    def test_paper_shape(self):
        # Local array is (N/r) x (N/c) x N.
        block = local_block(16, ProcessorGrid(2, 4))
        assert block.shape == (8, 4, 16)
        assert block.elements == 8 * 4 * 16
        assert block.nbytes == block.elements * 16

    def test_fig10_sizes(self):
        grid = ProcessorGrid(4, 8)
        for n in (1344, 2016):
            block = local_block(n, grid)
            assert block.planes * grid.rows == n
            assert block.rows * grid.cols == n


class TestScatterGather:
    def test_roundtrip(self):
        grid = ProcessorGrid(2, 4)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((16, 16, 16)) + 0j
        blocks = scatter(a, grid)
        assert len(blocks) == 8
        assert blocks[0].shape == (8, 4, 16)
        assert np.array_equal(gather(blocks, grid), a)

    def test_rank_owns_correct_slab(self):
        grid = ProcessorGrid(2, 2)
        a = np.arange(8 ** 3).reshape(8, 8, 8).astype(complex)
        blocks = scatter(a, grid)
        rank = grid.rank_of(1, 0)
        assert np.array_equal(blocks[rank], a[4:8, 0:4, :])

    def test_scatter_rejects_non_cube(self):
        with pytest.raises(ConfigurationError):
            scatter(np.zeros((4, 4, 8)), ProcessorGrid(2, 2))

    def test_gather_validates_count(self):
        grid = ProcessorGrid(2, 2)
        with pytest.raises(ConfigurationError):
            gather([np.zeros((2, 2, 4), dtype=complex)], grid)
