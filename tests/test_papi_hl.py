"""PAPI high-level region API."""

import pytest

from repro.errors import PapiInvalidArgument
from repro.papi.hl import HighLevelApi
from repro.pmu.events import all_pcp_events

TRAFFIC = 8 * 64  # one transaction per channel


@pytest.fixture
def hl(quiet_summit_papi, quiet_summit_node):
    events = all_pcp_events(quiet_summit_node.config, 0)
    return HighLevelApi(quiet_summit_papi, events=events)


def _work(node, reads=TRAFFIC, dt=1e-3):
    node.socket(0).record_traffic(read_bytes=reads)
    node.advance(dt, background=False)


class TestRegions:
    def test_single_region_counts(self, hl, quiet_summit_node):
        with hl.region("r"):
            _work(quiet_summit_node)
        report = hl.report()
        assert report["r"]["instances"] == 1
        read_total = sum(v for k, v in report["r"].items()
                         if "READ" in k)
        assert read_total == TRAFFIC
        assert report["r"]["seconds"] == pytest.approx(1e-3)

    def test_instances_accumulate(self, hl, quiet_summit_node):
        for _ in range(3):
            with hl.region("loop"):
                _work(quiet_summit_node)
        report = hl.report()
        assert report["loop"]["instances"] == 3
        read_total = sum(v for k, v in report["loop"].items()
                         if "READ" in k)
        assert read_total == 3 * TRAFFIC

    def test_nested_regions_both_counted(self, hl, quiet_summit_node):
        with hl.region("outer"):
            _work(quiet_summit_node)
            with hl.region("inner"):
                _work(quiet_summit_node)
        report = hl.report()
        outer = sum(v for k, v in report["outer"].items() if "READ" in k)
        inner = sum(v for k, v in report["inner"].items() if "READ" in k)
        assert inner == TRAFFIC
        assert outer == 2 * TRAFFIC  # outer sees inner's traffic too

    def test_mismatched_end_rejected(self, hl):
        hl.region_begin("a")
        with pytest.raises(PapiInvalidArgument):
            hl.region_end("b")

    def test_end_without_begin_rejected(self, hl):
        with pytest.raises(PapiInvalidArgument):
            hl.region_end("nothing")

    def test_stop_with_open_region_rejected(self, hl):
        hl.region_begin("open")
        with pytest.raises(PapiInvalidArgument):
            hl.stop()

    def test_stop_after_close(self, hl, quiet_summit_node):
        with hl.region("r"):
            _work(quiet_summit_node)
        hl.stop()  # no raise

    def test_needs_events(self, quiet_summit_papi):
        with pytest.raises(PapiInvalidArgument):
            HighLevelApi(quiet_summit_papi, events=[])

    def test_region_needs_name(self, hl):
        with pytest.raises(PapiInvalidArgument):
            hl.region_begin("")

    def test_mean_helper(self, hl, quiet_summit_node):
        for _ in range(2):
            with hl.region("m"):
                _work(quiet_summit_node)
        stats = hl.regions["m"]
        event = [e for e in hl.events if "MBA0_READ" in e][0]
        assert stats.mean(event) == 64.0
