"""Executor: cache contexts, batching, repetitions, clock accounting."""

import pytest

from repro.engine.executor import Executor
from repro.errors import ConfigurationError
from repro.kernels.blas import Gemm
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.units import MIB


@pytest.fixture
def quiet_node():
    return Node(SUMMIT, seed=3, noise=QUIET)


@pytest.fixture
def executor(quiet_node):
    return Executor(quiet_node)


class TestCacheContext:
    def test_single_core_reappropriates(self, executor):
        ctx = executor.cache_context(0, 1, footprint_bytes=MIB)
        assert ctx.capacity_bytes == 110 * MIB

    def test_batched_cores_confined(self, executor):
        ctx = executor.cache_context(0, 21, footprint_bytes=MIB)
        assert ctx.capacity_bytes == 5 * MIB

    def test_assume_socket_busy(self, executor):
        ctx = executor.cache_context(0, 1, footprint_bytes=MIB,
                                     assume_socket_busy=True)
        assert ctx.capacity_bytes == 5 * MIB

    def test_spill_only_for_large_single_thread(self, executor):
        small = executor.cache_context(0, 1, footprint_bytes=MIB)
        large = executor.cache_context(0, 1, footprint_bytes=50 * MIB)
        assert small.spill_extra_fraction == 0.0
        assert large.spill_extra_fraction > 0.0


class TestRun:
    def test_noiseless_traffic_matches_law(self, executor, quiet_node):
        kernel = Gemm(128)
        record = executor.run(kernel, n_cores=1, noisy=False)
        ctx = executor.cache_context(0, 1, kernel.footprint_bytes())
        law = kernel.traffic(ctx)
        assert tuple(record.true_traffic) == tuple(law)
        sock = quiet_node.socket(0)
        assert sock.memory.total_read_bytes == law.read_bytes

    def test_batch_scales_traffic_by_cores(self, executor):
        kernel = Gemm(64)
        single = executor.run(kernel, n_cores=1, noisy=False)
        batched = executor.run(kernel, n_cores=21, noisy=False)
        assert batched.true_traffic.read_bytes == pytest.approx(
            21 * single.true_traffic.read_bytes, rel=0.2)

    def test_repetitions_accumulate(self, executor):
        kernel = Gemm(64)
        record = executor.run(kernel, repetitions=5, noisy=False)
        assert record.recorded_traffic.read_bytes == \
            5 * record.true_traffic.read_bytes
        assert record.runtime_total == pytest.approx(
            5 * record.runtime_per_rep)

    def test_clock_advances_with_runtime(self, quiet_node):
        executor = Executor(quiet_node)
        before = quiet_node.clock
        record = executor.run(Gemm(128), noisy=False)
        assert quiet_node.clock == pytest.approx(
            before + record.runtime_per_rep)

    def test_advance_clock_false(self, quiet_node):
        executor = Executor(quiet_node)
        executor.run(Gemm(64), noisy=False, advance_clock=False)
        assert quiet_node.clock == 0.0

    def test_cores_released_after_run(self, executor, quiet_node):
        executor.run(Gemm(64), n_cores=5, noisy=False)
        assert quiet_node.socket(0).active_core_count == 0

    def test_too_many_cores_rejected(self, executor):
        with pytest.raises(ConfigurationError):
            executor.run(Gemm(64), n_cores=22)

    def test_zero_cores_rejected(self, executor):
        with pytest.raises(ConfigurationError):
            executor.run(Gemm(64), n_cores=0)

    def test_socket_selection(self, executor, quiet_node):
        executor.run(Gemm(64), socket_id=1, noisy=False)
        assert quiet_node.socket(1).memory.total_read_bytes > 0
        assert quiet_node.socket(0).memory.total_read_bytes == 0

    def test_noisy_adds_per_rep_overhead(self):
        node = Node(SUMMIT, seed=3)  # default (noisy) config
        executor = Executor(node)
        record = executor.run(Gemm(64), repetitions=3, noisy=True)
        assert record.recorded_traffic.read_bytes > \
            3 * record.true_traffic.read_bytes * 0.5  # sanity
        # per-rep first-touch overhead pushes recorded above pure jitter
        assert record.recorded_traffic.total_bytes != \
            3 * record.true_traffic.total_bytes
