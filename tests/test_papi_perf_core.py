"""perf_event core-private component and arithmetic-intensity pairing."""

import pytest

from repro.engine.executor import Executor
from repro.errors import PapiNoEvent
from repro.kernels.blas import Gemm
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.papi import library_init
from repro.pcp import start_pmcd_for_node
from repro.pmu.events import all_pcp_events


@pytest.fixture
def node():
    return Node(SUMMIT, seed=4, noise=QUIET)


@pytest.fixture
def papi(node):
    return library_init(node, pmcd=start_pmcd_for_node(node))


class TestComponent:
    def test_registered_everywhere(self, papi):
        assert "perf_event" in papi.component_names()
        available, _ = papi.component("perf_event").is_available()
        assert available  # core events need no privilege

    def test_event_listing(self, papi, node):
        events = papi.component("perf_event").list_events()
        n_cores = node.config.n_sockets * node.config.socket.n_cores
        assert len(events) == 3 * n_cores
        assert "perf::fp_ops:cpu=0" in events

    def test_unknown_event(self, papi):
        with pytest.raises(PapiNoEvent):
            papi.component("perf_event").open_event("perf::branches:cpu=0")

    def test_cpu_out_of_range(self, papi):
        with pytest.raises(PapiNoEvent):
            papi.component("perf_event").open_event("perf::cycles:cpu=99")

    def test_default_cpu_is_zero(self, papi, node):
        handle = papi.component("perf_event").open_event("perf::cycles")
        node.core(0).retire_work(flops=0, seconds=1.0)
        assert handle.read() == int(node.config.socket.core_frequency_hz)


class TestCounting:
    def test_executor_retires_work_per_core(self, node, papi):
        kernel = Gemm(64)
        es = papi.create_eventset()
        es.add_events(["perf::fp_ops:cpu=0", "perf::fp_ops:cpu=1"])
        es.start()
        Executor(node).run(kernel, n_cores=2, noisy=False)
        flops = es.stop()
        assert flops[0] == int(kernel.flops())
        assert flops[1] == int(kernel.flops())

    def test_cycles_track_runtime(self, node, papi):
        es = papi.create_eventset()
        es.add_event("perf::cycles:cpu=0")
        es.start()
        record = Executor(node).run(Gemm(128), noisy=False)
        cycles = es.stop()[0]
        expected = record.runtime_per_rep * node.config.socket.core_frequency_hz
        assert cycles == pytest.approx(expected, rel=0.01)

    def test_unused_cores_stay_silent(self, node, papi):
        es = papi.create_eventset()
        es.add_event("perf::fp_ops:cpu=5")
        es.start()
        Executor(node).run(Gemm(64), n_cores=1, noisy=False)
        assert es.stop()[0] == 0


class TestArithmeticIntensity:
    def test_flops_via_core_bytes_via_pcp(self, node, papi):
        """The ref.-[9] workflow: unprivileged core FLOPs + PCP bytes."""
        kernel = Gemm(256)
        core_es = papi.create_eventset()
        core_es.add_event("perf::fp_ops:cpu=0")
        mem_es = papi.create_eventset()
        mem_es.add_events(all_pcp_events(node.config, 0))
        core_es.start()
        mem_es.start()
        Executor(node).run(kernel, n_cores=1, noisy=False)
        flops = core_es.stop()[0]
        traffic = sum(mem_es.stop())
        intensity = flops / traffic
        nn = 256 * 256
        expected = (2 * 256 ** 3) / (4 * nn * 8)  # flops / (3R+1W bytes)
        assert intensity == pytest.approx(expected, rel=0.02)
