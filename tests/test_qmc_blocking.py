"""Blocking analysis: statistical correctness on known series."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.qmc.blocking import (
    autocorrelated_series,
    blocking_analysis,
)


class TestIndependentSamples:
    def test_error_matches_naive_for_iid(self):
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(4096)
        result = blocking_analysis(samples)
        assert result.error == pytest.approx(result.naive_error, rel=0.3)
        assert result.inefficiency < 2.0

    def test_mean_is_sample_mean(self):
        rng = np.random.default_rng(1)
        samples = rng.standard_normal(512) + 5.0
        result = blocking_analysis(samples)
        assert result.mean == pytest.approx(samples.mean())


class TestCorrelatedSamples:
    def test_correlated_series_inflates_error(self):
        rng = np.random.default_rng(2)
        tau = 10.0
        samples = autocorrelated_series(1 << 14, tau, rng)
        result = blocking_analysis(samples)
        # True error of an AR(1) mean is ~sqrt(2*tau) times naive.
        assert result.error > 2.0 * result.naive_error
        assert result.inefficiency == pytest.approx(2 * tau, rel=0.6)

    def test_error_from_vmc_energies(self):
        """End-to-end on real sampler output: the blocked error covers
        the true deviation from the known variational energy."""
        from repro.qmc.vmc import VMC
        from repro.qmc.wavefunction import HarmonicOscillator

        psi = HarmonicOscillator(alpha=1.3)
        sampler = VMC(psi, n_walkers=64, seed=7)
        sampler.run(n_blocks=2, steps_per_block=10)  # warm-up
        energies = [sampler.block(1).energy for _ in range(512)]
        result = blocking_analysis(energies)
        true_err = abs(result.mean - psi.variational_energy())
        assert true_err < 5 * result.error
        # Correlated chain: blocking must inflate the naive estimate.
        assert result.error >= result.naive_error


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            blocking_analysis([1.0] * 10)

    def test_levels_shrink_by_half(self):
        rng = np.random.default_rng(3)
        result = blocking_analysis(rng.standard_normal(1024))
        sizes = [lvl.n_blocks for lvl in result.levels]
        assert sizes[0] == 1024
        assert all(b == pytest.approx(a / 2, abs=1)
                   for a, b in zip(sizes, sizes[1:]))

    def test_ar1_helper_validation(self):
        with pytest.raises(ConfigurationError):
            autocorrelated_series(100, 0.0, np.random.default_rng(0))
